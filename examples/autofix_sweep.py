#!/usr/bin/env python3
"""Section 4.4 in action: auto-repair a realistic batch of violating pages.

Generates a batch of pages with the corpus injectors (the markup mistakes
the paper found in the wild), runs the automated repair over each, and
reports the before/after violation census — the per-page analogue of the
paper's "46% of violating websites could be fixed automatically".
"""
from __future__ import annotations

import random
from collections import Counter

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import AUTO_FIXABLE_IDS, Checker, autofix

BATCH = 120
SEED = 2022


def main() -> None:
    rng = random.Random(SEED)
    checker = Checker()
    injector_names = sorted(INJECTORS)

    before = Counter()
    after = Counter()
    pages_violating_before = 0
    pages_violating_after = 0
    bytes_changed = 0

    for index in range(BATCH):
        draft = build_page(f"site{index:03d}.example", "/", random.Random(index))
        count = rng.choice((0, 1, 1, 2, 3))
        chosen = rng.sample(injector_names, count)
        chosen.sort(key=lambda name: INJECTORS[name].terminal)
        for name in chosen:
            INJECTORS[name].apply(draft, random.Random(index * 7 + 1))
        html = draft.render()

        report = checker.check_html(html)
        before.update(report.violated)
        if report.violated:
            pages_violating_before += 1

        result = autofix(html)
        fixed_report = checker.check_html(result.fixed)
        after.update(fixed_report.violated)
        if fixed_report.violated:
            pages_violating_after += 1
        if result.changed:
            bytes_changed += abs(len(result.fixed) - len(html))

    print(f"pages: {BATCH}")
    print(f"violating before repair: {pages_violating_before}")
    print(f"violating after repair:  {pages_violating_after}")
    fixed = pages_violating_before - pages_violating_after
    if pages_violating_before:
        print(f"fully repaired: {fixed} "
              f"({fixed / pages_violating_before:.0%} of violating pages; "
              "the paper estimates 46% of violating *domains*)")
    print()
    print(f"{'violation':<10} {'before':>7} {'after':>6}  note")
    for violation in sorted(before | after):
        note = ("auto-fixable" if violation in AUTO_FIXABLE_IDS
                else "needs manual work")
        print(f"{violation:<10} {before[violation]:>7} {after[violation]:>6}  {note}")
    print(f"\nnet source-size delta across repaired pages: {bytes_changed} bytes")


if __name__ == "__main__":
    main()
