#!/usr/bin/env python3
"""The full longitudinal study, end to end (the paper's section 4).

Builds (or reuses) a calibrated synthetic Common Crawl archive, runs the
Figure 6 pipeline over all eight snapshots, and prints every table and
figure with the paper's published values alongside.

Scale with REPRO_SCALE (default corpus: 150 domains x 6 pages x 8 years):

    REPRO_SCALE=3 python examples/longitudinal_study.py
"""
from __future__ import annotations

from repro.analysis import (
    render_autofix,
    render_figure8,
    render_group_trends,
    render_mitigations,
    render_table2,
    render_trend,
)
from repro.analysis.longitudinal import APPENDIX_FIGURES
from repro.study import StudyConfig, run_study


def main() -> None:
    config = StudyConfig.scaled()
    print(f"running study: {config.num_domains} domains, "
          f"{config.max_pages} pages/domain, 8 snapshots ...")
    study = run_study(config)
    print(f"archive: {study.archive_dir}")
    print(f"results: {study.db_path}\n")

    print(render_table2(study.table2()))
    print(render_figure8(study.figure8()))
    print(render_trend(study.figure9(),
                       "Figure 9: Domains with at least one violation"))
    print(render_group_trends(study.figure10()))

    trends = study.violation_trends()
    for figure_name, violation_ids in APPENDIX_FIGURES.items():
        for violation_id in violation_ids:
            print(render_trend(trends[violation_id], figure_name))

    print(render_autofix(study.autofix_estimate()))
    print(render_mitigations(study.mitigations()))
    study.close()


if __name__ == "__main__":
    main()
