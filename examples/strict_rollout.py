#!/usr/bin/env python3
"""Section 5.3: simulate the staged deprecation of error tolerance.

Feeds *measured* per-year violation prevalence (from the study pipeline)
into the rollout simulator: violations join the enforced list once their
prevalence decays below a threshold, with a post-study decay assumption
standing in for the developer-warning effect the paper expects.  Prints
the stage-by-stage plan with expected breakage, plus the developer-console
warning for each violation as it becomes enforced.
"""
from __future__ import annotations

from repro.core import deprecation_warning, simulate_rollout
from repro.core.violations import ALL_IDS
from repro.study import StudyConfig, run_study


def main() -> None:
    study = run_study(StudyConfig.scaled())
    trends = study.violation_trends()

    prevalence_by_year: dict[int, dict[str, float]] = {}
    for violation_id, series in trends.items():
        for point in series.points:
            prevalence_by_year.setdefault(point.year, {})[violation_id] = (
                point.fraction
            )

    plan = simulate_rollout(
        prevalence_by_year, threshold=0.01, annual_decay=0.5
    )

    print("STRICT-PARSER staged rollout (threshold: <1% of domains)\n")
    announced: set[str] = set()
    for stage in plan.stages:
        phase = "measured" if stage.year <= 2022 else "projected"
        print(f"{stage.year} [{phase}]  enforced: {len(stage.enforced)}/20  "
              f"expected breakage: {stage.breakage:6.2%}  "
              f"new: {', '.join(stage.newly_enforced) or '-'}")
        for violation_id in stage.newly_enforced:
            if violation_id not in announced:
                announced.add(violation_id)
    if plan.fully_enforced_year:
        print(f"\ndefault mode equals strict mode from: "
              f"{plan.fully_enforced_year}")
    else:
        print("\nfull enforcement not reached within the horizon")

    print("\nexample developer-console warnings (shown before enforcement):")
    for violation_id in ("FB2", "DM3", "HF4"):
        print(f"  {deprecation_warning(violation_id)}")

    missing = set(ALL_IDS) - {
        rule for stage in plan.stages for rule in stage.newly_enforced
    } - set(plan.stages[0].enforced)
    if missing:
        print(f"\nstill unenforceable at horizon end: {sorted(missing)}")
    study.close()


if __name__ == "__main__":
    main()
