#!/usr/bin/env python3
"""Quickstart: check HTML for security-relevant specification violations.

Runs the Table 1 rule set over a handful of documents — including the
paper's own example payloads — prints the findings, and repairs what the
section 4.4 automated process can fix.

Usage::

    python examples/quickstart.py
"""
from __future__ import annotations

from repro import Checker, autofix
from repro.core import REGISTRY

SAMPLES = {
    "forgotten space (FB2, Figure 13)": (
        "<!DOCTYPE html><html><head><title>jobs</title></head><body>"
        '<input name="q" type="text" placeholder="Search jobs..."value="">'
        "</body></html>"
    ),
    "slash as separator (FB1)": (
        "<!DOCTYPE html><html><head><title>x</title></head><body>"
        '<img/src="banner.png"/alt="banner"></body></html>'
    ),
    "duplicate attribute (DM3, Figure 14)": (
        "<!DOCTYPE html><html><head><title>shop</title></head><body>"
        '<img src="/img/item.jpg" alt="" width="120" alt="product photo">'
        "</body></html>"
    ),
    "meta redirect in body (DM1, Figure 15)": (
        "<html><head><title>moved</title></head><body>Page has moved"
        '<meta http-equiv="Refresh" content="0; URL=http://wds.iea.org/wds">'
        "</body></html>"
    ),
    "headline straight in table row (HF4, Figure 11)": (
        "<!DOCTYPE html><html><head><title>t</title></head><body><table>"
        "<tr><strong>Cozi Organizer</strong></tr>"
        "<tr><td>The #1 organizing app</td></tr></table></body></html>"
    ),
    "unterminated textarea (DE1, Figure 3)": (
        '<!DOCTYPE html><html><head><title>t</title></head><body>'
        '<form action="https://evil.com"><input type="submit">'
        "<textarea>\n<p>My little secret</p>"
    ),
    "clean page (no findings)": (
        "<!DOCTYPE html><html><head><title>ok</title></head>"
        "<body><p>Nothing wrong here.</p></body></html>"
    ),
}


def main() -> None:
    checker = Checker()
    for label, html in SAMPLES.items():
        print(f"=== {label}")
        report = checker.check_html(html)
        if not report.findings:
            print("    no violations\n")
            continue
        for finding in report.findings:
            violation = REGISTRY[finding.violation]
            marker = "auto-fixable" if violation.auto_fixable else "manual fix"
            print(f"    {finding.violation} [{violation.group.value}, {marker}] "
                  f"{finding.message}")
        result = autofix(html)
        if result.changed:
            print(f"    -> autofix repaired {len(result.repaired)} finding(s); "
                  f"{len(result.remaining)} remain")
        print()


if __name__ == "__main__":
    main()
