#!/usr/bin/env python3
"""Reproduce the Figure 1 mutation-XSS sanitizer bypass, then stop it.

Implements a small DOMPurify-style sanitizer on top of `repro.html`'s
fragment parser: parse the input, drop dangerous elements/attributes,
serialize the clean DOM.  Exactly like the real DOMPurify < 2.1, it is
bypassed by the paper's Figure 1 payload — not because the filter list is
wrong, but because the *serialized output mutates* when the browser parses
it a second time (the error-tolerant table/namespace fix-ups).

The second half shows the paper's remedy: under a strict parser
(section 5.3) the same payload is rejected outright.
"""
from __future__ import annotations

from repro.core import StrictMode, StrictParserPolicy, parse_with_policy
from repro.html import Element, inner_html, parse_fragment

#: element/attribute deny-lists, in the spirit of a real HTML sanitizer
FORBIDDEN_ELEMENTS = frozenset({"script", "iframe", "object", "embed", "base"})
FORBIDDEN_ATTRIBUTE_PREFIXES = ("on",)
FORBIDDEN_URL_SCHEMES = ("javascript:", "data:text/html")


def sanitize(dirty: str) -> str:
    """A DOMPurify-style sanitizer: parse, scrub, serialize."""
    nodes, result = parse_fragment(dirty, "div")
    root = nodes[0].parent if nodes else None
    if root is None:
        return ""
    for node in list(root.iter()):
        if not isinstance(node, Element):
            continue
        if node.name in FORBIDDEN_ELEMENTS and node.parent is not None:
            node.parent.remove(node)
            continue
        for name in list(node.attributes):
            value = node.attributes[name].lower().strip()
            if name.startswith(FORBIDDEN_ATTRIBUTE_PREFIXES):
                del node.attributes[name]
            elif name in ("href", "src") and value.startswith(
                FORBIDDEN_URL_SCHEMES
            ):
                del node.attributes[name]
    return inner_html(root)


def browser_renders(html: str) -> list[Element]:
    """What a browser's innerHTML assignment would produce."""
    nodes, _result = parse_fragment(html, "div")
    return [node for node in nodes if isinstance(node, Element)]


FIGURE_1A = (
    "<math><mtext><table><mglyph><style><!--</style>"
    '<img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">'
)


def main() -> None:
    print("payload (Figure 1a):")
    print(f"  {FIGURE_1A}\n")

    clean = sanitize(FIGURE_1A)
    print("sanitizer output (matches Figure 1b):")
    print(f"  {clean}\n")

    # The sanitizer found nothing to remove: no script, no on* attribute
    # outside of an inert title attribute.  But render its output again...
    rendered = browser_renders(clean)
    live = [
        element
        for root in rendered
        for element in [root, *root.iter_elements()]
        if element.name == "img" and "onerror" in element.attributes
    ]
    print("second parse (the browser rendering the sanitized HTML):")
    if live:
        print(f"  !! LIVE XSS: <img onerror={live[0].get('onerror')!r}> "
              "escaped the sanitizer via namespace mutation\n")
    else:
        print("  no live payload (bypass not reproduced)\n")

    # The paper's fix: a strict parser refuses the page instead of
    # guessing.  HF4 (table mutation) and HF5 (namespace confusion) are on
    # the enforced list here.
    policy = StrictParserPolicy(StrictMode.STRICT,
                                monitor_url="https://monitor.example/r")
    outcome = parse_with_policy(FIGURE_1A, policy, url="https://victim.example/")
    print("same payload under STRICT-PARSER: strict")
    print(f"  blocked: {outcome.blocked}")
    print(f"  violations that tripped it: {sorted(outcome.blocked_violations)}")
    for notification in outcome.notifications:
        print(f"  monitor {notification.monitor_url} notified: "
              f"{notification.violations}")


if __name__ == "__main__":
    main()
