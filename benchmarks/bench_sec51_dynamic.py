"""Section 5.1 — the dynamic-content pre-study.

Shape claims from the paper: >60% of sites ship at least one violating
dynamically loaded fragment; FB2 and DM3 sit in top positions; math
violations hardly appear; the distribution correlates with the static
Figure 8 ranking.
"""
from __future__ import annotations

from repro.analysis import render_dynamic, run_dynamic_prestudy


def test_sec51_dynamic_prestudy(benchmark, study, save_report):
    prestudy = benchmark.pedantic(
        run_dynamic_prestudy,
        kwargs={"num_domains": 120, "fragments_per_domain": 12},
        rounds=3, iterations=1,
    )

    assert 0.5 < prestudy.violating_fraction < 0.75, "paper: >60%"
    top = prestudy.top_violations(2)
    assert set(top) == {"FB2", "DM3"}, "paper: FB2/DM3 in top positions"
    assert prestudy.distribution.get("HF5_3", 0) == 0, "math hardly appears"

    static_counts = {
        entry.violation: entry.domains
        for entry in study.figure8().distribution
    }
    correlation = prestudy.rank_correlation_with_static(static_counts)
    assert correlation > 0.6, "distribution similar to the static study"

    save_report("sec51_dynamic", render_dynamic(prestudy, static_counts))
