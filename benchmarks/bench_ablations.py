"""Ablation benches for the design choices DESIGN.md calls out.

1. *Shared parse vs independent parses.*  The paper runs each rule
   "independently of each other"; this framework preserves rule
   independence but shares one parse per document.  The ablation
   quantifies the saving (~the rule count, since parsing dominates).
2. *Per-record gzip vs plain WARC.*  Common Crawl's layout compresses each
   record separately to allow range reads; the ablation measures what that
   costs on the sequential read path.
3. *Prevalence-model correlation on/off.*  The corpus generator's copula
   correlates violations within a domain; without it, the per-year
   any-violation rate would overshoot the paper's ~68-75% band by ~20
   points.  Verified numerically via the calibration machinery.
"""
from __future__ import annotations

import io
import random

import numpy as np
import pytest
from scipy.stats import norm

from repro.commoncrawl import calibration as cal
from repro.commoncrawl.corpusgen import build_injector_targets, injector_cluster
from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import Checker
from repro.core.rules import RULE_CLASSES
from repro.html import parse
from repro.warc import WARCRecord, WARCWriter, iter_records


@pytest.fixture(scope="module")
def dirty_page() -> str:
    draft = build_page("ablate.example", "/", random.Random(3), use_svg=True)
    for name in ("FB2", "DM3", "HF4", "DE3_2"):
        INJECTORS[name].apply(draft, random.Random(4))
    return draft.render()


class TestSharedParseAblation:
    def test_shared_parse(self, benchmark, dirty_page):
        """Production path: one parse feeding all 20 rules."""
        checker = Checker()
        report = benchmark(checker.check_html, dirty_page)
        assert report.findings

    def test_independent_parses(self, benchmark, dirty_page):
        """Ablation: re-parse per rule, as a literal reading of the paper's
        'rules run independently' would do."""
        rules = [rule_class() for rule_class in RULE_CLASSES]

        def run():
            findings = []
            for rule in rules:
                findings.extend(rule.check(parse(dirty_page)))
            return findings

        findings = benchmark(run)
        # identical findings either way
        assert {f.violation for f in findings} == {
            f.violation for f in Checker().check_html(dirty_page).findings
        }


class TestWarcCompressionAblation:
    def _build(self, use_gzip: bool) -> bytes:
        buffer = io.BytesIO()
        writer = WARCWriter(buffer, use_gzip=use_gzip)
        payload = b"<html><body>" + b"x" * 3000 + b"</body></html>"
        for index in range(200):
            writer.write_record(
                WARCRecord.response(
                    f"http://a.example/p{index}", payload,
                    "2022-01-15T00:00:00Z",
                )
            )
        return buffer.getvalue()

    def test_read_gzip_members(self, benchmark):
        blob = self._build(use_gzip=True)

        def run():
            return sum(1 for _record in iter_records(io.BytesIO(blob)))

        assert benchmark(run) == 200

    def test_read_plain(self, benchmark):
        blob = self._build(use_gzip=False)

        def run():
            return sum(1 for _record in iter_records(io.BytesIO(blob)))

        assert benchmark(run) == 200


class TestCorrelationAblation:
    """Without the copula, the modeled any-violation rate overshoots."""

    @staticmethod
    def _any_rate(rho_fixable: float, rho_manual: float) -> float:
        targets = build_injector_targets()
        names = [name for name in targets if INJECTORS[name].effects]
        rng = np.random.default_rng(7)
        # independent trait/activation factors per cluster, matching the
        # planner's two-factor structure
        factors = {
            cluster: (rng.standard_normal(8000), rng.standard_normal(8000))
            for cluster in ("fixable", "manual")
        }
        year = len(cal.YEARS) - 1
        keep = np.ones(8000)
        for name in names:
            cluster = injector_cluster(name)
            rho = rho_manual if cluster == "manual" else rho_fixable
            z, w = factors[cluster]
            denom = np.sqrt(max(1e-12, 1 - rho * rho))
            union = np.clip(targets[name].union, 1e-9, 1 - 1e-9)
            conditional = np.clip(targets[name].conditional(year), 1e-9, 1 - 1e-9)
            trait = norm.cdf((norm.ppf(union) - rho * z) / denom)
            active = norm.cdf((norm.ppf(conditional) - rho * w) / denom)
            keep *= 1.0 - trait * active
        return float(np.mean(1.0 - keep))

    def test_correlated_model(self, benchmark, save_report):
        from repro.commoncrawl.corpusgen import calibrate_loadings

        loadings = calibrate_loadings(build_injector_targets(), samples=8000)
        rate = benchmark.pedantic(
            self._any_rate, args=(loadings.fixable, loadings.manual),
            rounds=3, iterations=1,
        )
        uncorrelated = self._any_rate(0.0, 0.0)
        paper_2022 = cal.OVERALL_VIOLATING[2022]
        assert abs(rate - paper_2022) < 0.06
        assert uncorrelated > paper_2022 + 0.10, (
            "independence overshoots the paper's rate by >10 points"
        )
        save_report(
            "ablation_correlation",
            "Ablation: violation-correlation model (2022 any-violation rate)\n"
            f"  paper (Figure 9):      {paper_2022:.1%}\n"
            f"  fitted copula model:   {rate:.1%}\n"
            f"  independence ablation: {uncorrelated:.1%}\n",
        )
