"""Figure 10 — trend of problem groups over the years.

Shape claims: FB and DM are the largest groups (40-50%), HF in between
and clearly falling, DE far below everything (~5%), every group trending
down or flat.
"""
from __future__ import annotations

from repro.analysis import figure10_group_trends, render_group_trends
from repro.core import Group


def test_fig10_group_trends(benchmark, study, save_report):
    series = benchmark(figure10_group_trends, study.storage)

    means = {
        group: sum(s.fractions()) / len(s.fractions())
        for group, s in series.items()
    }
    assert means[Group.FILTER_BYPASS] > means[Group.HTML_FORMATTING]
    assert means[Group.DATA_MANIPULATION] > means[Group.HTML_FORMATTING]
    assert means[Group.HTML_FORMATTING] > means[Group.DATA_EXFILTRATION]
    assert means[Group.DATA_EXFILTRATION] < 0.15, "paper: DE is 4-5%"

    # HF declines visibly (paper: 42% -> 33%)
    hf = series[Group.HTML_FORMATTING].fractions()
    assert hf[-1] < hf[0]

    save_report("fig10_groups", render_group_trends(series))
