"""Service-layer throughput — the ``BENCH_service.json`` snapshot.

Drives :class:`repro.service.ServiceApp` with an in-process client (the
same ``handle`` coroutine the socket server dispatches to), so the
numbers measure the service stack — routing, cache, admission, worker
dispatch — without kernel socket noise.  Three cases:

* ``check_uncached``  — every request a distinct document; one pooled
  worker.  This is the cold path: sha256 key, cache miss, IPC round-trip
  to the worker process, full parse + 20 rules.
* ``check_cached``    — every request the same document (cache primed
  outside the timing window).  This is the hot path the cache exists
  for: sha256 key + LRU probe + counter updates, no worker dispatch.
* ``check_uncached_2w`` — the cold path again with two pooled workers,
  recording how much process-level parallelism buys on this host (on a
  single-core box: expect little; the number is recorded either way).

The acceptance bar from the PR issue — cache-hit throughput at least
10x uncached — is computed into ``derived.cache_speedup`` and printed;
run with ``--output reports/BENCH_service.json`` to commit the snapshot::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --output reports/BENCH_service.json

Timing is best-of-``--rounds`` wall-clock over the full request batch
(minimum wins, the repo's usual ``timeit`` discipline).  Worker pools
are created once per case and warmed before timing, so pool fork cost
never leaks into a round.
"""
from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.bench import dirty_page
from repro.service import ServiceApp, ServiceConfig, create_pool, post

SCHEMA = "repro-bench/1"
URL = "http://bench.example/page"

#: concurrent in-flight requests the driver keeps open
CONCURRENCY = 4


def make_bodies(count: int, *, distinct: bool) -> list[bytes]:
    """``count`` request bodies; ``distinct`` busts the content-hash cache."""
    base = dirty_page()
    if distinct:
        return [
            (base + f"<!-- variant {i} -->").encode("utf-8")
            for i in range(count)
        ]
    return [base.encode("utf-8")] * count


async def _drive(app: ServiceApp, bodies: list[bytes]) -> float:
    """Send all bodies through ``app.handle`` with bounded concurrency."""
    gate = asyncio.Semaphore(CONCURRENCY)

    async def one(body: bytes) -> None:
        async with gate:
            response = await app.handle(post("/check", body, url=URL))
            if response.status != 200:
                raise RuntimeError(
                    f"expected 200, got {response.status}: "
                    f"{response.body[:200]!r}"
                )

    started = time.perf_counter()
    await asyncio.gather(*(one(body) for body in bodies))
    return time.perf_counter() - started


def run_case(
    *,
    workers: int,
    distinct: bool,
    requests: int,
    rounds: int,
) -> dict:
    """Best-of-``rounds`` requests/second for one service configuration."""
    pool = create_pool(workers)
    try:
        config = ServiceConfig(workers=workers, cache_size=requests + 8)
        app = ServiceApp(config, executor=pool)
        bodies = make_bodies(requests, distinct=distinct)
        # prime: warm the pool (fork + rule-registry import) and, for the
        # cached case, fill the cache so the timed rounds are pure hits
        asyncio.run(_drive(app, bodies if distinct else bodies[:1]))
        best = float("inf")
        for _ in range(max(1, rounds)):
            if distinct:
                app.cache.clear()  # every timed round re-misses
            best = min(best, asyncio.run(_drive(app, bodies)))
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    return {
        "kind": "service",
        "workers": workers,
        "distinct_bodies": distinct,
        "requests": requests,
        "best_seconds": best,
        "requests_per_second": requests / best if best else 0.0,
    }


def run_service_bench(*, rounds: int, requests: int, label: str) -> dict:
    cases = {
        "check_uncached": run_case(
            workers=1, distinct=True, requests=requests, rounds=rounds
        ),
        "check_cached": run_case(
            workers=1, distinct=False, requests=requests * 10, rounds=rounds
        ),
        "check_uncached_2w": run_case(
            workers=2, distinct=True, requests=requests, rounds=rounds
        ),
    }
    uncached = cases["check_uncached"]["requests_per_second"]
    cached = cases["check_cached"]["requests_per_second"]
    two_workers = cases["check_uncached_2w"]["requests_per_second"]
    return {
        "schema": SCHEMA,
        "label": label,
        "config": {
            "rounds": rounds,
            "requests": requests,
            "concurrency": CONCURRENCY,
        },
        "cases": cases,
        "derived": {
            "cache_speedup": cached / uncached if uncached else 0.0,
            "two_worker_speedup": two_workers / uncached if uncached else 0.0,
        },
        "rules": {},
    }


def render_snapshot(snapshot: dict) -> str:
    lines = ["service throughput"]
    for name, case in snapshot["cases"].items():
        lines.append(
            f"  {name:18s} {case['requests']} requests in "
            f"{case['best_seconds'] * 1e3:.1f} ms "
            f"({case['requests_per_second']:.0f} req/s, "
            f"workers={case['workers']})"
        )
    derived = snapshot["derived"]
    lines.append(
        f"  cache speedup: {derived['cache_speedup']:.1f}x   "
        f"2-worker speedup: {derived['two_worker_speedup']:.2f}x"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="service-layer throughput snapshot (repro-bench/1)"
    )
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the BENCH_service.json snapshot here")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds; the minimum wins (default 3)")
    parser.add_argument("--requests", type=int, default=40,
                        help="uncached batch size; cached uses 10x "
                        "(default 40)")
    parser.add_argument("--label", default="",
                        help="provenance label stored in the snapshot")
    args = parser.parse_args(argv)
    snapshot = run_service_bench(
        rounds=args.rounds, requests=args.requests, label=args.label
    )
    print(render_snapshot(snapshot))
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"snapshot written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
