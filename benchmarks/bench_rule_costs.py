"""Per-rule cost breakdown (ablation): which of the 20 checks costs what.

The checker's per-page cost is dominated by parsing; this bench shows the
rule layer itself is cheap, and identifies the relatively expensive rules
(the DOM-walking DM1/DM2/HF5_1 scans vs. the error-list filters).
"""
from __future__ import annotations

import random

import pytest

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core.rules import RULE_CLASSES
from repro.html import parse


@pytest.fixture(scope="module")
def parsed_dirty_page():
    draft = build_page("rules.example", "/", random.Random(5), use_svg=True)
    for name in ("FB2", "FB1", "DM3", "DM1", "HF4", "DE3_2", "HF5_2"):
        INJECTORS[name].apply(draft, random.Random(6))
    return parse(draft.render())


@pytest.mark.parametrize("rule_class", RULE_CLASSES, ids=lambda c: c.id)
def test_rule_cost(benchmark, rule_class, parsed_dirty_page):
    rule = rule_class()
    findings = benchmark(rule.check, parsed_dirty_page)
    assert isinstance(findings, list)
