"""Parser substrate micro-benchmarks: tokenizer and tree builder
throughput on representative documents (the per-page cost floor of the
whole study)."""
from __future__ import annotations

import random

import pytest

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.html import parse
from repro.html.tokenizer import Tokenizer


@pytest.fixture(scope="module")
def clean_page() -> str:
    return build_page("bench.example", "/", random.Random(7), use_svg=True).render()


@pytest.fixture(scope="module")
def dirty_page() -> str:
    draft = build_page("bench.example", "/", random.Random(7))
    for name in ("FB2", "DM3", "HF4", "HF_CASCADE", "DE3_2"):
        INJECTORS[name].apply(draft, random.Random(8))
    return draft.render()


@pytest.fixture(scope="module")
def plaintext_page() -> str:
    """A page ending in a large PLAINTEXT block (pure text-run scanning)."""
    body = "".join(
        f"line {i}: plain text with <angle brackets> &amp; ampersands\n"
        for i in range(120)
    )
    return (
        "<!DOCTYPE html><html><head><title>pt</title></head>"
        f"<body><p>intro</p><plaintext>{body}"
    )


@pytest.fixture(scope="module")
def script_escape_page() -> str:
    """A page dominated by script-data escaped/double-escaped content."""
    chunk = (
        "<script><!--\n"
        "  var a = 1 < 2, b = {};\n"
        "  document.write('<script>inner()<\\/script>');\n"
        "  // dashes -- inside -- comment-like text\n"
        "--></script>\n"
    )
    return (
        "<!DOCTYPE html><html><head><title>esc</title></head><body>"
        + chunk * 40
        + "</body></html>"
    )


def _count_tokens(text: str) -> int:
    return sum(1 for _token in Tokenizer(text))


def test_tokenizer_clean(benchmark, clean_page):
    count = benchmark(_count_tokens, clean_page)
    assert count > 10


def test_tokenizer_dirty(benchmark, dirty_page):
    """Violation-laden markup exercises the error-reporting slow paths."""
    count = benchmark(_count_tokens, dirty_page)
    assert count > 10


def test_tokenizer_plaintext(benchmark, plaintext_page):
    count = benchmark(_count_tokens, plaintext_page)
    assert count > 10


def test_tokenizer_script_escape(benchmark, script_escape_page):
    """Script-data (double-)escaped states are the trickiest chunked states."""
    count = benchmark(_count_tokens, script_escape_page)
    assert count > 10


def test_full_parse_clean(benchmark, clean_page):
    result = benchmark(parse, clean_page)
    assert result.document.body is not None


def test_full_parse_dirty(benchmark, dirty_page):
    """Error-tolerant fix-ups (foster parenting, head cascade) add cost."""
    result = benchmark(parse, dirty_page)
    assert result.errors


def test_parse_large_document(benchmark):
    sections = "".join(
        f"<section><h2>S{i}</h2><p>paragraph {i} with <a href='/l{i}'>links"
        f"</a> &amp; entities</p></section>"
        for i in range(300)
    )
    big = f"<!DOCTYPE html><html><head><title>big</title></head><body>{sections}</body></html>"
    result = benchmark(parse, big)
    assert len(result.document.find_all("section")) == 300
