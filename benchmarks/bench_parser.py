"""Parser substrate micro-benchmarks: tokenizer and tree builder
throughput on representative documents (the per-page cost floor of the
whole study)."""
from __future__ import annotations

import random

import pytest

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.html import parse
from repro.html.tokenizer import Tokenizer


@pytest.fixture(scope="module")
def clean_page() -> str:
    return build_page("bench.example", "/", random.Random(7), use_svg=True).render()


@pytest.fixture(scope="module")
def dirty_page() -> str:
    draft = build_page("bench.example", "/", random.Random(7))
    for name in ("FB2", "DM3", "HF4", "HF_CASCADE", "DE3_2"):
        INJECTORS[name].apply(draft, random.Random(8))
    return draft.render()


def test_tokenizer_clean(benchmark, clean_page):
    def run():
        tokenizer = Tokenizer(clean_page)
        return sum(1 for _token in tokenizer)

    count = benchmark(run)
    assert count > 10


def test_full_parse_clean(benchmark, clean_page):
    result = benchmark(parse, clean_page)
    assert result.document.body is not None


def test_full_parse_dirty(benchmark, dirty_page):
    """Error-tolerant fix-ups (foster parenting, head cascade) add cost."""
    result = benchmark(parse, dirty_page)
    assert result.errors


def test_parse_large_document(benchmark):
    sections = "".join(
        f"<section><h2>S{i}</h2><p>paragraph {i} with <a href='/l{i}'>links"
        f"</a> &amp; entities</p></section>"
        for i in range(300)
    )
    big = f"<!DOCTYPE html><html><head><title>big</title></head><body>{sections}</body></html>"
    result = benchmark(parse, big)
    assert len(result.document.find_all("section")) == 300
