"""Figure 8 — average distribution of violations over the study period.

Shape claims checked against the paper: FB2 and DM3 dominate (>2x the
next), FB1 third among families, DE violations rare, HF5_3 nearly absent.
"""
from __future__ import annotations

from repro.analysis import figure8_distribution, render_figure8


def test_fig8_distribution(benchmark, study, save_report):
    stats = benchmark(figure8_distribution, study.storage)

    by_id = {entry.violation: entry for entry in stats.distribution}
    top_two = {entry.violation for entry in stats.distribution[:2]}
    assert top_two == {"FB2", "DM3"}, "paper: FB2/DM3 on >75% of domains"
    assert by_id["FB1"].fraction > by_id["DM1"].fraction
    # DE family is rare: none above ~10%
    for violation in ("DE1", "DE2", "DE3_1", "DE3_2", "DE3_3", "DE4"):
        assert by_id[violation].fraction < 0.15
    assert by_id["HF5_3"].fraction < 0.02, "paper found 3 domains total"
    # overall: ~92% of domains violated at least once over eight years
    assert stats.any_violation_fraction > 0.75

    save_report("fig8_distribution", render_figure8(stats))
