"""Section 4.2 context numbers — math/svg element adoption trend.

Shape claims: math usage is tiny but does not shrink (paper: 42 -> 224
domains over the study), svg usage is widespread and growing — together
they support the argument that HF5 violations stay rare despite adoption.
"""
from __future__ import annotations

from repro.analysis import element_usage_trend, render_element_usage


def test_sec42_element_usage(benchmark, study, save_report):
    trend = benchmark(element_usage_trend, study.storage)

    assert trend.math_is_growing, "paper: math adoption grows"
    svg = [point.svg_fraction for point in trend.points]
    assert svg[-1] > svg[0], "svg adoption grows (12% -> 40% in the corpus)"
    math_fracs = [point.math_fraction for point in trend.points]
    assert max(math_fracs) < 0.1, "math stays a niche feature"

    save_report("sec42_element_usage", render_element_usage(trend))
