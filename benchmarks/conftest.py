"""Shared benchmark fixtures.

Every table/figure bench runs against one cached study (built once per
machine, reused across sessions via the study cache).  Each bench renders
its paper-vs-measured report into ``reports/`` so the artifacts survive
the run — EXPERIMENTS.md points at them.

Scale knob: REPRO_SCALE multiplies the default 150-domain corpus.
"""
from __future__ import annotations

from pathlib import Path

import pytest

from repro.study import StudyConfig, run_study

REPORTS_DIR = Path(__file__).resolve().parent.parent / "reports"


@pytest.fixture(scope="session")
def study():
    """The shared end-to-end study all analysis benches read from."""
    handle = run_study(StudyConfig.scaled())
    yield handle
    handle.close()


@pytest.fixture(scope="session")
def save_report():
    """Persist one bench's rendered paper-vs-measured output."""
    REPORTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (REPORTS_DIR / f"{name}.txt").write_text(text)
        print()
        print(text)

    return _save
