"""Section 4.5 — existing mitigation footprints, 2015 vs 2022.

Shape claims: the '<script'-in-attribute population never includes nonced
scripts; newline-URLs are an order of magnitude more common than
newline+'<' URLs; the newline+'<' population shrinks over time.
"""
from __future__ import annotations

from repro.analysis import compare_mitigations, render_mitigations


def test_sec45_mitigations(benchmark, study, save_report):
    comparison = benchmark(compare_mitigations, study.storage)

    assert not comparison.nonce_mitigation_affects_anyone, (
        "paper: none of the '<script' attributes sit on nonced scripts"
    )
    first, last = comparison.first, comparison.last
    assert first.nl_in_url_domains >= first.nl_lt_in_url_domains
    assert last.nl_in_url_domains >= last.nl_lt_in_url_domains
    # the blocked combination is rarer than plain newlines by a wide margin
    if first.nl_in_url_domains:
        assert (
            first.nl_lt_in_url_domains / first.nl_in_url_domains < 0.5
        )

    save_report("sec45_mitigations", render_mitigations(comparison))
