"""Fuzz harness throughput — executions per second per oracle.

Not a paper figure: this tracks the operational cost of the repo's own
differential-fuzzing gate (`repro-study fuzz`, the ci.sh smoke stage).
The numbers bound how many iterations a time-boxed CI smoke can afford
and flag regressions in the generator/mutator/oracle path itself —
a 10x slowdown here usually means an oracle grew an accidental
quadratic, which the step-budget oracle alone would not catch.
"""
from __future__ import annotations

import time

import pytest

from repro.fuzz import FuzzConfig, run_fuzz
from repro.fuzz.harness import DEFAULT_ORACLES

ITERATIONS = 150


@pytest.mark.parametrize("oracle", sorted(set(DEFAULT_ORACLES) - {"parallel"}))
def test_single_oracle_throughput(benchmark, oracle):
    report = benchmark(
        run_fuzz,
        FuzzConfig(
            seed=1, iterations=ITERATIONS, oracles=(oracle,), minimize=False
        ),
    )
    assert report.executions == ITERATIONS
    assert report.findings == []


def test_full_harness_throughput(benchmark, save_report):
    config = FuzzConfig(seed=1, iterations=ITERATIONS)

    start = time.perf_counter()
    report = run_fuzz(config)
    elapsed = time.perf_counter() - start
    assert report.findings == []

    total_executions = sum(report.oracle_executions.values())
    lines = [
        "fuzz harness throughput",
        "=======================",
        f"iterations: {report.iterations} (seed {report.seed})",
        f"oracle executions: {total_executions}",
        f"skips: {report.skips}",
        f"wall time: {elapsed:.2f}s",
        f"executions/sec: {total_executions / elapsed:.0f}",
        "",
        "per-oracle executions:",
    ]
    lines.extend(
        f"  {name}: {count}"
        for name, count in sorted(report.oracle_executions.items())
    )
    save_report("bench_fuzz_throughput", "\n".join(lines))

    benchmark(
        run_fuzz,
        FuzzConfig(seed=1, iterations=40, oracles=("tokenize", "roundtrip")),
    )
