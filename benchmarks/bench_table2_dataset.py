"""Table 2 — analyzed domains per crawl (dataset construction + stats)."""
from __future__ import annotations

from repro.analysis import dataset_table, render_table2
from repro.commoncrawl import calibration as cal


def test_table2_dataset(benchmark, study, save_report):
    summary = benchmark(dataset_table, study.storage)

    # shape assertions against the paper
    assert [row.year for row in summary.rows] == list(cal.YEARS)
    for row in summary.rows:
        assert row.success_rate > 0.9, "Table 2 success rates are 97.7-99.3%"
    by_year = {row.year: row for row in summary.rows}
    assert by_year[2017].analyzed >= by_year[2016].analyzed, "2017 growth"

    save_report("table2_dataset", render_table2(summary))
