"""Framework throughput — the paper's operational claim that the Common
Crawl approach "enables to analyze nearly a thousand pages per minute from
one IP address" (section 3.3).  Our local equivalent measures the fetch +
decode + check path per page and end-to-end over a domain.
"""
from __future__ import annotations

import pytest

from repro.commoncrawl import CommonCrawlClient, snapshot_name
from repro.core import Checker
from repro.pipeline import collect_metadata, fetch_pages
from repro.pipeline.checker_stage import check_page


@pytest.fixture(scope="module")
def client(study):
    return CommonCrawlClient(study.archive_dir)


@pytest.fixture(scope="module")
def sample_domain(study):
    truth = study.ground_truth()
    return truth["succeeded"]["2022"][0]


def test_index_query(benchmark, client, sample_domain):
    entries = benchmark(
        lambda: list(
            client.query(snapshot_name(2022), sample_domain, limit=100)
        )
    )
    assert entries


def test_record_fetch(benchmark, client, sample_domain):
    entry = next(client.query(snapshot_name(2022), sample_domain))
    record = benchmark(client.fetch, entry)
    assert record.payload


def test_check_page_full_path(benchmark, client, sample_domain):
    """decode + parse + all 20 rules + mitigation detectors, per page."""
    metadata = collect_metadata(client, snapshot_name(2022), sample_domain)
    page = next(fetch_pages(client, metadata))
    checker = Checker()
    checked = benchmark(check_page, page, checker)
    assert checked.utf8


def test_domain_end_to_end(benchmark, client, sample_domain):
    """Full per-domain pipeline: metadata -> fetch -> check all pages."""
    checker = Checker()

    def run_domain() -> int:
        metadata = collect_metadata(
            client, snapshot_name(2022), sample_domain, max_pages=100
        )
        pages = 0
        for page in fetch_pages(client, metadata):
            check_page(page, checker)
            pages += 1
        return pages

    pages = benchmark(run_domain)
    assert pages >= 1
