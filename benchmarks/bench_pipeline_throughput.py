"""Framework throughput — the paper's operational claim that the Common
Crawl approach "enables to analyze nearly a thousand pages per minute from
one IP address" (section 3.3).  Our local equivalent measures the fetch +
decode + check path per page and end-to-end over a domain.

Run under pytest for the fetch/check benches, or standalone for the
storage-layer throughput snapshot (the ``BENCH_pipeline_*.json`` pair
referenced by EXPERIMENTS.md)::

    PYTHONPATH=src python benchmarks/bench_pipeline_throughput.py \
        --untuned --output reports/BENCH_pipeline_before.json
    PYTHONPATH=src python benchmarks/bench_pipeline_throughput.py \
        --output reports/BENCH_pipeline_after.json

The standalone mode measures the SQLite write path (pages + findings
inserts with the runner's per-snapshot commit cadence) and the
aggregation queries behind Table 2 / Figures 8-10, with the storage
tuning (WAL, ``synchronous=NORMAL``, secondary indexes) on or off — the
two snapshots make the tuning's effect a recorded fact, not folklore.
"""
from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.commoncrawl import CommonCrawlClient, snapshot_name
from repro.core import Checker
from repro.pipeline import Storage, collect_metadata, fetch_pages
from repro.pipeline.checker_stage import check_page


@pytest.fixture(scope="module")
def client(study):
    return CommonCrawlClient(study.archive_dir)


@pytest.fixture(scope="module")
def sample_domain(study):
    truth = study.ground_truth()
    return truth["succeeded"]["2022"][0]


def test_index_query(benchmark, client, sample_domain):
    entries = benchmark(
        lambda: list(
            client.query(snapshot_name(2022), sample_domain, limit=100)
        )
    )
    assert entries


def test_record_fetch(benchmark, client, sample_domain):
    entry = next(client.query(snapshot_name(2022), sample_domain))
    record = benchmark(client.fetch, entry)
    assert record.payload


def test_check_page_full_path(benchmark, client, sample_domain):
    """decode + parse + all 20 rules + mitigation detectors, per page."""
    metadata = collect_metadata(client, snapshot_name(2022), sample_domain)
    page = next(fetch_pages(client, metadata))
    checker = Checker()
    checked = benchmark(check_page, page, checker)
    assert checked.utf8


def test_domain_end_to_end(benchmark, client, sample_domain):
    """Full per-domain pipeline: metadata -> fetch -> check all pages."""
    checker = Checker()

    def run_domain() -> int:
        metadata = collect_metadata(
            client, snapshot_name(2022), sample_domain, max_pages=100
        )
        pages = 0
        for page in fetch_pages(client, metadata):
            check_page(page, checker)
            pages += 1
        return pages

    pages = benchmark(run_domain)
    assert pages >= 1


# ---------------------------------------------------------------------------
# Standalone storage-layer throughput (the BENCH_pipeline_*.json snapshots)
# ---------------------------------------------------------------------------

SCHEMA = "repro-bench/1"

#: synthetic corpus shape: mirrors a mid-size study run (runner commit
#: cadence included) without needing the archive fixture — large enough
#: that query plans, not constant overheads, dominate the aggregate case
SNAPSHOTS = 6
DOMAINS = 150
PAGES_PER_DOMAIN = 10
#: deterministic per-page finding mix (violation id -> count)
FINDING_MIX = (
    {"FB2": 2, "HF4": 1},
    {"DM3": 3},
    {},
    {"FB1": 1, "DE3": 2, "FB2": 1},
    {},
    {"HF1": 1},
)


def _populate(storage: Storage, *, commit_per_domain: bool = False) -> int:
    """The runner's write pattern over the synthetic corpus; pages written.

    ``commit_per_domain`` switches from the runner's batch cadence (one
    commit per snapshot) to the crash-resumable cadence a checkpointing
    run would use — one commit per domain, so progress survives a kill.
    The durable cadence is where the WAL + ``synchronous=NORMAL`` tuning
    actually earns its keep: per-commit fsync cost dominates it.
    """
    pages_written = 0
    domain_ids = [
        storage.add_domain(f"domain{d}.example", avg_rank=d)
        for d in range(DOMAINS)
    ]
    for s in range(SNAPSHOTS):
        snapshot_id = storage.add_snapshot(f"CC-BENCH-{2015 + s}", 2015 + s)
        for domain_id in domain_ids:
            for p in range(PAGES_PER_DOMAIN):
                page_id = storage.add_page(
                    snapshot_id, domain_id,
                    f"http://domain{domain_id}.example/page{p}",
                    utf8=True, checked=True,
                )
                counts = FINDING_MIX[p % len(FINDING_MIX)]
                if counts:
                    storage.add_findings(page_id, counts)
                pages_written += 1
            storage.set_domain_status(
                snapshot_id, domain_id, found=True, analyzed=True,
                pages=PAGES_PER_DOMAIN,
            )
            if commit_per_domain:
                storage.commit()
        storage.commit()  # the runner commits once per snapshot
    return pages_written


def _aggregate(storage: Storage) -> int:
    """One full pass over the aggregation queries the analyses run."""
    queries = 0
    storage.dataset_stats()
    storage.total_domains_analyzed()
    storage.total_pages_checked()
    storage.domains_with_any_violation()
    storage.violation_domain_counts()
    queries += 5
    for year in range(2015, 2015 + SNAPSHOTS):
        storage.analyzed_domains(year)
        storage.violation_domain_counts(year)
        storage.domains_with_any_violation(year)
        storage.domains_with_violations_in(("FB1", "FB2", "DM3"), year)
        storage.domain_violation_sets(year)
        queries += 5
    return queries


def run_storage_bench(*, tuned: bool, rounds: int, label: str) -> dict:
    """Measure write + aggregate throughput; returns a snapshot dict."""
    write_best = float("inf")
    durable_best = float("inf")
    aggregate_best = float("inf")
    pages = 0
    queries = 0
    for _ in range(max(1, rounds)):
        with tempfile.TemporaryDirectory(prefix="repro-bench-db-") as tmp:
            storage = Storage(Path(tmp) / "bench.sqlite", tuned=tuned)
            started = time.perf_counter()
            pages = _populate(storage)
            write_seconds = time.perf_counter() - started
            started = time.perf_counter()
            queries = _aggregate(storage)
            aggregate_seconds = time.perf_counter() - started
            storage.close()
        with tempfile.TemporaryDirectory(prefix="repro-bench-db-") as tmp:
            storage = Storage(Path(tmp) / "bench.sqlite", tuned=tuned)
            started = time.perf_counter()
            _populate(storage, commit_per_domain=True)
            durable_seconds = time.perf_counter() - started
            storage.close()
        write_best = min(write_best, write_seconds)
        durable_best = min(durable_best, durable_seconds)
        aggregate_best = min(aggregate_best, aggregate_seconds)
    return {
        "schema": SCHEMA,
        "label": label,
        "config": {
            "tuned": tuned,
            "rounds": rounds,
            "snapshots": SNAPSHOTS,
            "domains": DOMAINS,
            "pages_per_domain": PAGES_PER_DOMAIN,
        },
        "cases": {
            "storage_write": {
                "kind": "storage",
                "pages": pages,
                "best_seconds": write_best,
                "pages_per_second": pages / write_best if write_best else 0.0,
            },
            "storage_write_durable": {
                "kind": "storage",
                "pages": pages,
                "commits": SNAPSHOTS * (DOMAINS + 1),
                "best_seconds": durable_best,
                "pages_per_second": (
                    pages / durable_best if durable_best else 0.0
                ),
            },
            "storage_aggregate": {
                "kind": "storage",
                "queries": queries,
                "best_seconds": aggregate_best,
                "queries_per_second": (
                    queries / aggregate_best if aggregate_best else 0.0
                ),
            },
        },
        "rules": {},
    }


def render_storage_snapshot(snapshot: dict) -> str:
    write = snapshot["cases"]["storage_write"]
    durable = snapshot["cases"]["storage_write_durable"]
    aggregate = snapshot["cases"]["storage_aggregate"]
    mode = "tuned" if snapshot["config"]["tuned"] else "untuned"
    return "\n".join(
        [
            f"storage throughput [{mode}]",
            f"  write (batch):   {write['pages']} pages in "
            f"{write['best_seconds'] * 1e3:.1f} ms "
            f"({write['pages_per_second']:.0f} pages/s)",
            f"  write (durable): {durable['pages']} pages / "
            f"{durable['commits']} commits in "
            f"{durable['best_seconds'] * 1e3:.1f} ms "
            f"({durable['pages_per_second']:.0f} pages/s)",
            f"  aggregate:       {aggregate['queries']} queries in "
            f"{aggregate['best_seconds'] * 1e3:.1f} ms "
            f"({aggregate['queries_per_second']:.0f} queries/s)",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="storage-layer throughput snapshot (repro-bench/1)"
    )
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the BENCH_pipeline_*.json snapshot here")
    parser.add_argument("--untuned", action="store_true",
                        help="measure without pragmas/secondary indexes "
                        "(the 'before' half of the pair)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds; the minimum wins (default 5)")
    parser.add_argument("--label", default="",
                        help="provenance label stored in the snapshot")
    args = parser.parse_args(argv)
    snapshot = run_storage_bench(
        tuned=not args.untuned, rounds=args.rounds, label=args.label
    )
    print(render_storage_snapshot(snapshot))
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"snapshot written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
