"""Framework throughput — the paper's operational claim that the Common
Crawl approach "enables to analyze nearly a thousand pages per minute from
one IP address" (section 3.3).  Our local equivalent measures the fetch +
decode + check path per page and end-to-end over a domain.

Run under pytest for the fetch/check benches, or standalone for the
study-pipeline throughput snapshot (the ``BENCH_pipeline_*.json`` pairs
referenced by EXPERIMENTS.md)::

    PYTHONPATH=src python benchmarks/bench_pipeline_throughput.py \
        --legacy --output reports/BENCH_pipeline_pr5_before.json
    PYTHONPATH=src python benchmarks/bench_pipeline_throughput.py \
        --output reports/BENCH_pipeline_after.json

The standalone mode measures four layers, each with an explicit
before/after axis so a perf claim is always a recorded pair:

* **storage** (``--untuned``): the SQLite write path (pages + findings
  inserts with the runner's commit cadence) and the aggregation queries
  behind Table 2 / Figures 8-10, with the WAL/NORMAL/index tuning on or
  off;
* **CDX index** (``--legacy``): open + exact ``lookup`` + ``domain_query``
  against the eager linear-scan reference loader vs the mmap-backed
  binary-search index;
* **per-stage pipeline attribution**: the sequential measurement loop with
  each stage (index query / WARC fetch / check / store) timed separately,
  so an end-to-end delta is explainable stage by stage;
* **end-to-end runners**: :class:`StudyRunner` and the parallel runner
  (``--legacy`` replays the old per-snapshot ``pool.map`` barrier
  orchestration; default is the completion-streamed runner).

The script deliberately runs on older checkouts too (every post-rework
API is feature-detected and falls back to the legacy path), so a
"before" snapshot can be captured from the pre-rework tree with the same
workload.
"""
from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.commoncrawl import (
    ArchiveBuilder,
    CommonCrawlClient,
    CorpusConfig,
    CorpusPlanner,
    snapshot_name,
)
from repro.core import Checker
from repro.pipeline import Storage, collect_metadata, fetch_pages
from repro.pipeline.checker_stage import check_page
from repro.warc import CDXEntry, CDXIndex, CDXWriter, surt


@pytest.fixture(scope="module")
def client(study):
    return CommonCrawlClient(study.archive_dir)


@pytest.fixture(scope="module")
def sample_domain(study):
    truth = study.ground_truth()
    return truth["succeeded"]["2022"][0]


def test_index_query(benchmark, client, sample_domain):
    entries = benchmark(
        lambda: list(
            client.query(snapshot_name(2022), sample_domain, limit=100)
        )
    )
    assert entries


def test_record_fetch(benchmark, client, sample_domain):
    entry = next(client.query(snapshot_name(2022), sample_domain))
    record = benchmark(client.fetch, entry)
    assert record.payload


def test_check_page_full_path(benchmark, client, sample_domain):
    """decode + parse + all 20 rules + mitigation detectors, per page."""
    metadata = collect_metadata(client, snapshot_name(2022), sample_domain)
    page = next(fetch_pages(client, metadata))
    checker = Checker()
    checked = benchmark(check_page, page, checker)
    assert checked.utf8


def test_domain_end_to_end(benchmark, client, sample_domain):
    """Full per-domain pipeline: metadata -> fetch -> check all pages."""
    checker = Checker()

    def run_domain() -> int:
        metadata = collect_metadata(
            client, snapshot_name(2022), sample_domain, max_pages=100
        )
        pages = 0
        for page in fetch_pages(client, metadata):
            check_page(page, checker)
            pages += 1
        return pages

    pages = benchmark(run_domain)
    assert pages >= 1


# ---------------------------------------------------------------------------
# Standalone storage-layer throughput (the BENCH_pipeline_*.json snapshots)
# ---------------------------------------------------------------------------

SCHEMA = "repro-bench/1"

#: synthetic corpus shape: mirrors a mid-size study run (runner commit
#: cadence included) without needing the archive fixture — large enough
#: that query plans, not constant overheads, dominate the aggregate case
SNAPSHOTS = 6
DOMAINS = 150
PAGES_PER_DOMAIN = 10
#: deterministic per-page finding mix (violation id -> count)
FINDING_MIX = (
    {"FB2": 2, "HF4": 1},
    {"DM3": 3},
    {},
    {"FB1": 1, "DE3": 2, "FB2": 1},
    {},
    {"HF1": 1},
)


def _populate(storage: Storage, *, commit_per_domain: bool = False) -> int:
    """The runner's write pattern over the synthetic corpus; pages written.

    ``commit_per_domain`` switches from the runner's batch cadence (one
    commit per snapshot) to the crash-resumable cadence a checkpointing
    run would use — one commit per domain, so progress survives a kill.
    The durable cadence is where the WAL + ``synchronous=NORMAL`` tuning
    actually earns its keep: per-commit fsync cost dominates it.
    """
    pages_written = 0
    domain_ids = [
        storage.add_domain(f"domain{d}.example", avg_rank=d)
        for d in range(DOMAINS)
    ]
    for s in range(SNAPSHOTS):
        snapshot_id = storage.add_snapshot(f"CC-BENCH-{2015 + s}", 2015 + s)
        for domain_id in domain_ids:
            for p in range(PAGES_PER_DOMAIN):
                page_id = storage.add_page(
                    snapshot_id, domain_id,
                    f"http://domain{domain_id}.example/page{p}",
                    utf8=True, checked=True,
                )
                counts = FINDING_MIX[p % len(FINDING_MIX)]
                if counts:
                    storage.add_findings(page_id, counts)
                pages_written += 1
            storage.set_domain_status(
                snapshot_id, domain_id, found=True, analyzed=True,
                pages=PAGES_PER_DOMAIN,
            )
            if commit_per_domain:
                storage.commit()
        storage.commit()  # the runner commits once per snapshot
    return pages_written


def _aggregate(storage: Storage) -> int:
    """One full pass over the aggregation queries the analyses run."""
    queries = 0
    storage.dataset_stats()
    storage.total_domains_analyzed()
    storage.total_pages_checked()
    storage.domains_with_any_violation()
    storage.violation_domain_counts()
    queries += 5
    for year in range(2015, 2015 + SNAPSHOTS):
        storage.analyzed_domains(year)
        storage.violation_domain_counts(year)
        storage.domains_with_any_violation(year)
        storage.domains_with_violations_in(("FB1", "FB2", "DM3"), year)
        storage.domain_violation_sets(year)
        queries += 5
    return queries


def run_storage_bench(*, tuned: bool, rounds: int, label: str) -> dict:
    """Measure write + aggregate throughput; returns a snapshot dict."""
    write_best = float("inf")
    durable_best = float("inf")
    aggregate_best = float("inf")
    pages = 0
    queries = 0
    for _ in range(max(1, rounds)):
        with tempfile.TemporaryDirectory(prefix="repro-bench-db-") as tmp:
            storage = Storage(Path(tmp) / "bench.sqlite", tuned=tuned)
            started = time.perf_counter()
            pages = _populate(storage)
            write_seconds = time.perf_counter() - started
            started = time.perf_counter()
            queries = _aggregate(storage)
            aggregate_seconds = time.perf_counter() - started
            storage.close()
        with tempfile.TemporaryDirectory(prefix="repro-bench-db-") as tmp:
            storage = Storage(Path(tmp) / "bench.sqlite", tuned=tuned)
            started = time.perf_counter()
            _populate(storage, commit_per_domain=True)
            durable_seconds = time.perf_counter() - started
            storage.close()
        write_best = min(write_best, write_seconds)
        durable_best = min(durable_best, durable_seconds)
        aggregate_best = min(aggregate_best, aggregate_seconds)
    return {
        "schema": SCHEMA,
        "label": label,
        "config": {
            "tuned": tuned,
            "rounds": rounds,
            "snapshots": SNAPSHOTS,
            "domains": DOMAINS,
            "pages_per_domain": PAGES_PER_DOMAIN,
        },
        "cases": {
            "storage_write": {
                "kind": "storage",
                "pages": pages,
                "best_seconds": write_best,
                "pages_per_second": pages / write_best if write_best else 0.0,
            },
            "storage_write_durable": {
                "kind": "storage",
                "pages": pages,
                "commits": SNAPSHOTS * (DOMAINS + 1),
                "best_seconds": durable_best,
                "pages_per_second": (
                    pages / durable_best if durable_best else 0.0
                ),
            },
            "storage_aggregate": {
                "kind": "storage",
                "queries": queries,
                "best_seconds": aggregate_best,
                "queries_per_second": (
                    queries / aggregate_best if aggregate_best else 0.0
                ),
            },
        },
        "rules": {},
    }


# ---------------------------------------------------------------------------
# Feature detection: every post-rework API degrades to the legacy path so
# the same script captures honest numbers from an older checkout.
# ---------------------------------------------------------------------------


def _open_cdx_index(path: Path, *, legacy: bool):
    """(index, backend-name): the mmap binary-search index when available
    and not in legacy mode, else the eager linear-scan reference."""
    if not legacy:
        try:
            from repro.warc import MMapCDXIndex

            return MMapCDXIndex.open(path), "mmap"
        except ImportError:
            pass
    return CDXIndex.load(path), "linear"


def _make_client(root: Path, *, legacy: bool) -> CommonCrawlClient:
    """An archive client pinned to the requested index/fetch generation."""
    if legacy:
        try:
            # post-rework tree: ask for the pre-rework data paths
            return CommonCrawlClient(root, index_backend="linear", handle_cache=0)
        except TypeError:
            return CommonCrawlClient(root)  # pre-rework tree: already legacy
    return CommonCrawlClient(root)


def _store_domain(storage, snapshot_row_id, domain_row_id, page_rows, findings,
                  *, batched: bool) -> None:
    """The parent's per-domain ingest; bulk executemany when available.

    ``page_rows`` are ``(url, utf8, checked, declared_encoding,
    carried_from)`` tuples in page order; ``findings`` maps page index ->
    counts dict.
    """
    if batched and hasattr(storage, "add_pages"):
        page_ids = storage.add_pages(
            snapshot_row_id, domain_row_id, page_rows
        )
        rows = [
            (page_ids[index], violation, count)
            for index, counts in findings.items()
            for violation, count in counts.items()
        ]
        storage.add_findings_rows(rows)
    else:
        for index, (url, utf8, checked, declared, _carried) in enumerate(page_rows):
            page_id = storage.add_page(
                snapshot_row_id, domain_row_id, url,
                utf8=utf8, checked=checked, declared_encoding=declared,
            )
            counts = findings.get(index)
            if counts:
                storage.add_findings(page_id, counts)
    storage.set_domain_status(
        snapshot_row_id, domain_row_id,
        found=True, analyzed=bool(page_rows), pages=len(page_rows),
    )


# ---------------------------------------------------------------------------
# CDX index microbench (the ``>= 3x on domain_query`` acceptance case)
# ---------------------------------------------------------------------------

#: synthetic index shape: enough lines that scan cost, not parse constants,
#: dominates the linear path; domain names interleave lexicographically so
#: prefix ranges sit mid-file
CDX_DOMAINS = 240
CDX_PAGES_PER_DOMAIN = 40
#: domains probed per timed query round (spread across the key space)
CDX_QUERY_SAMPLE = 16


def _cdx_domain(index: int) -> str:
    return f"site{index:04d}.example"


def _build_cdx_file(path: Path) -> int:
    writer = CDXWriter()
    for d in range(CDX_DOMAINS):
        domain = _cdx_domain(d)
        for p in range(CDX_PAGES_PER_DOMAIN):
            url = f"http://{domain}/page{p:03d}"
            writer.add(CDXEntry(
                urlkey=surt(url),
                timestamp=f"2022{p % 12 + 1:02d}01000000",
                url=url,
                mime="text/html",
                status=200,
                digest=f"sha1:{d:04d}{p:03d}",
                length=1000 + p,
                offset=p * 2048,
                filename=f"part-{d % 8:05d}.warc.gz",
            ))
    return writer.write(path)


def run_cdx_bench(*, legacy: bool, rounds: int) -> tuple[dict, str]:
    """Time index open, exact lookup and domain-prefix query; returns
    (cases, backend-name)."""
    sample = [
        _cdx_domain(d * CDX_DOMAINS // CDX_QUERY_SAMPLE)
        for d in range(CDX_QUERY_SAMPLE)
    ]
    urls = [f"http://{domain}/page007" for domain in sample]
    open_best = query_best = lookup_best = float("inf")
    entries_per_query = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-cdx-") as tmp:
        path = Path(tmp) / "index.cdxj"
        lines = _build_cdx_file(path)
        for _ in range(max(1, rounds)):
            started = time.perf_counter()
            index, backend = _open_cdx_index(path, legacy=legacy)
            open_best = min(open_best, time.perf_counter() - started)

            started = time.perf_counter()
            for domain in sample:
                entries_per_query = len(list(index.domain_query(domain)))
            query_best = min(
                query_best,
                (time.perf_counter() - started) / len(sample),
            )

            started = time.perf_counter()
            for url in urls:
                hits = index.lookup(url)
                assert hits, url
            lookup_best = min(
                lookup_best, (time.perf_counter() - started) / len(urls)
            )
            close = getattr(index, "close", None)
            if close is not None:
                close()
    cases = {
        "cdx_open": {
            "kind": "cdx",
            "lines": lines,
            "best_seconds": open_best,
            "lines_per_second": lines / open_best if open_best else 0.0,
        },
        "cdx_domain_query": {
            "kind": "cdx",
            "lines": lines,
            "entries_per_query": entries_per_query,
            "best_seconds": query_best,
            "queries_per_second": 1.0 / query_best if query_best else 0.0,
        },
        "cdx_lookup": {
            "kind": "cdx",
            "lines": lines,
            "best_seconds": lookup_best,
            "queries_per_second": 1.0 / lookup_best if lookup_best else 0.0,
        },
    }
    return cases, backend


# ---------------------------------------------------------------------------
# Per-stage pipeline attribution + end-to-end runners
# ---------------------------------------------------------------------------

#: mini study corpus: two snapshots over ~100 domains — small enough to
#: build in seconds, large enough that per-domain stage costs dominate
#: process-pool constants.  The archive carries more captures per domain
#: than the run fetches (paper shape: a large per-snapshot index, 100
#: pages fetched from it), so index-query cost is visible next to check
#: cost instead of vanishing behind it.
PIPELINE_CONFIG = CorpusConfig(
    num_domains=110, max_pages=6, seed=17, years=(2015, 2022)
)
#: per-domain fetch cap during the benchmarked run (< max_pages above)
PIPELINE_FETCH_PAGES = 3
PIPELINE_WORKERS = 2


def _build_pipeline_archive(root: Path) -> list[tuple[str, float]]:
    plan = CorpusPlanner(PIPELINE_CONFIG).plan()
    ArchiveBuilder(root).build(plan)
    return plan.domains


def run_staged_pipeline(root: Path, domains, *, legacy: bool) -> tuple[dict, int]:
    """One sequential pass with each stage timed separately.

    Returns (stages-seconds dict, pages stored).  The stage split mirrors
    the measurement loop: CDX index query -> WARC range-read -> check ->
    SQLite store (the store stage includes the per-snapshot commit).
    """
    stages = {"index": 0.0, "fetch": 0.0, "check": 0.0, "store": 0.0}
    client = _make_client(root, legacy=legacy)
    checker = Checker()
    pages_stored = 0
    with Storage(":memory:") as storage:
        domain_ids = {
            name: storage.add_domain(name, rank) for name, rank in domains
        }
        for collection in client.collections():
            snapshot_row_id = storage.add_snapshot(collection.id, collection.year)
            for name, _rank in domains:
                started = time.perf_counter()
                metadata = collect_metadata(
                    client, collection.id, name,
                    max_pages=PIPELINE_FETCH_PAGES,
                )
                stages["index"] += time.perf_counter() - started

                started = time.perf_counter()
                pages = list(fetch_pages(client, metadata))
                stages["fetch"] += time.perf_counter() - started

                started = time.perf_counter()
                checked = [check_page(page, checker) for page in pages]
                stages["check"] += time.perf_counter() - started

                started = time.perf_counter()
                if metadata.found:
                    page_rows = [
                        (page.url, result.utf8, result.report is not None,
                         result.declared_encoding, "")
                        for page, result in zip(pages, checked)
                    ]
                    findings = {
                        index: dict(result.report.counts)
                        for index, result in enumerate(checked)
                        if result.report is not None and result.report.counts
                    }
                    _store_domain(
                        storage, snapshot_row_id, domain_ids[name],
                        page_rows, findings, batched=not legacy,
                    )
                    pages_stored += len(page_rows)
                else:
                    storage.set_domain_status(
                        snapshot_row_id, domain_ids[name],
                        found=False, analyzed=False, pages=0,
                    )
                stages["store"] += time.perf_counter() - started
            started = time.perf_counter()
            storage.commit()
            stages["store"] += time.perf_counter() - started
    return stages, pages_stored


def _legacy_barrier_parallel_run(root: Path, domains, *, max_pages: int,
                                 workers: int) -> int:
    """The pre-rework orchestration: per-snapshot ``pool.map`` barrier.

    Replayed here (against whatever worker internals the tree ships) so the
    scheduling layer itself has a measurable before/after.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.pipeline import parallel as par

    pages_checked = 0
    catalog = CommonCrawlClient(root)
    with Storage(":memory:") as storage:
        domain_ids = {
            name: storage.add_domain(name, rank) for name, rank in domains
        }
        names = [name for name, _rank in domains]
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=par._init_worker,
            initargs=(str(root),),
        ) as pool:
            for collection in catalog.collections():
                snapshot_row_id = storage.add_snapshot(
                    collection.id, collection.year
                )
                results = pool.map(
                    par.process_domain,
                    [collection.id] * len(names),
                    names,
                    [max_pages] * len(names),
                    chunksize=8,
                )
                for result in results:
                    for page in result.pages:
                        page_id = storage.add_page(
                            snapshot_row_id, domain_ids[result.domain],
                            page.url, utf8=page.utf8, checked=page.checked,
                            declared_encoding=page.declared_encoding,
                        )
                        if page.findings:
                            storage.add_findings(page_id, page.findings)
                        if page.checked:
                            pages_checked += 1
                    storage.set_domain_status(
                        snapshot_row_id, domain_ids[result.domain],
                        found=result.found,
                        analyzed=result.analyzed_pages > 0,
                        pages=result.analyzed_pages,
                    )
                storage.commit()
    return pages_checked


def run_pipeline_bench(*, legacy: bool, rounds: int) -> dict:
    """Per-stage attribution + end-to-end sequential and parallel runs."""
    from repro.pipeline import ParallelStudyRunner, StudyRunner

    staged_best: dict | None = None
    staged_total = float("inf")
    sequential_best = float("inf")
    parallel_best = float("inf")
    pages = seq_pages = par_pages = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-pipe-") as tmp:
        root = Path(tmp)
        domains = _build_pipeline_archive(root)
        for _ in range(max(1, rounds)):
            stages, pages = run_staged_pipeline(root, domains, legacy=legacy)
            total = sum(stages.values())
            if total < staged_total:
                staged_total, staged_best = total, stages

            with Storage(":memory:") as storage:
                started = time.perf_counter()
                stats = StudyRunner(
                    _make_client(root, legacy=legacy), storage,
                    max_pages=PIPELINE_FETCH_PAGES,
                ).run(domains)
                sequential_best = min(
                    sequential_best, time.perf_counter() - started
                )
                seq_pages = stats.pages_checked

            if legacy:
                started = time.perf_counter()
                par_pages = _legacy_barrier_parallel_run(
                    root, domains, max_pages=PIPELINE_FETCH_PAGES,
                    workers=PIPELINE_WORKERS,
                )
                parallel_best = min(
                    parallel_best, time.perf_counter() - started
                )
            else:
                with Storage(":memory:") as storage:
                    started = time.perf_counter()
                    stats = ParallelStudyRunner(
                        root, storage, max_pages=PIPELINE_FETCH_PAGES,
                        workers=PIPELINE_WORKERS,
                    ).run(domains)
                    parallel_best = min(
                        parallel_best, time.perf_counter() - started
                    )
                    par_pages = stats.pages_checked
    assert staged_best is not None
    return {
        "pipeline_stages": {
            "kind": "pipeline",
            "pages": pages,
            "best_seconds": staged_total,
            "pages_per_second": pages / staged_total if staged_total else 0.0,
            "stages": staged_best,
        },
        "pipeline_sequential": {
            "kind": "pipeline",
            "pages": seq_pages,
            "best_seconds": sequential_best,
            "pages_per_second": (
                seq_pages / sequential_best if sequential_best else 0.0
            ),
        },
        "pipeline_parallel_w2": {
            "kind": "pipeline",
            "pages": par_pages,
            "workers": PIPELINE_WORKERS,
            "best_seconds": parallel_best,
            "pages_per_second": (
                par_pages / parallel_best if parallel_best else 0.0
            ),
        },
    }


def run_multisnapshot_bench(*, incremental: bool, rounds: int) -> dict | None:
    """The yearly-study axis: full re-check vs dedup carry-forward.

    Uses :func:`repro.bench.run_incremental_case` (which measures *both*
    paths on one overlap corpus and asserts aggregate parity); the
    requested mode decides which side becomes this case's headline
    ``best_seconds``.  Returns ``None`` on checkouts that predate the
    incremental engine so a "before" snapshot can still be captured
    there.
    """
    try:
        from repro.bench import BenchConfig, run_incremental_case
        from repro import incremental as _incremental  # noqa: F401
    except ImportError:
        return None
    case = run_incremental_case(BenchConfig(repeat=max(1, rounds)))
    mode = "incremental" if incremental else "full"
    seconds = case[f"{mode}_seconds"]
    return {
        "pipeline_multisnapshot": {
            "kind": "pipeline",
            "mode": mode,
            "pages": case["pages"],
            "snapshots": case["snapshots"],
            "domains": case["domains"],
            "overlap_fraction": case["overlap_fraction"],
            "best_seconds": seconds,
            "pages_per_second": case["pages"] / seconds if seconds else 0.0,
            "full_seconds": case["full_seconds"],
            "incremental_seconds": case["incremental_seconds"],
            "speedup": case["speedup"],
            "aggregate_parity": case["aggregate_parity"],
            "dedup": case["dedup"],
        }
    }


def render_storage_snapshot(snapshot: dict) -> str:
    write = snapshot["cases"]["storage_write"]
    durable = snapshot["cases"]["storage_write_durable"]
    aggregate = snapshot["cases"]["storage_aggregate"]
    mode = "tuned" if snapshot["config"]["tuned"] else "untuned"
    return "\n".join(
        [
            f"storage throughput [{mode}]",
            f"  write (batch):   {write['pages']} pages in "
            f"{write['best_seconds'] * 1e3:.1f} ms "
            f"({write['pages_per_second']:.0f} pages/s)",
            f"  write (durable): {durable['pages']} pages / "
            f"{durable['commits']} commits in "
            f"{durable['best_seconds'] * 1e3:.1f} ms "
            f"({durable['pages_per_second']:.0f} pages/s)",
            f"  aggregate:       {aggregate['queries']} queries in "
            f"{aggregate['best_seconds'] * 1e3:.1f} ms "
            f"({aggregate['queries_per_second']:.0f} queries/s)",
        ]
    )


def render_pipeline_cases(snapshot: dict) -> str:
    cases = snapshot["cases"]
    backend = snapshot["config"].get("cdx_backend", "?")
    lines = [f"cdx index [{backend}]"]
    for name in ("cdx_open", "cdx_domain_query", "cdx_lookup"):
        if name not in cases:
            continue
        case = cases[name]
        lines.append(
            f"  {name.removeprefix('cdx_'):<13} "
            f"{case['best_seconds'] * 1e6:>10.1f} us/op"
        )
    mode = "legacy" if snapshot["config"].get("legacy") else "reworked"
    lines.append(f"pipeline [{mode}]")
    for name in (
        "pipeline_stages", "pipeline_sequential", "pipeline_parallel_w2",
        "pipeline_multisnapshot",
    ):
        if name not in cases:
            continue
        case = cases[name]
        line = (
            f"  {name.removeprefix('pipeline_'):<13} {case['pages']} pages in "
            f"{case['best_seconds'] * 1e3:.1f} ms "
            f"({case['pages_per_second']:.0f} pages/s)"
        )
        if "stages" in case:
            line += " — " + ", ".join(
                f"{stage} {seconds * 1e3:.1f}ms"
                for stage, seconds in case["stages"].items()
            )
        if "speedup" in case:
            line += (
                f" — [{case['mode']}] {case['snapshots']} snapshots @ "
                f"{case['overlap_fraction']:.0%} overlap, full "
                f"{case['full_seconds'] * 1e3:.0f}ms vs incremental "
                f"{case['incremental_seconds'] * 1e3:.0f}ms "
                f"({case['speedup']:.2f}x, parity={case['aggregate_parity']})"
            )
        lines.append(line)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="study-pipeline throughput snapshot (repro-bench/1)"
    )
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the BENCH_pipeline_*.json snapshot here")
    parser.add_argument("--untuned", action="store_true",
                        help="measure storage without pragmas/secondary "
                        "indexes (the 'before' half of the storage pair)")
    parser.add_argument("--legacy", action="store_true",
                        help="measure the pre-rework data paths: linear CDX "
                        "scan, per-fetch file opens, row-at-a-time ingest, "
                        "pool.map barrier scheduling")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds; the minimum wins (default 5)")
    parser.add_argument("--pipeline-rounds", type=int, default=3,
                        help="timing rounds for the end-to-end pipeline "
                        "cases (default 3)")
    parser.add_argument("--label", default="",
                        help="provenance label stored in the snapshot")
    parser.add_argument("--study-mode", choices=("full", "incremental"),
                        default="incremental",
                        help="which side of the multi-snapshot study pair "
                        "this snapshot's headline number records: 'full' "
                        "re-checks every snapshot (the pre-dedup engine), "
                        "'incremental' carries unchanged pages forward")
    args = parser.parse_args(argv)
    snapshot = run_storage_bench(
        tuned=not args.untuned, rounds=args.rounds, label=args.label
    )
    cdx_cases, backend = run_cdx_bench(legacy=args.legacy, rounds=args.rounds)
    snapshot["cases"].update(cdx_cases)
    snapshot["cases"].update(
        run_pipeline_bench(legacy=args.legacy, rounds=args.pipeline_rounds)
    )
    multisnapshot = run_multisnapshot_bench(
        incremental=args.study_mode == "incremental",
        rounds=args.pipeline_rounds,
    )
    if multisnapshot is not None:
        snapshot["cases"].update(multisnapshot)
        snapshot["config"]["study_mode"] = args.study_mode
    snapshot["config"]["legacy"] = args.legacy
    snapshot["config"]["cdx_backend"] = backend
    snapshot["config"]["cdx_lines"] = CDX_DOMAINS * CDX_PAGES_PER_DOMAIN
    snapshot["config"]["pipeline_domains"] = PIPELINE_CONFIG.num_domains
    snapshot["config"]["pipeline_years"] = list(PIPELINE_CONFIG.years)
    print(render_storage_snapshot(snapshot))
    print(render_pipeline_cases(snapshot))
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"snapshot written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
