"""Figure 9 — % of domains with at least one violation per year.

Shape claims: every year a clear majority violates; the trend from 2015
to 2022 points down; 2022 lands near the paper's 68%.
"""
from __future__ import annotations

from repro.analysis import figure9_overall_trend, render_trend
from repro.commoncrawl import calibration as cal


def test_fig9_overall_trend(benchmark, study, save_report):
    trend = benchmark(figure9_overall_trend, study.storage)

    fractions = trend.fractions()
    assert len(fractions) == 8
    assert all(fraction > 0.5 for fraction in fractions)
    # downward trend between endpoints (paper: 74.31% -> 68.38%)
    assert fractions[-1] < fractions[0]
    assert abs(fractions[-1] - cal.OVERALL_VIOLATING[2022]) < 0.12

    save_report(
        "fig9_trend",
        render_trend(trend, "Figure 9: Domains with at least one violation"),
    )
