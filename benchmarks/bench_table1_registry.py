"""Table 1 — the violation taxonomy, and the cost of assembling the rule
set the checker runs (a fixed overhead of every checked page)."""
from __future__ import annotations

from repro.analysis import render_table
from repro.core import REGISTRY
from repro.core.rules import default_rules


def test_table1_registry(benchmark, save_report):
    rules = benchmark(default_rules)
    assert len(rules) == 20

    rows = [
        [
            violation.id,
            violation.name,
            violation.category.value,
            violation.group.value,
            "yes" if violation.auto_fixable else "no",
        ]
        for violation in REGISTRY.values()
    ]
    save_report(
        "table1_registry",
        "Table 1: A list of all considered violations\n"
        + render_table(
            ["Id", "Definition", "Category", "Group", "Auto-fixable"], rows
        ),
    )
