"""Figures 16-21 (Appendix B) — per-violation yearly trends.

One bench per published figure; each checks that figure's own shape
claims (orderings and directions read off the published plots) and
renders the measured-vs-paper series.
"""
from __future__ import annotations

import pytest

from repro.analysis import all_violation_trends, appendix_figure, render_trend


@pytest.fixture(scope="module")
def trends(study):
    return all_violation_trends(study.storage)


def _save_figure(save_report, name: str, series_map) -> None:
    blocks = [render_trend(series, name) for series in series_map.values()]
    save_report(name, "\n".join(blocks))


def test_fig16_filter_bypass(benchmark, study, trends, save_report):
    series = benchmark(appendix_figure, study.storage, "figure16_filter_bypass")
    fb2, fb1 = series["FB2"].fractions(), series["FB1"].fractions()
    # FB2 sits far above FB1 every year (paper: ~50/42 vs ~22/15)
    assert all(high > low for high, low in zip(fb2, fb1))
    assert fb2[-1] < fb2[0] and fb1[-1] < fb1[0], "both decline"
    _save_figure(save_report, "fig16_filter_bypass", series)


def test_fig17_formatting_1(benchmark, study, trends, save_report):
    series = benchmark(appendix_figure, study.storage, "figure17_formatting_1")
    hf1 = series["HF1"].fractions()
    hf3 = series["HF3"].fractions()
    # HF1 >= HF3 throughout (paper: 18->12 vs 13->8); all decline
    assert sum(hf1) > sum(hf3)
    for violation in ("HF1", "HF2", "HF3"):
        values = series[violation].fractions()
        assert values[-1] < values[0]
    _save_figure(save_report, "fig17_formatting_1", series)


def test_fig18_formatting_2(benchmark, study, trends, save_report):
    series = benchmark(appendix_figure, study.storage, "figure18_formatting_2")
    hf4 = series["HF4"].fractions()
    assert hf4[-1] < hf4[0], "HF4 declines strongly (25 -> 15)"
    hf5_1 = series["HF5_1"].fractions()
    # HF5_1 is the one GROWING violation (paper: 3% -> 5%); compare half
    # means with slack since the 2pp signal is near sampling noise at the
    # default corpus scale
    assert sum(hf5_1[4:]) / 4 > sum(hf5_1[:4]) / 4 - 0.02
    assert max(series["HF5_3"].fractions()) < 0.02, "HF5_3 almost absent"
    _save_figure(save_report, "fig18_formatting_2", series)


def test_fig19_data_manipulation(benchmark, study, trends, save_report):
    series = benchmark(
        appendix_figure, study.storage, "figure19_data_manipulation"
    )
    dm3 = series["DM3"].fractions()
    assert min(dm3) > 0.25, "DM3 dominates the DM group (~40-44%)"
    for violation in ("DM1", "DM2_1", "DM2_2", "DM2_3"):
        assert sum(series[violation].fractions()) < sum(dm3)
    _save_figure(save_report, "fig19_data_manipulation", series)


def test_fig20_data_exfiltration_1(benchmark, study, trends, save_report):
    series = benchmark(
        appendix_figure, study.storage, "figure20_data_exfiltration_1"
    )
    de3_1 = series["DE3_1"].fractions()
    # paper/sec 4.5: 1.37% -> 0.76%, a clear decline
    assert de3_1[-1] <= de3_1[0]
    for violation, values in series.items():
        assert max(values.fractions()) < 0.08, "all DE3 are rare"
    _save_figure(save_report, "fig20_data_exfiltration_1", series)


def test_fig21_data_exfiltration_2(benchmark, study, trends, save_report):
    series = benchmark(
        appendix_figure, study.storage, "figure21_data_exfiltration_2"
    )
    de4 = series["DE4"].fractions()
    de1 = series["DE1"].fractions()
    assert sum(de4) > sum(de1), "DE4 (~2%) well above DE1 (~0.04%)"
    assert max(de1) < 0.05
    assert max(series["DE2"].fractions()) < 0.05
    _save_figure(save_report, "fig21_data_exfiltration_2", series)
