"""Section 4.4 — the auto-fix estimate (68% -> 37% violating, 46% fixed),
plus the cost of the actual repair pass on violating pages."""
from __future__ import annotations

import random

from repro.analysis import estimate_autofix, render_autofix
from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import autofix


def test_sec44_autofix_estimate(benchmark, study, save_report):
    estimate = benchmark(estimate_autofix, study.storage, 2022)

    # shape: the repair removes a substantial fraction of violating
    # domains (paper: >46%), and the remainder stays well above zero
    assert 0.25 < estimate.fraction_fixed < 0.70
    assert estimate.after_autofix_fraction < estimate.violating_fraction
    assert abs(estimate.violating_fraction - 0.68) < 0.12
    assert abs(estimate.after_autofix_fraction - 0.37) < 0.12

    save_report("sec44_autofix", render_autofix(estimate))


def test_sec44_autofix_repair_throughput(benchmark):
    """Cost of actually repairing one realistic violating page."""
    draft = build_page("bench.example", "/", random.Random(1))
    for name in ("FB2", "DM3", "DM1"):
        INJECTORS[name].apply(draft, random.Random(2))
    html = draft.render()

    result = benchmark(autofix, html)
    assert result.changed
    assert result.remaining == []
