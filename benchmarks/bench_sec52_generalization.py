"""Section 5.2 — generalization to less popular websites.

Shape claims: the violation distribution of the long tail correlates with
the popular population's, and popular sites carry more violations per
domain on average.
"""
from __future__ import annotations

from repro.analysis import render_generalization, run_generalization_study


def test_sec52_generalization(benchmark, save_report):
    comparison = benchmark.pedantic(
        run_generalization_study,
        kwargs={"num_domains": 50},
        rounds=3, iterations=1,
    )

    assert comparison.rank_correlation > 0.6, "paper: 'again similar'"
    assert comparison.popular_has_more_violations, (
        "paper: popular sites have more violations on average"
    )
    assert comparison.tail.violating_fraction > 0.3, (
        "the tail still violates broadly"
    )

    save_report("sec52_generalization", render_generalization(comparison))
