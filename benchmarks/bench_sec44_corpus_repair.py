"""Section 4.4, the hard way: actually repair the 2022 corpus.

The paper's 46% number is set arithmetic (which violations a domain has);
this bench runs the real repair — fetch every 2022 page, apply
`repro.core.autofix`, re-check the fixed source — and verifies that the
measured outcome matches the estimate: repaired pages keep exactly their
HF/DE violations and the per-domain recovery rate reproduces the ~46%.
"""
from __future__ import annotations

import pytest

from repro.commoncrawl import CommonCrawlClient, snapshot_name
from repro.core import AUTO_FIXABLE_IDS, Checker, autofix
from repro.html import decode_bytes
from repro.pipeline import collect_metadata, fetch_pages


@pytest.fixture(scope="module")
def corpus_2022(study):
    """(domain, page-text) pairs for every analyzable 2022 page."""
    client = CommonCrawlClient(study.archive_dir)
    truth = study.ground_truth()
    pages: list[tuple[str, str]] = []
    for domain in truth["succeeded"]["2022"]:
        metadata = collect_metadata(client, snapshot_name(2022), domain)
        for page in fetch_pages(client, metadata):
            text = decode_bytes(page.payload)
            if text is not None:
                pages.append((domain, text))
    return pages


def _run_repair(pages):
    checker = Checker()
    violating_domains: set[str] = set()
    clean_after_domains: dict[str, bool] = {}
    for domain, text in pages:
        report = checker.check_html(text)
        if report.violated:
            violating_domains.add(domain)
        fixed_report = checker.check_html(autofix(text, checker=checker).fixed)
        # invariant per page: all fixable gone, manual set preserved
        assert fixed_report.violated & AUTO_FIXABLE_IDS == set()
        assert fixed_report.violated == report.violated - AUTO_FIXABLE_IDS
        still_violating = bool(fixed_report.violated)
        clean_after_domains[domain] = (
            clean_after_domains.get(domain, False) or still_violating
        )
    repaired = sum(
        1 for domain in violating_domains if not clean_after_domains[domain]
    )
    return len(violating_domains), repaired


def test_sec44_corpus_repair(benchmark, study, corpus_2022, save_report):
    violating, repaired = benchmark.pedantic(
        _run_repair, args=(corpus_2022,), rounds=1, iterations=1
    )

    assert violating > 0
    fraction = repaired / violating
    assert 0.25 < fraction < 0.70, "paper: >46% of violating sites fixable"

    # the real repair must agree with the set-arithmetic estimate
    estimate = study.autofix_estimate(2022)
    assert repaired == estimate.fully_fixable_domains
    assert violating == estimate.violating_domains

    save_report(
        "sec44_corpus_repair",
        "Section 4.4 (executed repair over the full 2022 corpus)\n"
        f"  pages repaired: {len(corpus_2022)}\n"
        f"  violating domains: {violating}\n"
        f"  fully repaired domains: {repaired} ({fraction:.1%}; "
        "paper estimate: >46%)\n"
        "  per-page invariant held: repaired pages retain exactly their "
        "HF/DE violations\n",
    )
