"""Section 5.3 — the STRICT-PARSER rollout simulation on measured data."""
from __future__ import annotations

from repro.core import simulate_rollout
from repro.core.violations import ALL_IDS


def _prevalence(study):
    trends = study.violation_trends()
    prevalence: dict[int, dict[str, float]] = {}
    for violation_id, series in trends.items():
        for point in series.points:
            prevalence.setdefault(point.year, {})[violation_id] = point.fraction
    return prevalence


def test_sec53_rollout(benchmark, study, save_report):
    prevalence = _prevalence(study)
    plan = benchmark(simulate_rollout, prevalence)

    # rare violations (math/dangling markup) are enforceable immediately;
    # the plan eventually covers all twenty checks
    assert plan.fully_enforced_year is not None
    first_stage = plan.stages[0]
    assert "HF5_3" in first_stage.enforced
    # early-stage breakage stays tiny (that is the whole point)
    measured_stages = [s for s in plan.stages if s.year <= 2022]
    assert all(stage.breakage < 0.15 for stage in measured_stages)

    lines = ["Section 5.3: STRICT-PARSER staged rollout (threshold <1%)"]
    for stage in plan.stages:
        phase = "measured " if stage.year <= 2022 else "projected"
        lines.append(
            f"  {stage.year} [{phase}] enforced {len(stage.enforced):2d}/20  "
            f"breakage {stage.breakage:6.2%}  "
            f"new: {', '.join(stage.newly_enforced) or '-'}"
        )
    lines.append(f"  full enforcement: {plan.fully_enforced_year}")
    save_report("sec53_rollout", "\n".join(lines) + "\n")
