"""`repro.commoncrawl` — archive simulation: Tranco lists, a calibrated
synthetic web corpus, and a local Common-Crawl-compatible archive with the
index/fetch client the pipeline consumes.
"""
from . import calibration
from .client import Collection, CommonCrawlClient
from .corpusgen import (
    CopulaLoadings,
    CorpusConfig,
    CorpusPlan,
    CorpusPlanner,
    InjectorTarget,
    PageSpec,
    build_injector_targets,
    calibrate_loadings,
    injector_cluster,
    render_page,
)
from .snapshot import ArchiveBuilder, BuiltSnapshot, snapshot_name
from .templates import INJECTORS, Injector, PageDraft, build_page
from .tranco import (
    TrancoList,
    build_study_dataset,
    generate_domain_pool,
    generate_tranco_lists,
    load_tranco_csv,
    save_tranco_csv,
    synth_domain_name,
)

__all__ = [
    "ArchiveBuilder",
    "BuiltSnapshot",
    "Collection",
    "CommonCrawlClient",
    "CorpusConfig",
    "CorpusPlan",
    "CorpusPlanner",
    "INJECTORS",
    "Injector",
    "InjectorTarget",
    "PageDraft",
    "PageSpec",
    "TrancoList",
    "build_injector_targets",
    "build_page",
    "build_study_dataset",
    "CopulaLoadings",
    "calibrate_loadings",
    "injector_cluster",
    "calibration",
    "generate_domain_pool",
    "generate_tranco_lists",
    "load_tranco_csv",
    "render_page",
    "save_tranco_csv",
    "snapshot_name",
    "synth_domain_name",
]
