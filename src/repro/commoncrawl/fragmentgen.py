"""Dynamically-loaded HTML fragment generation (section 5.1 pre-study).

The paper's Common Crawl methodology only sees static HTML, so the authors
ran a pre-study on the *dynamically loaded* fragments of the top-1k Tranco
sites (XHR partials, innerHTML templates, widget embeds) and found the
same picture: >60% of sites ship at least one violating fragment, with
FB2/DM3 on top and math-related violations nearly absent.

This module synthesizes such fragments: realistic partial-markup templates
(cards, table rows, option lists, toast messages) plus fragment-level
violation injectors for the rules that can occur inside a fragment,
calibrated to reproduce the pre-study's headline numbers.
"""
from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from . import calibration as cal

#: target fraction of domains with >=1 violating fragment (paper: >60%)
DYNAMIC_TARGET = cal.DYNAMIC_PRESTUDY_VIOLATING

# ------------------------------------------------------------ fragment base


def _card(rng: random.Random) -> str:
    item = rng.randrange(1000)
    return (
        f'<div class="card" data-id="{item}">'
        f'<img src="/img/{item}.jpg" alt="item {item}">'
        f'<h3><a href="/item/{item}">Item {item}</a></h3>'
        f"<p>In stock: {rng.randrange(50)}</p></div>"
    )


def _table_rows(rng: random.Random) -> str:
    rows = "".join(
        f"<tr><td>{index}</td><td>{rng.randrange(100)}</td></tr>"
        for index in range(rng.randrange(2, 5))
    )
    return f"<table><tbody>{rows}</tbody></table>"


def _option_list(rng: random.Random) -> str:
    options = "".join(
        f'<option value="{index}">Choice {index}</option>'
        for index in range(rng.randrange(2, 6))
    )
    return f'<select name="choice">{options}</select>'


def _toast(rng: random.Random) -> str:
    return (
        f'<div class="toast" role="status"><span>{rng.randrange(9)} new '
        f'notifications</span><a href="/inbox">open</a></div>'
    )


def _comment_partial(rng: random.Random) -> str:
    return (
        f'<article class="comment" id="c{rng.randrange(10_000)}">'
        f'<header><b>user{rng.randrange(100)}</b></header>'
        "<p>Thanks, this helped a lot!</p></article>"
    )


_FRAGMENT_BUILDERS: tuple[Callable[[random.Random], str], ...] = (
    _card, _table_rows, _option_list, _toast, _comment_partial,
)


def build_fragment(rng: random.Random) -> str:
    """One conforming dynamically-loaded fragment."""
    return rng.choice(_FRAGMENT_BUILDERS)(rng)


# ------------------------------------------------------- fragment injectors


def _frag_fb2(fragment: str, rng: random.Random) -> str:
    return fragment + '<img src="/badge.png"alt="badge">'


def _frag_fb1(fragment: str, rng: random.Random) -> str:
    return fragment + '<img/src="/pixel.gif"/alt="">'


def _frag_dm3(fragment: str, rng: random.Random) -> str:
    return fragment + (
        f'<span data-id="{rng.randrange(99)}" class="tag" '
        'class="tag-new">new</span>'
    )


def _frag_hf4(fragment: str, rng: random.Random) -> str:
    return fragment + "<table><tr><b>Total</b></tr><tr><td>42</td></tr></table>"


def _frag_de3_2(fragment: str, rng: random.Random) -> str:
    return fragment + '<div data-tpl="<script>hydrate()</script>"></div>'


def _frag_de3_1(fragment: str, rng: random.Random) -> str:
    return fragment + '<a href="/go?next=\n<home>">continue</a>'


def _frag_de4(fragment: str, rng: random.Random) -> str:
    return fragment + (
        '<form action="/subscribe"><form action="/subscribe2">'
        '<input name="email"></form>'
    )


def _frag_hf5_1(fragment: str, rng: random.Random) -> str:
    return fragment + '<path d="M0 0h16v16z"></path>'


def _frag_hf5_2(fragment: str, rng: random.Random) -> str:
    return fragment + '<svg viewBox="0 0 16 16"><span>!</span></svg>'


@dataclass(frozen=True, slots=True)
class FragmentInjector:
    rule: str
    apply: Callable[[str, random.Random], str]
    #: 2021 per-domain prevalence target within dynamic content; shaped
    #: like the static 2021 rates, renormalized so that the overall
    #: any-violation rate lands at the pre-study's >60%
    rate: float


#: the paper: "the most prevalent violations, FB2 and DM3, also appear in
#: top positions for dynamic content, while ... violations related to the
#: math element hardly appear"
FRAGMENT_INJECTORS: tuple[FragmentInjector, ...] = (
    FragmentInjector("FB2", _frag_fb2, 0.42),
    FragmentInjector("DM3", _frag_dm3, 0.38),
    FragmentInjector("FB1", _frag_fb1, 0.14),
    FragmentInjector("HF4", _frag_hf4, 0.10),
    FragmentInjector("HF5_1", _frag_hf5_1, 0.035),
    FragmentInjector("DE4", _frag_de4, 0.015),
    FragmentInjector("DE3_2", _frag_de3_2, 0.012),
    FragmentInjector("DE3_1", _frag_de3_1, 0.007),
    FragmentInjector("HF5_2", _frag_hf5_2, 0.005),
)


@dataclass(slots=True)
class FragmentSpec:
    """Ground truth for one generated fragment."""

    domain: str
    index: int
    injected: tuple[str, ...]
    html: str


def generate_domain_fragments(
    domain: str, *, count: int, seed: int
) -> list[FragmentSpec]:
    """All dynamic fragments one domain loads, with injected violations.

    Violations are assigned per (domain, rule) — a site whose template has
    the mistake repeats it across fragments — with a per-fragment share,
    mirroring the static corpus model.
    """
    # A domain-level sloppiness gate correlates the rules (as in the main
    # corpus model): without it, independent per-rule draws would put the
    # any-violation rate near 75% instead of the pre-study's ~60%.
    gate = DYNAMIC_TARGET + 0.06
    sloppy = random.Random(f"{seed}:frag-clean:{domain}").random() < gate
    active = [
        injector
        for injector in FRAGMENT_INJECTORS
        if sloppy
        and random.Random(f"{seed}:frag-trait:{domain}:{injector.rule}").random()
        < min(1.0, injector.rate / gate)
    ]
    fragments: list[FragmentSpec] = []
    for index in range(count):
        rng = random.Random(f"{seed}:frag:{domain}:{index}")
        html = build_fragment(rng)
        injected = []
        for injector in active:
            share = random.Random(
                f"{seed}:frag-share:{domain}:{injector.rule}"
            ).uniform(0.15, 0.6)
            if random.Random(
                f"{seed}:frag-hit:{domain}:{injector.rule}:{index}"
            ).random() < share:
                html = injector.apply(html, rng)
                injected.append(injector.rule)
        fragments.append(
            FragmentSpec(
                domain=domain, index=index, injected=tuple(injected), html=html
            )
        )
    return fragments
