"""Tranco top-list modelling and the paper's dataset-construction procedure.

The paper (section 3.3/4.1) builds its domain set reproducibly:

    "From these lists, we take the top 50,000 domains on every single
    Tranco list and consider only the ones that appear on all lists. ...
    Next, we order them by their average rank."

This module implements that procedure over :class:`TrancoList` objects.
Because the Tranco service is not reachable offline, it also synthesizes
deterministic lists with realistic rank churn (Zipf-ish popularity with
day-to-day jitter and trending in/out domains), so the intersection
procedure has real work to do.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field

_TLDS = ("com", "org", "net", "io", "de", "co.uk", "fr", "jp", "ru", "br")

_WORDS = (
    "news", "shop", "cloud", "media", "games", "tech", "mail", "video",
    "forum", "data", "web", "social", "store", "sport", "music", "photo",
    "travel", "bank", "health", "auto", "book", "food", "home", "work",
    "play", "live", "search", "stream", "chat", "learn",
)


def synth_domain_name(index: int) -> str:
    """Deterministic, human-plausible domain name for pool index ``index``."""
    first = _WORDS[index % len(_WORDS)]
    second = _WORDS[(index // len(_WORDS)) % len(_WORDS)]
    tld = _TLDS[index % len(_TLDS)]
    return f"{first}-{second}{index:05d}.{tld}"


@dataclass(slots=True)
class TrancoList:
    """One daily Tranco list: ``list_id`` plus domains in rank order."""

    list_id: str
    date: str
    domains: list[str] = field(default_factory=list)

    def rank_of(self) -> dict[str, int]:
        """Map domain → 1-based rank."""
        return {domain: rank for rank, domain in enumerate(self.domains, start=1)}

    def top(self, cutoff: int) -> list[str]:
        return self.domains[:cutoff]


def generate_domain_pool(size: int) -> list[str]:
    """The universe of domains, in intrinsic popularity order."""
    return [synth_domain_name(index) for index in range(size)]


def generate_tranco_lists(
    pool: list[str],
    *,
    num_lists: int = 5,
    list_size: int | None = None,
    churn: float = 0.02,
    jitter: float = 0.08,
    seed: int = 7,
) -> list[TrancoList]:
    """Synthesize ``num_lists`` daily lists over ``pool``.

    Each list perturbs the intrinsic order with Gaussian rank jitter and
    replaces a ``churn`` fraction of entries with trending outsiders —
    the outliers the paper's intersection step is designed to remove.
    """
    list_size = list_size or len(pool)
    lists = []
    for day in range(num_lists):
        rng = random.Random(f"tranco:{seed}:{day}")
        scored = []
        for rank, domain in enumerate(pool):
            noise = rng.gauss(0, jitter * (rank + 10))
            scored.append((rank + noise, domain))
        scored.sort()
        ordered = [domain for _, domain in scored][:list_size]
        # Trending outsiders: inject churn-fraction fake newcomers that do
        # not exist in other lists.
        num_churn = int(len(ordered) * churn)
        for slot in range(num_churn):
            position = rng.randrange(len(ordered))
            ordered[position] = f"trending-{day}-{slot}.example"
        lists.append(
            TrancoList(
                list_id=f"SYN{seed}{day:02d}",
                date=f"2022-04-{day + 1:02d}",
                domains=ordered,
            )
        )
    return lists


def save_tranco_csv(tranco_list: TrancoList, path: str) -> None:
    """Write a list in the Tranco download format (``rank,domain`` lines)."""
    with open(path, "w", encoding="utf-8") as stream:
        for rank, domain in enumerate(tranco_list.domains, start=1):
            stream.write(f"{rank},{domain}\n")


def load_tranco_csv(path: str, *, list_id: str = "", date: str = "") -> TrancoList:
    """Read a ``rank,domain`` CSV as downloaded from the Tranco service."""
    domains: list[str] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            rank_text, _, domain = line.partition(",")
            if not domain:
                raise ValueError(f"malformed Tranco line: {line!r}")
            try:
                rank = int(rank_text)
            except ValueError as exc:
                raise ValueError(f"malformed Tranco rank: {line!r}") from exc
            if rank != len(domains) + 1:
                raise ValueError(
                    f"non-contiguous rank {rank} at line {len(domains) + 1}"
                )
            domains.append(domain)
    return TrancoList(list_id=list_id, date=date, domains=domains)


def build_study_dataset(
    lists: list[TrancoList], *, cutoff: int = 50_000
) -> list[tuple[str, float]]:
    """The paper's procedure: intersect top-``cutoff`` of all lists, order
    by average rank.  Returns ``[(domain, average_rank), ...]`` best first.
    """
    if not lists:
        return []
    common: set[str] | None = None
    for tranco_list in lists:
        members = set(tranco_list.top(cutoff))
        common = members if common is None else common & members
    assert common is not None
    totals: dict[str, float] = {domain: 0.0 for domain in common}
    for tranco_list in lists:
        ranks = tranco_list.rank_of()
        for domain in common:
            totals[domain] += ranks[domain]
    count = len(lists)
    averaged = [(domain, totals[domain] / count) for domain in common]
    averaged.sort(key=lambda item: (item[1], item[0]))
    return averaged
