"""Local Common-Crawl-compatible archive layout and builder.

Directory layout mirrors the real thing closely enough that the pipeline
code reads it the same way it would read Common Crawl:

    <root>/collinfo.json                                  # snapshot list
    <root>/cc-index/<CC-MAIN-...>.cdxj                    # per-snapshot index
    <root>/crawl-data/<CC-MAIN-...>/warc/part-NNNNN.warc.gz

The builder takes a :class:`~repro.commoncrawl.corpusgen.CorpusPlan`,
renders every planned page, wraps it in an HTTP response inside a gzipped
WARC record, and indexes it in the snapshot's CDXJ file.  The ground-truth
plan is also saved (``ground_truth.json``) so integration tests can verify
that the measurement pipeline recovers the injected rates.
"""
from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path

from ..warc import CDXEntry, CDXWriter, WARCRecord, WARCWriter, surt
from . import calibration as cal
from .corpusgen import CorpusPlan, PageSpec, render_page

#: max records per WARC part file (keeps parts small, exercises multi-part)
RECORDS_PER_PART = 2000


def snapshot_name(year: int) -> str:
    return cal.SNAPSHOT_BY_YEAR[year].name


def _warc_date(year: int, counter: int) -> str:
    month = 3 if year in (2015,) else 1
    day = 15 + (counter % 10)
    hour = counter % 24
    minute = (counter * 7) % 60
    return f"{year}-{month:02d}-{day:02d}T{hour:02d}:{minute:02d}:00Z"


def _cdx_timestamp(warc_date: str) -> str:
    return (
        warc_date.replace("-", "").replace(":", "").replace("T", "").rstrip("Z")
    )


@dataclass(slots=True)
class BuiltSnapshot:
    name: str
    year: int
    records: int
    warc_parts: list[str]
    cdx_path: str
    #: deduplicated repeat captures included in ``records``
    revisits: int = 0


class ArchiveBuilder:
    """Write a plan out as a browsable local Common Crawl archive."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def build(self, plan: CorpusPlan) -> list[BuiltSnapshot]:
        self.root.mkdir(parents=True, exist_ok=True)
        built = []
        for year in plan.config.years:
            built.append(self._build_snapshot(plan, year))
        collinfo = [
            {
                "id": snapshot.name,
                "name": f"Synthetic crawl {snapshot.year}",
                "year": snapshot.year,
                "cdx-api": snapshot.cdx_path,
                "records": snapshot.records,
            }
            for snapshot in built
        ]
        (self.root / "collinfo.json").write_text(json.dumps(collinfo, indent=2))
        self._write_ground_truth(plan)
        return built

    def _build_snapshot(self, plan: CorpusPlan, year: int) -> BuiltSnapshot:
        name = snapshot_name(year)
        warc_dir = self.root / "crawl-data" / name / "warc"
        warc_dir.mkdir(parents=True, exist_ok=True)
        index_dir = self.root / "cc-index"
        index_dir.mkdir(parents=True, exist_ok=True)

        cdx = CDXWriter()
        parts: list[str] = []
        part_index = 0
        records_in_part = 0
        total = 0
        writer: WARCWriter | None = None
        stream = None

        def open_part() -> None:
            nonlocal writer, stream, part_index, records_in_part
            part_name = f"part-{part_index:05d}.warc.gz"
            parts.append(str(Path("crawl-data") / name / "warc" / part_name))
            stream = open(warc_dir / part_name, "wb")
            writer = WARCWriter(stream)
            info = WARCRecord.warcinfo(
                part_name, _warc_date(year, 0),
                {"software": "repro-synthetic-crawler/1.0", "isPartOf": name},
            )
            writer.write_record(info)
            records_in_part = 0

        open_part()
        counter = 0
        revisits = 0
        succeeded = set(plan.succeeded[year])

        def write(record: WARCRecord, url: str, mime: str, status: int) -> None:
            nonlocal counter, total, records_in_part, part_index
            assert writer is not None and stream is not None
            if records_in_part >= RECORDS_PER_PART:
                stream.close()
                part_index += 1
                open_part()
            offset, length = writer.write_record(record)
            cdx.add(
                CDXEntry(
                    urlkey=surt(url),
                    timestamp=_cdx_timestamp(record.date),
                    url=url,
                    mime=mime,
                    status=status,
                    digest=record.payload_digest,
                    length=length,
                    offset=offset,
                    filename=parts[-1],
                )
            )
            counter += 1
            total += 1
            records_in_part += 1

        for domain in plan.present[year]:
            if domain in succeeded:
                first_capture: tuple[str, str, str] | None = None
                for spec in plan.pages.get((domain, year), ()):
                    date = _warc_date(year, counter)
                    record = _record_for(spec, date, plan.config.seed)
                    mime = "text/html" if spec.html else "application/json"
                    write(record, spec.url, mime, 200)
                    if first_capture is None and spec.html and spec.utf8:
                        first_capture = (spec.url, date, record.payload_digest)
                # A small share of domains gets a deduplicated repeat
                # capture, as Common Crawl stores identical content.
                if first_capture is not None and random.Random(
                    f"{plan.config.seed}:revisit:{domain}:{year}"
                ).random() < 0.05:
                    url, original_date, digest = first_capture
                    revisit = WARCRecord.revisit(
                        url,
                        _warc_date(year, counter),
                        refers_to_uri=url,
                        refers_to_date=original_date,
                        payload_digest=digest,
                    )
                    write(revisit, url, "warc/revisit", 200)
                    revisits += 1
            else:
                # present on Common Crawl but the capture failed — the
                # found-but-not-analyzed slice of Table 2
                url = f"https://{domain}/"
                record = WARCRecord.response(
                    url,
                    b"Service Unavailable",
                    _warc_date(year, counter),
                    status_code=503,
                    content_type="text/html",
                )
                write(record, url, "text/html", 503)
        assert stream is not None
        stream.close()
        cdx_path = index_dir / f"{name}.cdxj"
        cdx.write(cdx_path)
        return BuiltSnapshot(
            name=name, year=year, records=total,
            warc_parts=parts, cdx_path=str(cdx_path.relative_to(self.root)),
            revisits=revisits,
        )

    def _write_ground_truth(self, plan: CorpusPlan) -> None:
        truth = {
            "seed": plan.config.seed,
            "num_domains": plan.config.num_domains,
            "max_pages": plan.config.max_pages,
            "rho_fixable": plan.loadings.fixable,
            "rho_manual": plan.loadings.manual,
            "domains": [
                {"name": name, "avg_rank": rank} for name, rank in plan.domains
            ],
            "present": {str(year): sorted(v) for year, v in plan.present.items()},
            "succeeded": {
                str(year): sorted(v) for year, v in plan.succeeded.items()
            },
            "active": {
                f"{domain}:{year}": list(names)
                for (domain, year), names in plan.active.items()
            },
        }
        (self.root / "ground_truth.json").write_text(json.dumps(truth, indent=1))


def _record_for(spec: PageSpec, date: str, seed: int) -> WARCRecord:
    payload = render_page(spec, seed)
    if spec.html:
        charset = "UTF-8" if spec.utf8 else "ISO-8859-1"
        content_type = f"text/html; charset={charset}"
    else:
        content_type = "application/json"
    return WARCRecord.response(
        spec.url, payload, date, content_type=content_type
    )
