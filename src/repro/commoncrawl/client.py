"""Client API over a local Common-Crawl-compatible archive.

Mirrors the two-step workflow the paper's framework uses against the real
Common Crawl (section 3.3): query the index service for a domain's
captures ("collect CC metadata"), then fetch individual records by
``(filename, offset, length)`` — the S3 range-read, served here from local
WARC files.
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..warc import CDXEntry, CDXIndex, WARCRecord, read_record_at


@dataclass(frozen=True, slots=True)
class Collection:
    """One crawl snapshot as advertised by ``collinfo.json``."""

    id: str
    year: int
    records: int
    cdx_api: str


class CommonCrawlClient:
    """Read-only access to a local archive built by :class:`ArchiveBuilder`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if not (self.root / "collinfo.json").exists():
            raise FileNotFoundError(
                f"{self.root} is not a Common Crawl archive (no collinfo.json)"
            )
        self._collections: list[Collection] | None = None
        self._indexes: dict[str, CDXIndex] = {}

    # -------------------------------------------------------------- catalog

    def collections(self) -> list[Collection]:
        if self._collections is None:
            raw = json.loads((self.root / "collinfo.json").read_text())
            self._collections = [
                Collection(
                    id=item["id"],
                    year=item["year"],
                    records=item["records"],
                    cdx_api=item["cdx-api"],
                )
                for item in raw
            ]
        return self._collections

    def collection(self, snapshot_id: str) -> Collection:
        for collection in self.collections():
            if collection.id == snapshot_id:
                return collection
        raise KeyError(f"unknown snapshot {snapshot_id!r}")

    # ---------------------------------------------------------------- index

    def index(self, snapshot_id: str) -> CDXIndex:
        if snapshot_id not in self._indexes:
            collection = self.collection(snapshot_id)
            self._indexes[snapshot_id] = CDXIndex.load(self.root / collection.cdx_api)
        return self._indexes[snapshot_id]

    def query(
        self,
        snapshot_id: str,
        domain: str,
        *,
        mime: str | None = "text/html",
        limit: int | None = None,
        page: int = 0,
        page_size: int | None = None,
    ) -> Iterator[CDXEntry]:
        """Domain-prefix index query with MIME filtering and pagination.

        ``mime='text/html'`` reproduces the paper's constraint of only
        requesting HTML documents (the reason the study starts at the
        2015-14 snapshot, the first with MIME metadata).  ``page`` and
        ``page_size`` mirror the real index server's paged API for large
        domains.
        """
        count = 0
        skip = page * page_size if page_size else 0
        for entry in self.index(snapshot_id).domain_query(domain):
            if mime is not None and entry.mime != mime:
                continue
            if skip:
                skip -= 1
                continue
            yield entry
            count += 1
            if page_size is not None and count >= page_size:
                return
            if limit is not None and count >= limit:
                return

    # ---------------------------------------------------------------- fetch

    def fetch(self, entry: CDXEntry) -> WARCRecord:
        """Range-read one record (the S3 fetch in the real pipeline)."""
        return read_record_at(self.root / entry.filename, entry.offset, entry.length)

    def resolve_revisit(
        self, snapshot_id: str, record: WARCRecord
    ) -> WARCRecord | None:
        """Resolve a ``revisit`` record to the original response.

        Looks the referred URI up in the snapshot index and returns the
        capture whose payload digest matches; None when the original is
        not in this snapshot.
        """
        if not record.is_revisit:
            return record
        digest = record.headers.get("WARC-Payload-Digest", "")
        for entry in self.index(snapshot_id).lookup(record.refers_to_uri):
            if entry.digest == digest and entry.mime != "warc/revisit":
                return self.fetch(entry)
        return None
