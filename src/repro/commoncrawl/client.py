"""Client API over a local Common-Crawl-compatible archive.

Mirrors the two-step workflow the paper's framework uses against the real
Common Crawl (section 3.3): query the index service for a domain's
captures ("collect CC metadata"), then fetch individual records by
``(filename, offset, length)`` — the S3 range-read, served here from local
WARC files.
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..warc import CDXEntry, CDXIndex, MMapCDXIndex, WARCFileCache, WARCRecord

INDEX_BACKENDS = ("mmap", "linear")


@dataclass(frozen=True, slots=True)
class Collection:
    """One crawl snapshot as advertised by ``collinfo.json``."""

    id: str
    year: int
    records: int
    cdx_api: str


class CommonCrawlClient:
    """Read-only access to a local archive built by :class:`ArchiveBuilder`.

    ``index_backend`` selects the CDX implementation: ``"mmap"`` (default)
    binary-searches the memory-mapped file; ``"linear"`` eagerly parses it
    (the reference implementation, kept for equivalence testing).
    ``handle_cache`` bounds the LRU of open WARC file handles used by
    :meth:`fetch`; ``0`` re-opens the file per record.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        index_backend: str = "mmap",
        handle_cache: int = 8,
    ) -> None:
        self.root = Path(root)
        if not (self.root / "collinfo.json").exists():
            raise FileNotFoundError(
                f"{self.root} is not a Common Crawl archive (no collinfo.json)"
            )
        if index_backend not in INDEX_BACKENDS:
            raise ValueError(
                f"unknown index backend {index_backend!r}; expected one of {INDEX_BACKENDS}"
            )
        self.index_backend = index_backend
        self._collections: list[Collection] | None = None
        self._indexes: dict[str, CDXIndex | MMapCDXIndex] = {}
        self._handles = WARCFileCache(maxsize=handle_cache)

    # -------------------------------------------------------------- catalog

    def collections(self) -> list[Collection]:
        if self._collections is None:
            raw = json.loads((self.root / "collinfo.json").read_text())
            self._collections = [
                Collection(
                    id=item["id"],
                    year=item["year"],
                    records=item["records"],
                    cdx_api=item["cdx-api"],
                )
                for item in raw
            ]
        return self._collections

    def collection(self, snapshot_id: str) -> Collection:
        for collection in self.collections():
            if collection.id == snapshot_id:
                return collection
        raise KeyError(f"unknown snapshot {snapshot_id!r}")

    # ---------------------------------------------------------------- index

    def index(self, snapshot_id: str) -> CDXIndex | MMapCDXIndex:
        if snapshot_id not in self._indexes:
            collection = self.collection(snapshot_id)
            path = self.root / collection.cdx_api
            if self.index_backend == "mmap":
                self._indexes[snapshot_id] = MMapCDXIndex.open(path)
            else:
                self._indexes[snapshot_id] = CDXIndex.load(path)
        return self._indexes[snapshot_id]

    def query(
        self,
        snapshot_id: str,
        domain: str,
        *,
        mime: str | None = "text/html",
        limit: int | None = None,
        page: int = 0,
        page_size: int | None = None,
    ) -> Iterator[CDXEntry]:
        """Domain-prefix index query with MIME filtering and pagination.

        ``mime='text/html'`` reproduces the paper's constraint of only
        requesting HTML documents (the reason the study starts at the
        2015-14 snapshot, the first with MIME metadata).  ``page`` and
        ``page_size`` mirror the real index server's paged API for large
        domains.

        Precedence when both are given: ``limit`` caps the mime-filtered
        capture stream first, then ``page``/``page_size`` window into that
        capped stream — so no page ever extends past ``limit``, and a
        ``limit`` spanning several pages truncates exactly the last page
        that crosses it.
        """
        passed = 0  # position within the limit-capped, mime-filtered stream
        yielded = 0  # captures yielded from the current page
        skip = page * page_size if page_size else 0
        for entry in self.index(snapshot_id).domain_query(domain):
            if mime is not None and entry.mime != mime:
                continue
            if limit is not None and passed >= limit:
                return
            passed += 1
            if skip:
                skip -= 1
                continue
            yield entry
            yielded += 1
            if page_size is not None and yielded >= page_size:
                return

    # ---------------------------------------------------------------- fetch

    def fetch(self, entry: CDXEntry) -> WARCRecord:
        """Range-read one record (the S3 fetch in the real pipeline)."""
        return self._handles.read_record_at(
            self.root / entry.filename, entry.offset, entry.length
        )

    # -------------------------------------------------------------- lifetime

    def close(self) -> None:
        """Release cached WARC handles and mapped indexes."""
        self._handles.close()
        for index in self._indexes.values():
            closer = getattr(index, "close", None)
            if closer is not None:
                closer()
        self._indexes.clear()

    def __enter__(self) -> "CommonCrawlClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def resolve_revisit(
        self, snapshot_id: str, record: WARCRecord
    ) -> WARCRecord | None:
        """Resolve a ``revisit`` record to the original response.

        Looks the referred URI up in the snapshot index and returns the
        capture whose payload digest matches; None when the original is
        not in this snapshot.
        """
        if not record.is_revisit:
            return record
        digest = record.headers.get("WARC-Payload-Digest", "")
        for entry in self.index(snapshot_id).lookup(record.refers_to_uri):
            if entry.digest == digest and entry.mime != "warc/revisit":
                return self.fetch(entry)
        return None
