"""Calibrated synthetic web corpus generation.

This module decides *which* domains violate *what*, *when* — the workload
substitution for Common Crawl described in DESIGN.md.  The statistical
model has three layers:

1. **Injector targets.**  Rule-level targets (Figures 8 and 16–21, via
   :mod:`repro.commoncrawl.calibration`) are converted to injector-level
   targets.  Most rules map 1:1 to an injector; HF1/HF2/HF3 are solved
   jointly because the realistic "stray element in head" mistake cascades
   through all three (see templates.py).

2. **A one-factor Gaussian copula** correlates violations across injectors
   within a domain: sloppy sites violate in many ways at once.  Without
   this, the per-year "any violation" rate would come out near 92% instead
   of the paper's ~68–75% (Figure 9).  The factor loading ``rho`` is
   calibrated by bisection against the mean of Figure 9.

3. **Persistence.**  Each (domain, injector) pair has a persistent latent
   trait (hit at the Figure 8 *union* rate); in each year the trait
   activates with probability ``yearly/union``, reproducing both the
   yearly trends and the much higher all-time union.

Every decision is a pure function of the seed (``random.Random`` with
string seeding), so corpora are fully reproducible.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import norm

from . import calibration as cal
from .templates import INJECTORS, build_page
from .tranco import build_study_dataset, generate_domain_pool, generate_tranco_lists

# ------------------------------------------------------------ injector model


@dataclass(frozen=True, slots=True)
class InjectorTarget:
    """Calibrated prevalence targets for one injector."""

    name: str
    union: float                   # P(trait): violates at least once ever
    yearly: tuple[float, ...]      # P(active in year), aligned with YEARS

    def conditional(self, year_index: int) -> float:
        if self.union <= 0:
            return 0.0
        return min(1.0, self.yearly[year_index] / self.union)


def _complement_solve(total: float, other: float) -> float:
    """p such that 1-(1-other)(1-p) == total (rates combine independently)."""
    if other >= 1.0:
        return 0.0
    return max(0.0, 1.0 - (1.0 - total) / (1.0 - other))


def build_injector_targets() -> dict[str, InjectorTarget]:
    """Derive injector-level targets from the paper's rule-level targets."""
    targets: dict[str, InjectorTarget] = {}

    # HF1/HF2/HF3 via the cascade decomposition: the cascade injector fires
    # all three; dedicated injectors top each rule up to its target.
    hf3_union = cal.union("HF3")
    cascade_union = 0.5 * hf3_union
    cascade_yearly = tuple(0.5 * value for value in cal.YEARLY_PREVALENCE["HF3"])
    targets["HF_CASCADE"] = InjectorTarget("HF_CASCADE", cascade_union, cascade_yearly)
    for injector_name, rule in (
        ("HF1_LATE", "HF1"), ("HF2_NOBODY", "HF2"), ("HF3_SECOND", "HF3")
    ):
        union = _complement_solve(cal.union(rule), cascade_union)
        yearly = tuple(
            _complement_solve(value, cascade_yearly[index])
            for index, value in enumerate(cal.YEARLY_PREVALENCE[rule])
        )
        targets[injector_name] = InjectorTarget(injector_name, union, yearly)

    # 1:1 rules.
    for rule in (
        "FB1", "FB2", "DM1", "DM2_1", "DM2_2", "DM2_3", "DM3", "HF4",
        "HF5_1", "HF5_2", "HF5_3", "DE1", "DE2", "DE3_1", "DE3_2", "DE3_3",
        "DE4",
    ):
        targets[rule] = InjectorTarget(
            rule, cal.union(rule), cal.YEARLY_PREVALENCE[rule]
        )

    # Newline-only URLs (section 4.5 measurement, not a Table 1 rule).
    nl_yearly = cal.EXTRA_FEATURE_YEARLY["NL_URL"]
    targets["NL_URL"] = InjectorTarget("NL_URL", max(nl_yearly) * 2.1, nl_yearly)
    return targets


def injector_cluster(name: str) -> str:
    """'fixable' (FB/DM effects) or 'manual' (HF/DE effects) cluster.

    The two clusters carry different copula loadings because the paper's
    data pins down two different union statistics: Figure 9 (any violation,
    dominated by FB2/DM3) and the section 4.4 after-autofix number (any
    HF/DE violation, 37% in 2022).
    """
    effects = INJECTORS[name].effects
    if not effects:
        return "fixable"  # NL_URL: cluster choice is irrelevant
    return "manual" if effects[0][:2] in ("HF", "DE") else "fixable"


@dataclass(frozen=True, slots=True)
class CopulaLoadings:
    """Per-cluster loadings, each on its own independent factor.

    The clusters get *separate* factors because the paper's numbers pin
    both unions independently: with P(any violation) = 68% (Figure 9) and
    P(any HF/DE violation) = 37% (section 4.4), the implied FB/DM union is
    (0.68-0.37)/(1-0.37) = 49% — almost exactly what independence between
    the clusters predicts.  A single shared factor would push the overall
    rate several points above 68%.
    """

    fixable: float
    manual: float

    def of(self, name: str) -> float:
        return self.manual if injector_cluster(name) == "manual" else self.fixable


def calibrate_loadings(
    targets: dict[str, InjectorTarget],
    *,
    samples: int = 20_000,
    seed: int = 1234,
) -> CopulaLoadings:
    """Fit the two copula loadings against the paper's union statistics.

    For factor value ``z`` the probability that injector ``i``'s latent
    trait fires is ``Phi((Phi^-1(union_i) - rho_i*z) / sqrt(1-rho_i^2))``;
    year activation given the trait is independent, so any-violation rates
    are ``E_z[1 - prod_i(1 - p_i(z) q_i(year))]``.

    Solved by two independent bisections: the manual-cluster loading
    against the section 4.4 target (37% of 2022 domains still violating
    after the automated repair), and the fixable-cluster loading against
    the FB/DM union that Figure 9 implies once the HF/DE union is fixed:
    ``F_y = 1 - (1 - any_y) / (1 - M_y)`` under cluster independence.
    """
    rng = np.random.default_rng(seed)
    z = rng.standard_normal(samples)          # trait factor
    w = rng.standard_normal(samples)          # year-activation factor
    names = [name for name in targets if INJECTORS[name].effects]
    manual_mask = np.array(
        [injector_cluster(name) == "manual" for name in names]
    )
    thresholds = norm.ppf(
        np.clip(np.array([targets[name].union for name in names]), 1e-9, 1 - 1e-9)
    )
    conditionals = np.array(
        [
            [targets[name].conditional(index) for name in names]
            for index in range(len(cal.YEARS))
        ]
    )  # (years, injectors)
    act_thresholds = norm.ppf(np.clip(conditionals, 1e-9, 1 - 1e-9))

    def trait_probs(rho: float, mask: np.ndarray) -> np.ndarray:
        denom = np.sqrt(max(1e-12, 1.0 - rho * rho))
        return norm.cdf((thresholds[mask][None, :] - rho * z[:, None]) / denom)

    def union_rate(rho: float, mask: np.ndarray, year_index: int) -> float:
        """P(any cluster injector active in the year) under loading rho.

        The loading applies at both levels — trait (is this domain the kind
        that makes this mistake?) and year activation (did it show this
        year?) — because the paper's per-year any-violation rate is far
        below what independent yearly flicker would produce.
        """
        denom = np.sqrt(max(1e-12, 1.0 - rho * rho))
        traits = trait_probs(rho, mask)
        activations = norm.cdf(
            (act_thresholds[year_index][mask][None, :] - rho * w[:, None]) / denom
        )
        keep = np.prod(1.0 - traits * activations, axis=1)
        return float(np.mean(1.0 - keep))

    def bisect(function, goal: float) -> float:
        low, high = 0.0, 0.995
        if function(low) < goal:
            return low
        for _ in range(22):
            mid = (low + high) / 2.0
            if function(mid) > goal:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    # 1. manual cluster vs the 4.4 target (HF/DE union in 2022 = 37%).
    year_2022 = len(cal.YEARS) - 1
    manual_goal = cal.AUTOFIX["violating_after_autofix"] / cal.SNAPSHOT_BY_YEAR[
        2022
    ].succeeded
    rho_manual = bisect(
        lambda rho: union_rate(rho, manual_mask, year_2022), manual_goal
    )

    # 2. fixable cluster vs the FB/DM union implied by Figure 9 under
    # cluster independence: F_y = 1 - (1 - any_y) / (1 - M_y).
    fixable_mask = ~manual_mask
    year_range = range(len(cal.YEARS))
    manual_unions = [union_rate(rho_manual, manual_mask, i) for i in year_range]
    implied = []
    for index, year in enumerate(cal.YEARS):
        goal_any = cal.OVERALL_VIOLATING[year]
        keep_manual = 1.0 - manual_unions[index]
        implied.append(
            max(0.0, 1.0 - (1.0 - goal_any) / max(keep_manual, 1e-9))
        )
    fixable_goal = float(np.mean(implied))

    def fixable_mean(rho: float) -> float:
        return float(
            np.mean([union_rate(rho, fixable_mask, i) for i in year_range])
        )

    rho_fixable = bisect(fixable_mean, fixable_goal)
    return CopulaLoadings(fixable=rho_fixable, manual=rho_manual)


# ------------------------------------------------------------- corpus plan


@dataclass(slots=True)
class CorpusConfig:
    """Scale and determinism knobs for one synthetic corpus."""

    num_domains: int = 200
    #: scaled-down page cap; the paper used 100 pages/domain
    max_pages: int = 8
    years: tuple[int, ...] = cal.YEARS
    seed: int = 42
    #: extra non-UTF-8 pages (exercise the encoding filter)
    non_utf8_fraction: float = 0.03
    #: extra non-HTML records (exercise the MIME filter)
    non_html_fraction: float = 0.03
    #: fraction of each domain-year's planned pages that are *stable*:
    #: injector-free and rendered from a year-free seed, so the same slot
    #: yields byte-identical payloads in every snapshot the domain
    #: appears in — the unchanged web that cross-snapshot dedup carries
    #: forward.  0.0 (the default) reproduces legacy corpora exactly;
    #: at least one volatile page per domain-year is always kept so the
    #: calibrated injector ground truth stays meaningful.
    overlap_fraction: float = 0.0

    def scale(self) -> float:
        return self.num_domains / cal.TRANCO_DATASET_SIZE


@dataclass(slots=True)
class PageSpec:
    """Ground truth for one generated page."""

    domain: str
    url: str
    year: int
    injectors: tuple[str, ...]
    utf8: bool = True
    html: bool = True
    #: benign foreign-root usage (section 4.2 adoption measurement);
    #: decided per domain-year by the planner so domain-level usage rates
    #: match the calibration targets
    use_svg: bool = False
    use_math: bool = False
    #: stable slot: rendered from a year-free seed with no injectors or
    #: foreign-root usage, byte-identical across snapshots
    stable: bool = False


@dataclass(slots=True)
class CorpusPlan:
    """The full ground truth of a generated corpus."""

    config: CorpusConfig
    loadings: CopulaLoadings
    domains: list[tuple[str, float]]                 # (name, avg tranco rank)
    present: dict[int, list[str]] = field(default_factory=dict)
    succeeded: dict[int, list[str]] = field(default_factory=dict)
    #: (domain, year) -> active injector names
    active: dict[tuple[str, int], tuple[str, ...]] = field(default_factory=dict)
    pages: dict[tuple[str, int], list[PageSpec]] = field(default_factory=dict)

    def expected_rule_rate(self, rule: str, year: int) -> float:
        """Ground-truth fraction of succeeded domains violating ``rule``."""
        succeeded = self.succeeded[year]
        if not succeeded:
            return 0.0
        hits = sum(
            1
            for domain in succeeded
            if any(
                rule in INJECTORS[name].effects
                for name in self.active.get((domain, year), ())
            )
        )
        return hits / len(succeeded)

    def domains_violating(self, year: int) -> int:
        return sum(
            1
            for domain in self.succeeded[year]
            if any(
                INJECTORS[name].effects
                for name in self.active.get((domain, year), ())
            )
        )


class CorpusPlanner:
    """Plan a corpus: who exists when, who violates what, page layouts."""

    def __init__(self, config: CorpusConfig) -> None:
        self.config = config
        self.targets = build_injector_targets()

    # ------------------------------------------------------------- planning

    def plan(self) -> CorpusPlan:
        config = self.config
        # Over-provision the pool so that the Tranco intersection (which
        # removes churned/trending entries) still yields num_domains.
        pool = generate_domain_pool(int(config.num_domains * 1.8) + 16)
        lists = generate_tranco_lists(
            pool, num_lists=5, seed=config.seed, churn=0.02
        )
        dataset = build_study_dataset(lists, cutoff=int(config.num_domains * 1.5) + 8)
        dataset = dataset[: config.num_domains]
        plan = CorpusPlan(
            config=config,
            loadings=calibrate_loadings(self.targets, seed=config.seed),
            domains=dataset,
        )
        self._plan_presence(plan)
        self._plan_violations(plan)
        self._plan_pages(plan)
        return plan

    def _rng(self, *parts: object) -> random.Random:
        return random.Random(":".join(str(part) for part in (self.config.seed, *parts)))

    def _plan_presence(self, plan: CorpusPlan) -> None:
        """Scale Table 2's presence and success counts to our pool."""
        for domain, _rank in plan.domains:
            rng = self._rng("presence", domain)
            # One persistent uniform per domain makes presence comonotone
            # across years: snapshot sizes then track Table 2's counts
            # exactly in order (e.g. the strong 2017 growth), instead of
            # drowning the ~5% year-over-year deltas in sampling noise.
            position = rng.random()
            for year in self.config.years:
                spec = cal.SNAPSHOT_BY_YEAR[year]
                plan.present.setdefault(year, [])
                plan.succeeded.setdefault(year, [])
                present_rate = spec.domains / cal.TRANCO_DATASET_SIZE
                if position >= present_rate:
                    continue
                plan.present[year].append(domain)
                if rng.random() < spec.succeeded / spec.domains:
                    plan.succeeded[year].append(domain)

    def _plan_violations(self, plan: CorpusPlan) -> None:
        names = list(self.targets)
        loadings = plan.loadings
        denoms = {
            name: float(np.sqrt(max(1e-12, 1.0 - loadings.of(name) ** 2)))
            for name in names
        }
        thresholds = {
            name: float(norm.ppf(np.clip(self.targets[name].union, 1e-9, 1 - 1e-9)))
            for name in names
        }

        def gate(name: str, factor: float, noise: float, probability: float) -> bool:
            """Gaussian-copula Bernoulli with marginal ``probability``."""
            if probability <= 0.0:
                return False
            if probability >= 1.0:
                return True
            threshold = float(norm.ppf(probability))
            return loadings.of(name) * factor + denoms[name] * noise < threshold

        for domain, _rank in plan.domains:
            factor_rng = self._rng("factor", domain)
            trait_factors = {
                "fixable": factor_rng.gauss(0.0, 1.0),
                "manual": factor_rng.gauss(0.0, 1.0),
            }
            traits = []
            for name in names:
                z = trait_factors[injector_cluster(name)]
                epsilon = self._rng("trait", domain, name).gauss(0.0, 1.0)
                if loadings.of(name) * z + denoms[name] * epsilon < thresholds[name]:
                    traits.append(name)
            for year_index, year in enumerate(self.config.years):
                if domain not in plan.succeeded.get(year, ()):
                    continue
                year_rng = self._rng("yearfactor", domain, year)
                year_factors = {
                    "fixable": year_rng.gauss(0.0, 1.0),
                    "manual": year_rng.gauss(0.0, 1.0),
                }
                active = []
                for name in traits:
                    noise = self._rng("year", domain, name, year).gauss(0.0, 1.0)
                    if gate(
                        name,
                        year_factors[injector_cluster(name)],
                        noise,
                        self.targets[name].conditional(year_index),
                    ):
                        active.append(name)
                if active:
                    plan.active[(domain, year)] = tuple(active)

    _PATHS = (
        "/", "/about", "/contact", "/products", "/blog", "/news",
        "/pricing", "/docs", "/careers", "/terms", "/help", "/team",
        "/press", "/status", "/features", "/changelog",
    )

    def _plan_pages(self, plan: CorpusPlan) -> None:
        config = self.config
        for year in config.years:
            spec = cal.SNAPSHOT_BY_YEAR[year]
            # avg_pages/100 is the fill level of the paper's 100-page cap;
            # reproduce the same fill level at our (smaller) cap.
            fill = spec.avg_pages / 100.0
            p_full = max(0.0, min(1.0, (fill - 0.6) / 0.4))
            for domain in plan.succeeded[year]:
                rng = self._rng("pages", domain, year)
                if rng.random() < p_full:
                    count = config.max_pages
                else:
                    count = max(1, round(rng.uniform(0.2, 1.0) * config.max_pages))
                usage_rng = self._rng("usage", domain, year)
                year_pos = cal.YEARS.index(year) if year in cal.YEARS else 0
                svg_user = (
                    usage_rng.random()
                    < cal.EXTRA_FEATURE_YEARLY["SVG_USE"][year_pos]
                )
                math_user = (
                    usage_rng.random()
                    < cal.EXTRA_FEATURE_YEARLY["MATH_USE"][year_pos]
                )
                active = plan.active.get((domain, year), ())
                # Stable slots model the unchanged web: the low indexes
                # (same path every year) render from a year-free seed, so
                # injectors and year-varying foreign-root usage must stay
                # on the volatile slots.  At least one volatile slot is
                # always kept so the injector ground truth has somewhere
                # to land; stable_count == 0 reproduces legacy draws bit
                # for bit (``range(0, count)`` is ``range(count)``).
                stable_count = min(
                    count - 1, round(config.overlap_fraction * count)
                )
                stable_count = max(0, stable_count)
                page_injectors: list[list[str]] = [[] for _ in range(count)]
                for name in active:
                    share = self._rng("share", domain, name).uniform(0.1, 0.5)
                    affected = max(1, round(share * count))
                    affected = min(affected, count - stable_count)
                    picks = self._rng("pick", domain, name, year).sample(
                        range(stable_count, count), affected
                    )
                    for index in picks:
                        page_injectors[index].append(name)
                specs = []
                for index in range(count):
                    path = (
                        self._PATHS[index]
                        if index < len(self._PATHS)
                        else f"/page/{index}"
                    )
                    stable = index < stable_count
                    injectors = page_injectors[index]
                    # terminal injectors (unclosed textarea/select) last
                    injectors.sort(key=lambda name: INJECTORS[name].terminal)
                    page_rng = self._rng("pageuse", domain, year, index)
                    # the first volatile page always carries the domain's
                    # foreign-root usage so domain-level adoption equals
                    # the calibrated rate exactly
                    anchor = index == stable_count
                    specs.append(
                        PageSpec(
                            domain=domain,
                            url=f"https://{domain}{path}",
                            year=year,
                            injectors=tuple(injectors),
                            use_svg=not stable and svg_user
                            and (anchor or page_rng.random() < 0.5),
                            use_math=not stable and math_user
                            and (anchor or page_rng.random() < 0.3),
                            stable=stable,
                        )
                    )
                extra_rng = self._rng("extras", domain, year)
                if extra_rng.random() < config.non_utf8_fraction * count:
                    # '~' sorts after every regular path in the CDX index,
                    # so the legacy page never displaces a planned page
                    # from the per-domain fetch cap.
                    specs.append(
                        PageSpec(
                            domain=domain,
                            url=f"https://{domain}/~legacy-{year}.html",
                            year=year,
                            injectors=(),
                            utf8=False,
                        )
                    )
                if extra_rng.random() < config.non_html_fraction * count:
                    specs.append(
                        PageSpec(
                            domain=domain,
                            url=f"https://{domain}/api/data-{year}.json",
                            year=year,
                            injectors=(),
                            html=False,
                        )
                    )
                plan.pages[(domain, year)] = specs


# ------------------------------------------------------------- page render


def render_page(spec: PageSpec, seed: int) -> bytes:
    """Render one planned page to bytes (the WARC payload).

    Stable slots seed without the year ("static" cannot collide with a
    year), so the same slot renders byte-identically in every snapshot —
    the cross-snapshot overlap the incremental engine deduplicates.
    """
    epoch = "static" if spec.stable else spec.year
    rng = random.Random(f"{seed}:render:{spec.domain}:{epoch}:{spec.url}")
    if not spec.html:
        return (
            '{"status": "ok", "domain": "%s", "year": %d}'
            % (spec.domain, spec.year)
        ).encode()
    path = spec.url.split(spec.domain, 1)[1] or "/"
    draft = build_page(
        spec.domain, path, rng, use_svg=spec.use_svg, use_math=spec.use_math
    )
    for name in spec.injectors:
        INJECTORS[name].apply(draft, rng)
    text = draft.render()
    if spec.utf8:
        return text.encode("utf-8")
    # Legacy page: latin-1 bytes that do not decode as UTF-8.
    legacy = text.replace("</body>", "<p>caf\xe9 \xfcber legacy</p></body>")
    return legacy.encode("latin-1", "replace")
