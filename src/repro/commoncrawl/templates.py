"""HTML page templates and violation injectors for the synthetic corpus.

A :class:`PageDraft` is a structured page under construction: head items,
body items, and rendering flags.  The base builder produces *conforming*
pages (property-tested: the checker finds nothing on them), and each
injector mutates a draft to introduce exactly one violation pattern, using
the markup shapes the paper reports finding in the wild (Figures 3–5,
11–15).

Injectors are the unit of calibration: each declares the set of violation
rules it triggers (`effects`), because some real-world mistakes cascade —
a stray element inside ``head`` implicitly closes the head, implicitly
opens ``body``, and makes a later explicit ``<body>`` tag merge, firing
HF1+HF2+HF3 together, exactly as a real parser behaves.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

# --------------------------------------------------------------- page draft


@dataclass(slots=True)
class PageDraft:
    """A page under construction."""

    domain: str
    path: str
    title: str = ""
    head_items: list[str] = field(default_factory=list)
    #: markup emitted between ``</head>`` and ``<body>``
    pre_body_items: list[str] = field(default_factory=list)
    body_items: list[str] = field(default_factory=list)
    body_attrs: str = ""
    explicit_head: bool = True
    explicit_body: bool = True
    #: markup appended after the last body item, before the closing tags
    tail_items: list[str] = field(default_factory=list)
    #: when True the closing </body></html> tags are suppressed (used by
    #: EOF-swallowing injectors such as the unterminated textarea)
    suppress_closing_tags: bool = False

    def render(self) -> str:
        parts = ["<!DOCTYPE html>", '<html lang="en">']
        if self.explicit_head:
            parts.append("<head>")
        parts.extend(self.head_items)
        if self.explicit_head:
            parts.append("</head>")
        parts.extend(self.pre_body_items)
        if self.explicit_body:
            parts.append(f"<body{self.body_attrs}>")
        parts.extend(self.body_items)
        parts.extend(self.tail_items)
        if not self.suppress_closing_tags:
            if self.explicit_body:
                parts.append("</body>")
            parts.append("</html>")
        return "\n".join(parts)


_SECTION_TOPICS = (
    "latest updates", "featured products", "community picks", "top stories",
    "editor notes", "release highlights", "upcoming events", "archives",
)

_PARAGRAPHS = (
    "The quick brown fox jumps over the lazy dog while the team ships a "
    "new release every other week.",
    "Our editors curate the most relevant items so you never miss an "
    "update that matters to you.",
    "Sign up for the newsletter to receive a weekly digest with zero spam "
    "and one-click unsubscribe.",
    "This site is operated by a small team that cares deeply about web "
    "standards &amp; accessibility.",
)


def build_page(
    domain: str,
    path: str,
    rng: random.Random,
    *,
    use_svg: bool = False,
    use_math: bool = False,
) -> PageDraft:
    """Build a conforming page draft with realistic structure."""
    title = f"{domain} — {rng.choice(_SECTION_TOPICS)}"
    draft = PageDraft(domain=domain, path=path, title=title)
    draft.head_items = [
        f"<title>{title}</title>",
        '<meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
        f'<link rel="stylesheet" href="/static/css/main.{rng.randrange(100)}.css">',
        "<style>body{margin:0;font-family:sans-serif}.hero{padding:2rem}</style>",
    ]
    if rng.random() < 0.5:
        draft.head_items.append(
            f'<script src="/static/js/app.{rng.randrange(100)}.js" defer></script>'
        )
    body: list[str] = [
        '<header class="site-header">',
        f'<a class="brand" href="https://{domain}/">{domain}</a>',
        "<nav><ul>",
    ]
    for index in range(rng.randrange(3, 6)):
        body.append(f'<li><a href="/section/{index}">{rng.choice(_SECTION_TOPICS)}</a></li>')
    body.append("</ul></nav></header>")
    if use_svg:
        body.append(
            '<svg class="logo" viewBox="0 0 24 24" role="img">'
            '<circle cx="12" cy="12" r="10" fill="#246"></circle>'
            '<path d="M6 12h12" stroke="#fff"></path></svg>'
        )
    body.append('<main class="hero">')
    for index in range(rng.randrange(2, 5)):
        body.append(f"<section><h2>{rng.choice(_SECTION_TOPICS).title()}</h2>")
        body.append(f"<p>{rng.choice(_PARAGRAPHS)}</p>")
        if rng.random() < 0.4:
            body.append(
                f'<p><a href="/read/{rng.randrange(1000)}">Read more</a> or '
                f'<a href="https://{domain}/feed.xml">subscribe</a>.</p>'
            )
        body.append("</section>")
    if use_math:
        body.append(
            "<p>The update interval is <math><mi>t</mi><mo>=</mo><mn>7"
            "</mn></math> days.</p>"
        )
    if rng.random() < 0.35:
        body.append(
            '<table class="stats"><thead><tr><th>Metric</th><th>Value</th>'
            "</tr></thead><tbody>"
            f"<tr><td>Visitors</td><td>{rng.randrange(10_000)}</td></tr>"
            f"<tr><td>Articles</td><td>{rng.randrange(900)}</td></tr>"
            "</tbody></table>"
        )
    if rng.random() < 0.4:
        body.append(
            '<form method="get" action="/search/">'
            '<input name="q" type="text" placeholder="Search...">'
            '<button type="submit">Go</button></form>'
        )
    body.append("</main>")
    body.append(
        f'<footer><p>&copy; 2022 {domain} &middot; '
        '<a href="/privacy">privacy</a></p></footer>'
    )
    draft.body_items = body
    return draft


# ---------------------------------------------------------------- injectors


@dataclass(frozen=True, slots=True)
class Injector:
    """A violation pattern: a mutator plus the rules it triggers."""

    name: str
    effects: tuple[str, ...]
    apply: Callable[[PageDraft, random.Random], None]
    #: injectors that swallow the rest of the document must run last
    terminal: bool = False


def _inject_fb2(draft: PageDraft, rng: random.Random) -> None:
    variants = (
        # the plain forgotten space
        '<input name="q" type="text" placeholder="Search jobs by keyword..."'
        'value="">',
        # Figure 13 line 8: quote inside a single-quoted value
        "<option-list><option value='Cote d'Ivoire'>Cote d'Ivoire</option>"
        "</option-list>",
        '<a class="cta"href="/signup">Join now</a>',
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_fb1(draft: PageDraft, rng: random.Random) -> None:
    variants = (
        '<img/src="/img/banner.png"/alt="seasonal banner">',
        # Figure 13 line 10: broken quoting makes '/' a separator
        '<a href="/out" target="_blank" onClick="img=new Image();'
        'img.src="/foo?cl=16796306";">partner</a>',
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_dm3(draft: PageDraft, rng: random.Random) -> None:
    variants = (
        # Figure 14: alt added, existing alt forgotten
        f'<img src="/img/item{rng.randrange(90)}.jpg" alt="" '
        'width="120" alt="product photo">',
        '<div id="cart" onclick="openCart()" class="btn" '
        'onclick="trackClick()">Cart</div>',
        '<img src="/img/hero-2x.png" src="/img/hero.png" alt="hero">',
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_dm1(draft: PageDraft, rng: random.Random) -> None:
    variants = (
        # Figure 15: refresh redirect outside head
        '<meta http-equiv="Refresh" content="600; URL=/refresh">',
        '<meta http-equiv="X-UA-Compatible" content="IE=edge">',
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 1), rng.choice(variants)
    )


def _strip_url_items(items: list[str]) -> list[str]:
    """Remove head items that carry URLs (so DM2 variants stay disjoint).

    base elements are kept (they are not URL *use* for DM2_3, and another
    DM2 injector may have planted them), and stripping is skipped entirely
    when a base is already present — in that case a DM2_3-style pattern is
    wanted on this page and removing its preceding URL element would
    destroy it.
    """
    if any(item.startswith("<base") for item in items):
        return items
    return [
        item
        for item in items
        if "href=" not in item and "src=" not in item
    ]


def _inject_dm2_1(draft: PageDraft, rng: random.Random) -> None:
    # base outside head, placed as the first body element and with the
    # head's URL-bearing items removed, so that no URL-using element
    # precedes it and DM2_3 does not fire as well.
    draft.head_items = _strip_url_items(draft.head_items)
    draft.body_items.insert(0, f'<base href="https://cdn.{draft.domain}/">')


def _inject_dm2_2(draft: PageDraft, rng: random.Random) -> None:
    # two base elements, both in head, before any URL-using element
    draft.head_items = _strip_url_items(draft.head_items)
    draft.head_items.insert(1, '<base target="_self">')
    draft.head_items.insert(2, f'<base href="https://{draft.domain}/">')


def _inject_dm2_3(draft: PageDraft, rng: random.Random) -> None:
    # a single base, in head, but after a URL-using element (a stylesheet
    # link) — the most common real-world shape.  Inserted directly after
    # the last URL-bearing head item so that a co-injected broken-head
    # cascade (which appends its stray element at the end of the head)
    # does not additionally strand this base in the body.
    base = f'<base href="https://{draft.domain}/app/">'
    last_url_index = -1
    for index, item in enumerate(draft.head_items):
        # base elements do not count as URL *use* for the DM2_3 rule
        if ("href=" in item or "src=" in item) and not item.startswith("<base"):
            last_url_index = index
    if last_url_index == -1:
        draft.head_items.insert(
            0, '<link rel="stylesheet" href="/static/css/base.css">'
        )
        last_url_index = 0
    draft.head_items.insert(last_url_index + 1, base)


def _inject_hf_cascade(draft: PageDraft, rng: random.Random) -> None:
    """A stray element inside head: HF1 + HF2 + HF3 cascade."""
    variants = (
        '<div class="preload-modal" hidden><p>Loading...</p></div>',
        '<svg class="sprite" hidden><path d="M0 0h24v24H0z"></path></svg>',
        "<h1>Welcome</h1>",
    )
    draft.head_items.append(rng.choice(variants))


def _inject_hf1_late_head(draft: PageDraft, rng: random.Random) -> None:
    """Head content after </head>: HF1 without opening the body early."""
    variants = (
        '<link rel="stylesheet" href="/static/css/late.css">',
        '<meta name="robots" content="index,follow">',
        f'<title>{draft.domain}</title>',
    )
    # insert first: once any non-head content opens the body, head elements
    # are no longer rerouted and the HF1 signal would vanish
    draft.pre_body_items.insert(0, rng.choice(variants))


def _inject_hf2_no_body_tag(draft: PageDraft, rng: random.Random) -> None:
    """Content directly after head with the body tag omitted: HF2 only."""
    draft.explicit_body = False
    draft.pre_body_items.append(
        f'<img src="https://metrics.{draft.domain}/pixel.gif" alt="">'
    )


def _inject_hf3_second_body(draft: PageDraft, rng: random.Random) -> None:
    draft.body_items.insert(
        len(draft.body_items) // 2,
        f'<body class="theme-{rng.randrange(9)}" data-campaign="q{rng.randrange(4) + 1}">',
    )


def _inject_hf4(draft: PageDraft, rng: random.Random) -> None:
    variants = (
        # Figure 11: headline straight inside <tr>
        "<table><tr><strong>Cozi Organizer</strong></tr>"
        "<tr><td>The #1 organizing app for families</td>"
        '<td><img src="/img/organizer.png" alt="" align="right"></td>'
        "</tr></table>",
        '<table class="layout"><form action="/vote" method="post">'
        "<tr><td><button>Vote</button></td></tr></form></table>",
        "<table><caption>Plans</caption><tr><td>Basic</td></tr>"
        "<p>Contact sales for enterprise pricing.</p></table>",
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_hf5_1(draft: PageDraft, rng: random.Random) -> None:
    """SVG/MathML-only elements outside any foreign root (wrong ns: HTML)."""
    variants = (
        '<g class="icon"><path d="M4 4h16v16H4z"></path></g>',
        '<use href="#icon-cart"></use>',
        "<mrow><mi>x</mi><mo>+</mo><mn>1</mn></mrow>",
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_hf5_2(draft: PageDraft, rng: random.Random) -> None:
    """HTML breakout inside SVG (wrong ns: SVG)."""
    variants = (
        '<svg viewBox="0 0 24 24"><div class="overlay">beta</div></svg>',
        '<svg width="90" height="20"><rect width="81" height="20"></rect>'
        "<p>90% complete</p></svg>",
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_hf5_3(draft: PageDraft, rng: random.Random) -> None:
    """HTML breakout inside MathML (wrong ns: MathML)."""
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2),
        "<math><mrow><div>x + 1</div></mrow></math>",
    )


def _inject_de1(draft: PageDraft, rng: random.Random) -> None:
    """Figure 3: unterminated textarea swallows the rest of the page."""
    draft.body_items.append(
        '<form action="/feedback" method="post">'
        '<input type="submit" value="Send"><textarea name="message">'
    )
    draft.tail_items.append("<p>We usually reply within two days.</p>")
    draft.suppress_closing_tags = True


def _inject_de2(draft: PageDraft, rng: random.Random) -> None:
    """Unterminated select/option swallows the rest of the page."""
    draft.body_items.append(
        '<form action="/locale" method="get"><select name="country">'
        "<option>France<option>Germany"
    )
    draft.tail_items.append("<p id=private>internal note</p>")
    draft.suppress_closing_tags = True


def _inject_de3_1(draft: PageDraft, rng: random.Random) -> None:
    """Dangling-markup-shaped URL: newline and '<' inside a URL attribute."""
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2),
        '<a href="https://partner.example/redirect?target=\n'
        '<page>&amp;campaign=spring">spring deals</a>',
    )


def _inject_nl_url(draft: PageDraft, rng: random.Random) -> None:
    """Newline (but no '<') in a URL — measured by section 4.5 only."""
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2),
        f'<img src="https://cdn.{draft.domain}/assets/\nhero.jpg" alt="">',
    )


def _inject_de3_2(draft: PageDraft, rng: random.Random) -> None:
    """'<script' inside an attribute value (never on a nonced script,
    matching what section 4.5 found in the wild)."""
    variants = (
        '<iframe srcdoc="<script>parent.initWidget()</script>"></iframe>',
        '<div data-html="<script src=/w.js></script>" class="embed"></div>',
        '<input type="hidden" name="tpl" value="<script>render()</script>">',
    )
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2), rng.choice(variants)
    )


def _inject_de3_3(draft: PageDraft, rng: random.Random) -> None:
    """Newline in a target attribute (window-name leak shape, Figure 5)."""
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2),
        '<a href="/promo" target="promo\nwindow">open promo</a>',
    )


def _inject_de4(draft: PageDraft, rng: random.Random) -> None:
    """Figure 13 lines 1-2: copy-pasted nested form."""
    draft.body_items.insert(
        max(1, len(draft.body_items) - 2),
        '<form method="get" action="/search/">'
        '<form id="keywordsearch" name="keywordsearch" method="get" '
        'action="/search">'
        '<input name="q" type="text"><button>Search</button></form>',
    )


#: Registry of all injectors, keyed by name.  ``effects`` lists every
#: violation rule the injector triggers (verified by tests).
INJECTORS: dict[str, Injector] = {
    injector.name: injector
    for injector in (
        Injector("FB2", ("FB2",), _inject_fb2),
        Injector("FB1", ("FB1",), _inject_fb1),
        Injector("DM3", ("DM3",), _inject_dm3),
        Injector("DM1", ("DM1",), _inject_dm1),
        Injector("DM2_1", ("DM2_1",), _inject_dm2_1),
        Injector("DM2_2", ("DM2_2",), _inject_dm2_2),
        Injector("DM2_3", ("DM2_3",), _inject_dm2_3),
        Injector("HF_CASCADE", ("HF1", "HF2", "HF3"), _inject_hf_cascade),
        Injector("HF1_LATE", ("HF1",), _inject_hf1_late_head),
        Injector("HF2_NOBODY", ("HF2",), _inject_hf2_no_body_tag),
        Injector("HF3_SECOND", ("HF3",), _inject_hf3_second_body),
        Injector("HF4", ("HF4",), _inject_hf4),
        Injector("HF5_1", ("HF5_1",), _inject_hf5_1),
        Injector("HF5_2", ("HF5_2",), _inject_hf5_2),
        Injector("HF5_3", ("HF5_3",), _inject_hf5_3),
        Injector("DE1", ("DE1",), _inject_de1, terminal=True),
        Injector("DE2", ("DE2",), _inject_de2, terminal=True),
        Injector("DE3_1", ("DE3_1",), _inject_de3_1),
        Injector("NL_URL", (), _inject_nl_url),
        Injector("DE3_2", ("DE3_2",), _inject_de3_2),
        Injector("DE3_3", ("DE3_3",), _inject_de3_3),
        Injector("DE4", ("DE4",), _inject_de4),
    )
}
