"""The paper's published numbers, encoded as calibration targets.

Two uses:

1. The synthetic corpus generator (:mod:`repro.commoncrawl.corpusgen`)
   injects violations so that per-violation, per-year domain prevalence
   matches these targets — the workload substitution described in
   DESIGN.md.
2. The benchmark harness prints these values in the "paper" column next to
   what the pipeline measured, for every table and figure.

Sources, by constant:

- :data:`SNAPSHOTS` — Table 2 (domains per crawl, success rate, avg pages).
- :data:`UNION_PREVALENCE` — Figure 8 (per-violation % of domains over the
  whole study period).
- :data:`YEARLY_PREVALENCE` — Figures 16–21 (per-violation yearly trends;
  values are read off the published plots, so they are approximate by
  nature).
- :data:`OVERALL_VIOLATING` — Figure 9 (% domains with ≥1 violation).
- :data:`GROUP_TREND_ENDPOINTS` — Figure 10 / section 4.3 prose.
- :data:`AUTOFIX` — section 4.4 (68% → 37% violating, 46% fixed).
- :data:`MITIGATIONS` — section 4.5 (nonce-stealing and dangling-markup
  mitigation prevalence, plus West's 2017 Chrome telemetry).
"""
from __future__ import annotations

from dataclasses import dataclass

YEARS = (2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022)


@dataclass(frozen=True, slots=True)
class SnapshotSpec:
    """One row of Table 2."""

    name: str
    year: int
    domains: int          # domains present in the snapshot
    succeeded: int        # successfully analyzed domains
    avg_pages: float      # average analyzed pages per domain (cap 100)


#: Table 2, verbatim.
SNAPSHOTS: tuple[SnapshotSpec, ...] = (
    SnapshotSpec("CC-MAIN-2015-14", 2015, 21068, 20579, 78.8),
    SnapshotSpec("CC-MAIN-2016-07", 2016, 21156, 20705, 77.9),
    SnapshotSpec("CC-MAIN-2017-04", 2017, 22311, 22038, 87.3),
    SnapshotSpec("CC-MAIN-2018-05", 2018, 22504, 22271, 88.3),
    SnapshotSpec("CC-MAIN-2019-04", 2019, 23049, 22830, 90.1),
    SnapshotSpec("CC-MAIN-2020-05", 2020, 22923, 22736, 89.7),
    SnapshotSpec("CC-MAIN-2021-04", 2021, 22843, 22668, 89.8),
    SnapshotSpec("CC-MAIN-2022-05", 2022, 22583, 22429, 89.7),
)

SNAPSHOT_BY_YEAR = {spec.year: spec for spec in SNAPSHOTS}

#: Paper dataset sizes (section 4.1).
TRANCO_DATASET_SIZE = 24915     # unique domains on every Tranco list ≤ 50k
FOUND_ON_CC = 24050             # found at least once on Common Crawl
TOTAL_ANALYZED_DOMAINS = 23983  # successfully analyzed at least once
TOTAL_ANALYZED_PAGES = 14_716_731
DOMAINS_WITH_ANY_VIOLATION = 22187  # 92% over all eight years

#: Figure 8 — fraction of the 23,983 domains with the violation at least
#: once during the whole study period.
UNION_PREVALENCE: dict[str, float] = {
    "FB2": 0.7854, "DM3": 0.7514, "FB1": 0.4284, "HF4": 0.3964,
    "HF1": 0.3613, "HF2": 0.3281, "HF3": 0.2852, "DM1": 0.2102,
    "DM2_3": 0.1328, "HF5_1": 0.1012, "DE4": 0.0703, "DE3_2": 0.0525,
    "DE3_1": 0.0446, "DM2_1": 0.0179, "DM2_2": 0.0131, "HF5_2": 0.0122,
    "DE3_3": 0.0093, "DE2": 0.0027, "DE1": 0.0010, "HF5_3": 0.0001,
}

#: Figure 8 absolute domain counts (for the printed table).
UNION_COUNTS: dict[str, int] = {
    "FB2": 18837, "DM3": 18021, "FB1": 10274, "HF4": 9506, "HF1": 8666,
    "HF2": 7870, "HF3": 6839, "DM1": 5042, "DM2_3": 3186, "HF5_1": 2428,
    "DE4": 1686, "DE3_2": 1259, "DE3_1": 1070, "DM2_1": 430, "DM2_2": 315,
    "HF5_2": 293, "DE3_3": 222, "DE2": 65, "DE1": 25, "HF5_3": 3,
}

#: Figures 16–21 — yearly fraction of analyzed domains violating each rule.
#: Read off the published plots (linearly interpolated where the plot is
#: smooth); anchored to exact numbers where the text gives them (DE3_1 and
#: DE3_2 in section 4.5).
YEARLY_PREVALENCE: dict[str, tuple[float, ...]] = {
    #        2015    2016    2017    2018    2019    2020    2021    2022
    "FB2":  (0.500,  0.495,  0.505,  0.480,  0.470,  0.455,  0.440,  0.425),
    "FB1":  (0.220,  0.215,  0.220,  0.200,  0.190,  0.175,  0.165,  0.150),
    "DM3":  (0.440,  0.435,  0.440,  0.430,  0.425,  0.415,  0.410,  0.405),
    "DM1":  (0.100,  0.098,  0.100,  0.094,  0.090,  0.085,  0.080,  0.075),
    "DM2_1": (0.009, 0.0085, 0.008, 0.0075, 0.007, 0.0068, 0.0065, 0.006),
    "DM2_2": (0.006, 0.0058, 0.0056, 0.0054, 0.0052, 0.005, 0.0048, 0.0045),
    "DM2_3": (0.065, 0.063,  0.062,  0.058,  0.056,  0.053,  0.051,  0.049),
    "HF1":  (0.180,  0.175,  0.170,  0.155,  0.145,  0.135,  0.125,  0.120),
    "HF2":  (0.150,  0.145,  0.140,  0.130,  0.125,  0.115,  0.110,  0.100),
    "HF3":  (0.130,  0.125,  0.120,  0.110,  0.105,  0.095,  0.090,  0.085),
    "HF4":  (0.250,  0.240,  0.235,  0.210,  0.195,  0.180,  0.165,  0.150),
    "HF5_1": (0.030, 0.033,  0.036,  0.040,  0.043,  0.046,  0.048,  0.050),
    "HF5_2": (0.005, 0.005,  0.0055, 0.0055, 0.006,  0.006,  0.0065, 0.0065),
    "HF5_3": (0.00003, 0.00003, 0.00004, 0.00004, 0.00004, 0.00005, 0.00005, 0.00005),
    "DE1":  (0.0004, 0.0004, 0.0004, 0.00035, 0.00035, 0.0003, 0.0003, 0.0003),
    "DE2":  (0.0010, 0.0010, 0.0010, 0.0009, 0.0009, 0.0009, 0.0008, 0.0008),
    "DE3_1": (0.0137, 0.0130, 0.0120, 0.0110, 0.0100, 0.0090, 0.0080, 0.0076),
    "DE3_2": (0.0150, 0.0148, 0.0150, 0.0145, 0.0145, 0.0142, 0.0140, 0.0140),
    "DE3_3": (0.0040, 0.0038, 0.0036, 0.0034, 0.0032, 0.0030, 0.0029, 0.0028),
    "DE4":  (0.0200, 0.0200, 0.0195, 0.0190, 0.0190, 0.0185, 0.0180, 0.0180),
}

#: Figure 9 — % of analyzed domains with at least one violation, per year.
OVERALL_VIOLATING: dict[int, float] = {
    2015: 0.7431, 2016: 0.7357, 2017: 0.7485, 2018: 0.7168,
    2019: 0.7171, 2020: 0.7029, 2021: 0.6922, 2022: 0.6838,
}

#: Problem groups (Table 1) and their members.
GROUPS: dict[str, tuple[str, ...]] = {
    "DE": ("DE1", "DE2", "DE3_1", "DE3_2", "DE3_3", "DE4"),
    "DM": ("DM1", "DM2_1", "DM2_2", "DM2_3", "DM3"),
    "HF": ("HF1", "HF2", "HF3", "HF4", "HF5_1", "HF5_2", "HF5_3"),
    "FB": ("FB1", "FB2"),
}

#: Figure 10 endpoints quoted in section 4.3 (2015 → 2022, fractions).
GROUP_TREND_ENDPOINTS: dict[str, tuple[float, float]] = {
    "FB": (0.52, 0.43),
    "DM": (0.47, 0.44),
    "HF": (0.42, 0.33),
    "DE": (0.05, 0.04),
}

#: Section 4.4 — auto-fix estimate.
AUTOFIX = {
    "violating_2022": 15337,            # 68% of 2022 domains
    "violating_after_autofix": 8298,    # 37%
    "fraction_fixed": 0.46,
    "auto_fixable_rules": ("FB1", "FB2", "DM1", "DM2_1", "DM2_2", "DM2_3", "DM3"),
}

#: Section 4.5 — existing mitigations.
MITIGATIONS = {
    # '<script' inside an attribute value (nonce-stealing mitigation scope)
    "script_in_attr_2015": (299, 0.015),
    "script_in_attr_2022": (312, 0.014),
    # URL with a newline (not yet blocked)
    "nl_in_url_2015": (2314, 0.112),
    "nl_in_url_2022": (2469, 0.110),
    # URL with newline AND '<' (blocked by Chromium since 2017)
    "nl_lt_in_url_2015": (281, 0.0137),
    "nl_lt_in_url_2022": (170, 0.0076),
    # West's 2017 Chrome telemetry, quoted for comparison
    "west2017_pageviews_nl": 0.004708,
    "west2017_pageviews_nl_lt": 0.000189,
}

#: Additional corpus features that are not Table-1 violations but are
#: measured in section 4.5 / 4.2: URL-with-newline-only, and benign
#: math/svg element usage (math domains grew 42 → 224).
EXTRA_FEATURE_YEARLY: dict[str, tuple[float, ...]] = {
    # newline in URL without '<' = nl_in_url minus DE3_1
    "NL_URL": (0.0983, 0.0990, 0.1000, 0.1010, 0.1015, 0.1020, 0.1022, 0.1024),
    # benign <math> usage (42/24050 ≈ 0.17% → 224/24050 ≈ 0.93%)
    "MATH_USE": (0.0017, 0.0023, 0.0033, 0.0043, 0.0055, 0.0068, 0.0081, 0.0093),
    # benign inline SVG usage (common and growing)
    "SVG_USE": (0.12, 0.15, 0.19, 0.24, 0.28, 0.33, 0.37, 0.40),
}

#: Dynamic-content pre-study (section 5.1): >60% of top-1k sites had at
#: least one violation in dynamically loaded fragments.
DYNAMIC_PRESTUDY_VIOLATING = 0.60


def yearly(rule: str, year: int) -> float:
    """Target fraction of domains violating ``rule`` in ``year``."""
    return YEARLY_PREVALENCE[rule][YEARS.index(year)]


def union(rule: str) -> float:
    """Target fraction of domains violating ``rule`` at least once ever."""
    return UNION_PREVALENCE[rule]


ALL_RULES: tuple[str, ...] = tuple(UNION_PREVALENCE)
