"""Benchmark regression tracking: machine-readable perf snapshots.

The paper's crawl rate ("nearly a thousand pages per minute from one IP",
section 3.3) makes per-page parse cost the study's throughput floor, so
the repo records its perf trajectory as data, not folklore: ``repro-study
bench`` runs the parser-substrate benchmarks and writes a ``BENCH_*.json``
snapshot (tokens/sec, chars/sec, pages/sec per case, plus per-rule check
costs).  Committed snapshots under ``reports/`` give every perf PR a
before/after table (see EXPERIMENTS.md); the CI bench-smoke stage runs one
quick iteration so a syntactically-broken benchmark fails the build, not
the next perf investigation.

Timing uses best-of-``repeat`` over ``number`` inner iterations (the
``timeit`` discipline: the *minimum* is the least-noise estimate of the
true cost; means smear scheduler jitter into the signal).  Snapshots
deliberately contain no wall-clock timestamp — two runs of the same code
should produce comparable files; label provenance with ``--label``.

The fixture pages mirror ``benchmarks/bench_parser.py``: a clean template
page, a violation-injected dirty page (the states the paper's violations
exercise), a PLAINTEXT-heavy page and a script-data-escape-heavy page
(the content models the chunked fast path targets), and a large many-
section document.  Only :mod:`repro` absolute imports here, so the module
also runs against an older checkout for before/after numbers (copy the
file outside ``src/`` first — running it by path would put ``src/repro``
on ``sys.path`` and shadow the stdlib ``html`` package)::

    cp src/repro/bench.py /tmp/bench_snapshot.py
    PYTHONPATH=old/src python /tmp/bench_snapshot.py --output before.json
"""
from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import Checker
from repro.html import parse
from repro.html.bytes_tokenizer import BytesTokenizer
from repro.html.tokenizer import Tokenizer

SCHEMA = "repro-bench/1"

#: injected violations for the dirty fixture (matches bench_parser.py)
DIRTY_INJECTORS = ("FB2", "DM3", "HF4", "HF_CASCADE", "DE3_2")


# ------------------------------------------------------------------ fixtures


def clean_page() -> str:
    return build_page(
        "bench.example", "/", random.Random(7), use_svg=True
    ).render()


def dirty_page() -> str:
    draft = build_page("bench.example", "/", random.Random(7))
    for name in DIRTY_INJECTORS:
        INJECTORS[name].apply(draft, random.Random(8))
    return draft.render()


def plaintext_page() -> str:
    """A page ending in a large PLAINTEXT block (pure text-run scanning)."""
    body = "".join(
        f"line {i}: plain text with <angle brackets> &amp; ampersands\n"
        for i in range(120)
    )
    return (
        "<!DOCTYPE html><html><head><title>pt</title></head>"
        f"<body><p>intro</p><plaintext>{body}"
    )


def script_escape_page() -> str:
    """A page dominated by script-data escaped/double-escaped content."""
    chunk = (
        "<script><!--\n"
        "  var a = 1 < 2, b = {};\n"
        "  document.write('<script>inner()<\\/script>');\n"
        "  // dashes -- inside -- comment-like text\n"
        "--></script>\n"
    )
    return (
        "<!DOCTYPE html><html><head><title>esc</title></head><body>"
        + chunk * 40
        + "</body></html>"
    )


def large_page() -> str:
    sections = "".join(
        f"<section><h2>S{i}</h2><p>paragraph {i} with <a href='/l{i}'>links"
        f"</a> &amp; entities</p></section>"
        for i in range(300)
    )
    return (
        "<!DOCTYPE html><html><head><title>big</title></head>"
        f"<body>{sections}</body></html>"
    )


#: case name -> (kind, fixture); tokenizer cases measure pure scanning,
#: tokenizer_bytes cases the decode-free bytes-domain scan over the same
#: fixture's UTF-8 encoding (what the crawl pipeline actually runs: raw
#: payload in, lazy text out), parse cases the full tree-construction
#: pipeline
CASES: dict[str, tuple[str, Callable[[], str]]] = {
    "tokenizer_clean": ("tokenize", clean_page),
    "tokenizer_dirty": ("tokenize", dirty_page),
    "tokenizer_plaintext": ("tokenize", plaintext_page),
    "tokenizer_script_escape": ("tokenize", script_escape_page),
    "tokenizer_bytes_clean": ("tokenize_bytes", clean_page),
    "tokenizer_bytes_dirty": ("tokenize_bytes", dirty_page),
    "tokenizer_bytes_large": ("tokenize_bytes", large_page),
    "tokenizer_bytes_plaintext": ("tokenize_bytes", plaintext_page),
    "tokenizer_bytes_script_escape": ("tokenize_bytes", script_escape_page),
    "parse_clean": ("parse", clean_page),
    "parse_dirty": ("parse", dirty_page),
    "parse_large": ("parse", large_page),
}


# -------------------------------------------------------------------- timing


def best_seconds(func: Callable[[], object], *, repeat: int, number: int) -> float:
    """Minimum per-call seconds over ``repeat`` rounds of ``number`` calls."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        for _ in range(max(1, number)):
            func()
        elapsed = (time.perf_counter() - start) / max(1, number)
        if elapsed < best:
            best = elapsed
    return best


def _token_count(text: str) -> int:
    return sum(1 for _token in Tokenizer(text))


def _bytes_token_count(data: bytes) -> int:
    """Drain the bytes tokenizer without touching lazy text (the tree
    builder's hot loop reads tag names, not every character run)."""
    return sum(1 for _token in BytesTokenizer(data))


@dataclass(slots=True)
class BenchConfig:
    repeat: int = 5
    number: int = 20
    rules: bool = True
    pipeline: bool = True
    label: str = ""
    #: shrink the multi-snapshot incremental case for CI smoke runs
    quick: bool = False


# ------------------------------------------------- miniature pipeline case

#: miniature end-to-end corpus: small enough for the CI smoke, large
#: enough that every stage (CDX query, WARC fetch, check, SQLite store)
#: registers nonzero time
PIPELINE_BENCH_DOMAINS = 8
PIPELINE_BENCH_MAX_PAGES = 2
PIPELINE_BENCH_SEED = 11


def _staged_pipeline_run(root, domains) -> tuple[dict, int]:
    """One sequential end-to-end pass with per-stage timing.

    Mirrors ``benchmarks/bench_pipeline_throughput.py``'s attribution
    split: metadata/index time vs WARC fetch vs check vs store (store
    includes the per-snapshot commit), so the smoke snapshot carries the
    same per-stage fields the committed before/after pairs report.
    """
    from repro.commoncrawl import CommonCrawlClient
    from repro.pipeline import Storage
    from repro.pipeline.checker_stage import check_page
    from repro.pipeline.crawler import fetch_pages
    from repro.pipeline.metadata import collect_metadata

    stages = {"index": 0.0, "fetch": 0.0, "check": 0.0, "store": 0.0}
    try:
        # what the production pipeline runs: DOM-free streaming checks,
        # with taint fallback to the materialized walk on reordered pages
        checker = Checker(mode="stream")
    except TypeError:
        checker = Checker()  # pre-stream checkout (before/after baselines)
    pages_stored = 0
    client = CommonCrawlClient(root)
    with Storage(":memory:") as storage:
        domain_ids = {
            name: storage.add_domain(name, rank) for name, rank in domains
        }
        for collection in client.collections():
            snapshot_row_id = storage.add_snapshot(collection.id, collection.year)
            for name, _rank in domains:
                started = time.perf_counter()
                metadata = collect_metadata(
                    client, collection.id, name,
                    max_pages=PIPELINE_BENCH_MAX_PAGES,
                )
                stages["index"] += time.perf_counter() - started

                started = time.perf_counter()
                pages = list(fetch_pages(client, metadata))
                stages["fetch"] += time.perf_counter() - started

                started = time.perf_counter()
                checked = [check_page(page, checker) for page in pages]
                stages["check"] += time.perf_counter() - started

                started = time.perf_counter()
                if metadata.found:
                    analyzed = 0
                    for page, result in zip(pages, checked):
                        page_row_id = storage.add_page(
                            snapshot_row_id, domain_ids[name], page.url,
                            utf8=result.utf8,
                            checked=result.report is not None,
                            declared_encoding=result.declared_encoding,
                        )
                        if result.report is not None:
                            analyzed += 1
                            if result.report.counts:
                                storage.add_findings(
                                    page_row_id, dict(result.report.counts)
                                )
                    storage.set_domain_status(
                        snapshot_row_id, domain_ids[name], found=True,
                        analyzed=analyzed > 0, pages=analyzed,
                    )
                    pages_stored += len(pages)
                else:
                    storage.set_domain_status(
                        snapshot_row_id, domain_ids[name],
                        found=False, analyzed=False, pages=0,
                    )
                stages["store"] += time.perf_counter() - started
            started = time.perf_counter()
            storage.commit()
            stages["store"] += time.perf_counter() - started
    closer = getattr(client, "close", None)
    if closer is not None:
        closer()
    # fraction of checked pages that needed the full DOM (stream taints
    # plus DOM-mode parses); 0.0 on a pre-stream checkout's counters
    checked_pages = getattr(checker, "pages_checked", 0)
    if checker.__dict__.get("mode") == "stream" and checked_pages:
        materialized = checker.stream_fallbacks / checked_pages
    else:
        materialized = 1.0 if checked_pages else 0.0
    return stages, pages_stored, materialized


def run_pipeline_case(config: BenchConfig) -> dict:
    """Best-of-``repeat`` miniature end-to-end pipeline measurement."""
    import tempfile

    from repro.commoncrawl import ArchiveBuilder, CorpusConfig, CorpusPlanner

    corpus = CorpusConfig(
        num_domains=PIPELINE_BENCH_DOMAINS,
        max_pages=PIPELINE_BENCH_MAX_PAGES,
        seed=PIPELINE_BENCH_SEED,
        years=(2022,),
    )
    plan = CorpusPlanner(corpus).plan()
    domains = [(name, rank) for name, rank in plan.domains]
    best_stages: dict | None = None
    best_total = float("inf")
    pages = 0
    materialized = 0.0
    with tempfile.TemporaryDirectory() as root:
        ArchiveBuilder(root).build(plan)
        for _ in range(max(1, config.repeat)):
            stages, pages, materialized = _staged_pipeline_run(root, domains)
            total = sum(stages.values())
            if total < best_total:
                best_total = total
                best_stages = stages
    assert best_stages is not None
    return {
        "domains": len(domains),
        "pages": pages,
        "best_seconds": best_total,
        "pages_per_second": pages / best_total if best_total else 0.0,
        "stages": best_stages,
        # stream-mode taint rate: what fraction of pages still paid for a
        # materialized DOM (1.0 = every page, i.e. pure DOM mode)
        "dom_materialized_ratio": materialized,
    }


# ----------------------------------- incremental dedup pipeline case

#: multi-snapshot corpus for the dedup-ingest case: enough yearly
#: snapshots that carry-forward dominates, a controlled fraction of
#: byte-identical pages per domain-year (the knob EXPERIMENTS.md sweeps)
INCREMENTAL_BENCH_DOMAINS = 8
INCREMENTAL_BENCH_MAX_PAGES = 20
INCREMENTAL_BENCH_OVERLAP = 0.9
INCREMENTAL_BENCH_SEED = 11


def run_incremental_case(config: BenchConfig) -> dict:
    """Full path vs dedup ingest on a multi-snapshot overlap corpus.

    Both paths run through :func:`repro.incremental.execute_study_run`
    (the timing compared is the runner's own ``total``, excluding archive
    digesting), so the reported speedup is exactly what ``repro-study run
    --incremental`` buys.  ``aggregate_parity`` asserts the dedup path's
    canonical aggregate dump is byte-identical to the full path's — a
    speedup that changed results would be a bug, not a win.
    """
    import tempfile

    from repro.commoncrawl import ArchiveBuilder, CorpusConfig, CorpusPlanner
    from repro.commoncrawl import calibration as cal
    from repro.incremental import DedupConfig, execute_study_run

    years = cal.YEARS[-3:] if config.quick else cal.YEARS
    max_pages = (
        PIPELINE_BENCH_MAX_PAGES if config.quick else INCREMENTAL_BENCH_MAX_PAGES
    )
    corpus = CorpusConfig(
        num_domains=4 if config.quick else INCREMENTAL_BENCH_DOMAINS,
        max_pages=max_pages,
        seed=INCREMENTAL_BENCH_SEED,
        years=years,
        overlap_fraction=INCREMENTAL_BENCH_OVERLAP,
    )
    plan = CorpusPlanner(corpus).plan()
    domains = [(name, rank) for name, rank in plan.domains]
    best = {"full": float("inf"), "incremental": float("inf")}
    digests: dict[str, str] = {}
    counters: dict = {}
    pages = 0
    with tempfile.TemporaryDirectory() as root:
        ArchiveBuilder(root).build(plan)
        for _ in range(max(1, config.repeat)):
            for mode, dedup in (("full", None), ("incremental", DedupConfig())):
                manifest, _stats = execute_study_run(
                    archive_root=root,
                    db_path=":memory:",
                    domains=domains,
                    max_pages=max_pages,
                    seed=INCREMENTAL_BENCH_SEED,
                    dedup=dedup,
                )
                seconds = manifest["timings"]["total"]
                if seconds < best[mode]:
                    best[mode] = seconds
                digests[mode] = manifest["results"]["aggregate_sha256"]
                if mode == "full":
                    pages = manifest["results"]["pages_checked"]
                else:
                    counters = manifest["dedup_counters"] or {}
    return {
        "domains": len(domains),
        "snapshots": len(years),
        "overlap_fraction": INCREMENTAL_BENCH_OVERLAP,
        "pages": pages,
        "full_seconds": best["full"],
        "incremental_seconds": best["incremental"],
        "speedup": (
            best["full"] / best["incremental"] if best["incremental"] else 0.0
        ),
        "aggregate_parity": digests["full"] == digests["incremental"],
        "dedup": counters,
    }


def run_benchmarks(config: BenchConfig) -> dict:
    """Run every case (and per-rule costs) and return the snapshot dict."""
    snapshot: dict = {
        "schema": SCHEMA,
        "label": config.label,
        "config": {"repeat": config.repeat, "number": config.number},
        "cases": {},
        "rules": {},
    }
    for name, (kind, fixture) in CASES.items():
        text = fixture()
        decoded_ratio = None
        if kind == "tokenize":
            tokens = _token_count(text)
            seconds = best_seconds(
                lambda t=text: _token_count(t),
                repeat=config.repeat, number=config.number,
            )
        elif kind == "tokenize_bytes":
            data = text.encode("utf-8")
            tokens = _bytes_token_count(data)
            seconds = best_seconds(
                lambda d=data: _bytes_token_count(d),
                repeat=config.repeat, number=config.number,
            )
            # fraction of payload bytes the drain actually decoded: the
            # laziness headline (1.0 would mean the decode-free scan is
            # decoding everything anyway)
            probe = BytesTokenizer(data)
            for _token in probe:
                pass
            decoded_ratio = (
                probe.decoded_bytes / probe.input_bytes
                if probe.input_bytes else 0.0
            )
        else:
            tokens = _token_count(text)
            seconds = best_seconds(
                lambda t=text: parse(t),
                repeat=config.repeat, number=config.number,
            )
            # stage attribution for perf work: a pure tokenizer drain over
            # the same fixture bounds the scan cost from below, so the
            # difference is what tree construction (plus token plumbing)
            # adds on top
            tokenize_seconds = best_seconds(
                lambda t=text: _token_count(t),
                repeat=config.repeat, number=config.number,
            )
            tree_build_seconds = max(0.0, seconds - tokenize_seconds)
        snapshot["cases"][name] = {
            "kind": kind,
            "chars": len(text),
            "tokens": tokens,
            "best_seconds": seconds,
            "chars_per_second": len(text) / seconds if seconds else 0.0,
            "tokens_per_second": tokens / seconds if seconds else 0.0,
            "pages_per_second": 1.0 / seconds if seconds else 0.0,
        }
        if kind == "parse":
            snapshot["cases"][name]["tokenize_seconds"] = tokenize_seconds
            snapshot["cases"][name]["tree_build_seconds"] = tree_build_seconds
        if decoded_ratio is not None:
            snapshot["cases"][name]["bytes_decoded_ratio"] = decoded_ratio
    if config.rules:
        result = parse(dirty_page())
        for rule in Checker().rules:
            seconds = best_seconds(
                lambda r=rule: r.check(result),
                repeat=config.repeat, number=config.number,
            )
            snapshot["rules"][rule.id] = {"best_seconds": seconds}
    if config.pipeline:
        snapshot["pipeline"] = run_pipeline_case(config)
        try:
            snapshot["pipeline"]["dedup"] = run_incremental_case(config)
        except ImportError:
            pass  # pre-incremental checkout (before/after baseline runs)
    return snapshot


def render_snapshot(snapshot: dict) -> str:
    """Human-readable table of one snapshot."""
    lines = ["repro-study bench"]
    if snapshot.get("label"):
        lines[0] += f" [{snapshot['label']}]"
    lines.append("=" * len(lines[0]))
    lines.append(
        f"{'case':<24} {'ms/op':>9} {'Mchars/s':>9} "
        f"{'ktokens/s':>10} {'pages/s':>9}"
    )
    for name, case in snapshot["cases"].items():
        line = (
            f"{name:<24} {case['best_seconds'] * 1e3:>9.3f} "
            f"{case['chars_per_second'] / 1e6:>9.2f} "
            f"{case['tokens_per_second'] / 1e3:>10.1f} "
            f"{case['pages_per_second']:>9.1f}"
        )
        if "bytes_decoded_ratio" in case:
            line += f"  decoded {case['bytes_decoded_ratio']:.1%}"
        if "tree_build_seconds" in case:
            line += (
                f"  tok {case['tokenize_seconds'] * 1e3:.2f}ms"
                f" + tree {case['tree_build_seconds'] * 1e3:.2f}ms"
            )
        lines.append(line)
    if snapshot.get("pipeline"):
        pipeline = snapshot["pipeline"]
        stage_text = ", ".join(
            f"{stage} {seconds * 1e3:.1f}ms"
            for stage, seconds in pipeline["stages"].items()
        )
        lines.append(
            f"pipeline e2e: {pipeline['pages']} pages over "
            f"{pipeline['domains']} domains in "
            f"{pipeline['best_seconds'] * 1e3:.1f}ms "
            f"({pipeline['pages_per_second']:.0f} pages/s; {stage_text}; "
            f"DOM materialized on "
            f"{pipeline.get('dom_materialized_ratio', 1.0):.0%} of pages)"
        )
        dedup = pipeline.get("dedup")
        if dedup:
            counters = dedup["dedup"]
            lines.append(
                f"pipeline incremental: {dedup['snapshots']} snapshots x "
                f"{dedup['domains']} domains @ "
                f"{dedup['overlap_fraction']:.0%} overlap: full "
                f"{dedup['full_seconds'] * 1e3:.1f}ms -> incremental "
                f"{dedup['incremental_seconds'] * 1e3:.1f}ms "
                f"({dedup['speedup']:.1f}x; carried "
                f"{counters.get('carried', 0)}/{counters.get('pages', 0)} "
                f"pages; parity={dedup['aggregate_parity']})"
            )
    if snapshot["rules"]:
        total = sum(r["best_seconds"] for r in snapshot["rules"].values())
        slowest = sorted(
            snapshot["rules"].items(),
            key=lambda item: item[1]["best_seconds"],
            reverse=True,
        )[:5]
        lines.append(
            f"rule checks on parse_dirty: {len(snapshot['rules'])} rules, "
            f"{total * 1e3:.3f} ms total; slowest: "
            + ", ".join(
                f"{rule_id} {r['best_seconds'] * 1e6:.0f}us"
                for rule_id, r in slowest
            )
        )
    return "\n".join(lines)


def write_snapshot(snapshot: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="parser-substrate benchmarks with JSON snapshot output"
    )
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the BENCH_*.json snapshot here")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timing rounds; the minimum wins (default 5)")
    parser.add_argument("--number", type=int, default=20,
                        help="inner iterations per round (default 20)")
    parser.add_argument("--quick", action="store_true",
                        help="single iteration of everything (CI smoke)")
    parser.add_argument("--no-rules", action="store_true",
                        help="skip the per-rule cost measurements")
    parser.add_argument("--no-pipeline", action="store_true",
                        help="skip the miniature end-to-end pipeline case")
    parser.add_argument("--label", default="",
                        help="provenance label stored in the snapshot")
    args = parser.parse_args(argv)
    config = BenchConfig(
        repeat=1 if args.quick else args.repeat,
        number=1 if args.quick else args.number,
        rules=not args.no_rules,
        pipeline=not args.no_pipeline,
        label=args.label,
        quick=args.quick,
    )
    snapshot = run_benchmarks(config)
    print(render_snapshot(snapshot))
    if args.output:
        write_snapshot(snapshot, Path(args.output))
        print(f"snapshot written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
