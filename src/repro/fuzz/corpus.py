"""The replayable regression corpus.

Every bug the fuzzing harness surfaces is fixed and its *minimized* input
committed under ``tests/fuzz_corpus/`` as a small JSON file: the oracle to
run, the bucket the input used to land in (for the record), the input
bytes (base64, since fuzzed inputs are rarely valid UTF-8), and a note
describing the original failure.  Tier-1 replays every entry through its
oracle on every run — the corpus is the harness's long-term memory, the
same role the html5lib-tests fixtures play for the conformance suite.
"""
from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from .oracles import BATCH_ORACLES, ORACLES, SkipInput


class CorpusFormatError(ValueError):
    """Raised when a corpus file does not parse."""


@dataclass(slots=True)
class CorpusEntry:
    """One minimized regression input."""

    oracle: str
    data: bytes
    #: the (oracle, kind, frame) bucket the input originally crashed in
    bucket: tuple[str, str, str] = ("", "", "")
    #: human-readable description of the original failure
    note: str = ""
    #: ``seed:iteration`` of the fuzz execution that found it
    origin: str = ""
    source: Path | None = field(default=None, compare=False)

    @property
    def digest(self) -> str:
        return hashlib.sha1(self.data).hexdigest()[:10]


def entry_filename(entry: CorpusEntry) -> str:
    slug = "-".join(part for part in entry.bucket if part) or entry.oracle
    slug = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in slug.lower()
    )
    return f"{slug}-{entry.digest}.json"


def save_entry(directory: str | Path, entry: CorpusEntry) -> Path:
    """Write one corpus entry; returns the path (stable per content)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_filename(entry)
    payload = {
        "oracle": entry.oracle,
        "bucket": list(entry.bucket),
        "note": entry.note,
        "origin": entry.origin,
        "data_base64": base64.b64encode(entry.data).decode("ascii"),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_entry(path: str | Path) -> CorpusEntry:
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        data = base64.b64decode(payload["data_base64"])
        bucket = tuple(payload.get("bucket", ("", "", "")))
        if len(bucket) != 3:
            raise ValueError(f"bucket must have 3 parts, got {len(bucket)}")
        return CorpusEntry(
            oracle=payload["oracle"],
            data=data,
            bucket=bucket,  # type: ignore[arg-type]
            note=payload.get("note", ""),
            origin=payload.get("origin", ""),
            source=path,
        )
    except (KeyError, ValueError, TypeError, binascii.Error) as exc:
        raise CorpusFormatError(f"{path}: {exc}") from exc


def load_corpus(directory: str | Path) -> list[CorpusEntry]:
    """All entries under ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_entry(path) for path in sorted(directory.glob("*.json"))]


def replay_entry(entry: CorpusEntry) -> None:
    """Run the entry's oracle on its input; raises on regression.

    A :class:`SkipInput` outcome counts as a pass — the regression being
    guarded is a crash or property violation, and "the oracle now
    declines this input" means the original failure is gone.
    """
    if entry.oracle in ORACLES:
        try:
            ORACLES[entry.oracle].run(entry.data)
        except SkipInput:
            pass
        return
    if entry.oracle in BATCH_ORACLES:
        try:
            BATCH_ORACLES[entry.oracle].run_batch([entry.data])
        except SkipInput:
            pass
        return
    raise CorpusFormatError(f"unknown oracle {entry.oracle!r}")
