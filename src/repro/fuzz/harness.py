"""The deterministic fuzzing driver behind ``repro-study fuzz``.

One run is a pure function of :class:`FuzzConfig`: iteration ``i`` seeds
its own ``random.Random(f"{seed}:{i}")``, generates an input, mutates it,
and feeds it to every selected per-input oracle.  Failures are bucketed
(:mod:`repro.fuzz.bucketing`), one exemplar per bucket is kept, and after
the loop each exemplar is greedily minimized while preserving its bucket.
Batch oracles (sequential-vs-parallel equality) run once over a
deterministic sample of the generated corpus.

There is deliberately no wall-clock anywhere in this module — time-boxing
is the caller's job (CI passes a small ``--iterations``), and the report
must be bit-identical across runs so "same seed, same buckets" is itself
a testable invariant.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field

from .bucketing import Bucket, bucket_for
from .generator import generate
from .minimize import minimize
from .mutators import mutate
from .oracles import BATCH_ORACLES, ORACLES, SkipInput

#: every oracle, per-input first, in stable order
DEFAULT_ORACLES: tuple[str, ...] = tuple(sorted(ORACLES)) + tuple(
    sorted(BATCH_ORACLES)
)


@dataclass(slots=True)
class FuzzConfig:
    """Parameters of one fuzzing session."""

    seed: int = 1
    iterations: int = 1000
    oracles: tuple[str, ...] = DEFAULT_ORACLES
    minimize: bool = True
    #: predicate-call budget per finding during minimization
    minimize_attempts: int = 384
    max_mutations: int = 3
    #: corpus sample size for the batch (parallel) oracles
    parallel_sample: int = 24
    parallel_workers: int = 2


@dataclass(slots=True)
class FuzzFinding:
    """One bucket's exemplar."""

    bucket: Bucket
    iteration: int          # first iteration that hit the bucket
    data: bytes             # first failing input
    minimized: bytes        # after greedy minimization (== data when off)
    count: int = 1          # executions that landed in this bucket
    message: str = ""       # str() of the first exception


@dataclass(slots=True)
class FuzzReport:
    """Outcome of one session, comparable across runs for determinism."""

    seed: int
    iterations: int
    oracles: tuple[str, ...]
    executions: int = 0
    skips: int = 0
    oracle_executions: dict[str, int] = field(default_factory=dict)
    findings: list[FuzzFinding] = field(default_factory=list)

    def bucket_summary(self) -> tuple[str, ...]:
        """Stable per-bucket lines; two runs of the same config must
        produce equal summaries."""
        return tuple(
            f"{finding.bucket.label} x{finding.count}"
            for finding in sorted(
                self.findings, key=lambda f: f.bucket.label
            )
        )


def run_oracle_bucket(oracle_name: str, data: bytes) -> Bucket | None:
    """Run one per-input oracle; the bucket it fails in, else None.

    A skipped input (e.g. a minimization candidate that mutated into
    non-UTF-8) lands in no bucket, same as a pass.
    """
    try:
        ORACLES[oracle_name].run(data)
    except SkipInput:
        return None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # bucket *everything* else, incl. RecursionError
        return bucket_for(oracle_name, exc)
    return None


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Execute one deterministic fuzzing session."""
    unknown = [
        name for name in config.oracles
        if name not in ORACLES and name not in BATCH_ORACLES
    ]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; "
            f"available: {', '.join(DEFAULT_ORACLES)}"
        )
    per_input = [name for name in config.oracles if name in ORACLES]
    batch = [name for name in config.oracles if name in BATCH_ORACLES]

    report = FuzzReport(
        seed=config.seed, iterations=config.iterations, oracles=config.oracles
    )
    report.oracle_executions = {name: 0 for name in config.oracles}
    findings: dict[Bucket, FuzzFinding] = {}
    sample: list[bytes] = []
    sample_every = max(1, config.iterations // max(1, config.parallel_sample))

    def record(oracle_name: str, exc: BaseException, data: bytes, i: int) -> None:
        bucket = bucket_for(oracle_name, exc)
        finding = findings.get(bucket)
        if finding is None:
            findings[bucket] = FuzzFinding(
                bucket=bucket, iteration=i, data=data, minimized=data,
                message=str(exc)[:200],
            )
        else:
            finding.count += 1
            if len(data) < len(finding.data):
                finding.data = data
                finding.minimized = data

    for i in range(config.iterations):
        rng = random.Random(f"{config.seed}:{i}")
        data = mutate(generate(rng), rng, max_mutations=config.max_mutations)
        if batch and len(sample) < config.parallel_sample and i % sample_every == 0:
            sample.append(data)
        for oracle_name in per_input:
            report.oracle_executions[oracle_name] += 1
            report.executions += 1
            try:
                ORACLES[oracle_name].run(data)
            except SkipInput:
                report.skips += 1
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                record(oracle_name, exc, data, i)

    for oracle_name in batch:
        report.oracle_executions[oracle_name] += 1
        report.executions += 1
        # vary the pool shape per session (deterministically: same seed,
        # same shape) so the reorder buffer is differentially fuzzed
        # across worker counts and in-flight windows, not just one layout
        batch_rng = random.Random(f"{config.seed}:batch:{oracle_name}")
        workers = batch_rng.randint(1, max(1, config.parallel_workers))
        window = batch_rng.randint(1, max(2, len(sample)))
        try:
            BATCH_ORACLES[oracle_name].run_batch(
                sample, workers=workers, window=window
            )
        except SkipInput:
            report.skips += 1
        except KeyboardInterrupt:
            raise
        except BaseException as exc:
            record(oracle_name, exc, sample[0] if sample else b"", -1)

    if config.minimize:
        for finding in findings.values():
            if finding.bucket.oracle in ORACLES and finding.data:
                finding.minimized = minimize(
                    finding.data,
                    lambda cand, b=finding.bucket: (
                        run_oracle_bucket(b.oracle, cand) == b
                    ),
                    max_attempts=config.minimize_attempts,
                )

    report.findings = sorted(findings.values(), key=lambda f: f.bucket.label)
    return report


def render_report(report: FuzzReport) -> str:
    """Human-readable session summary (stable across identical runs)."""
    lines = [
        "repro.fuzz session report",
        "=========================",
        f"seed: {report.seed}",
        f"iterations: {report.iterations}",
        f"oracle executions: {report.executions} "
        f"({report.skips} skipped as out-of-contract)",
    ]
    for name in report.oracles:
        description = (
            ORACLES[name].description
            if name in ORACLES
            else BATCH_ORACLES[name].description
        )
        lines.append(
            f"  - {name}: {report.oracle_executions.get(name, 0)} execs "
            f"({description})"
        )
    if not report.findings:
        lines.append("findings: none — all oracles held")
        return "\n".join(lines)
    lines.append(f"findings: {len(report.findings)} bucket(s)")
    for finding in report.findings:
        lines.append(f"  [{finding.bucket.label}] x{finding.count}")
        lines.append(f"    first at iteration {finding.iteration}")
        if finding.message:
            lines.append(f"    {finding.message}")
        lines.append(
            f"    minimized ({len(finding.minimized)} bytes): "
            f"{finding.minimized[:120]!r}"
        )
    return "\n".join(lines)
