"""`repro.fuzz` — deterministic differential fuzzing of the parsing substrate.

The study pipeline treats "check one page" as a pure, crash-free function:
that is what makes the longitudinal comparison sound and the parallel
runner safe to shard.  This package machine-checks that assumption with a
seeded fuzzing harness over the from-scratch tokenizer, tree builder,
serializer, autofixer, WARC layer and CDX index:

* :mod:`repro.fuzz.generator` — structure-aware input generation, seeded
  from the synthetic-corpus templates plus an adversarial markup-soup
  alphabet;
* :mod:`repro.fuzz.mutators` — byte-level mutators (splice, tag-swap,
  entity-corrupt, encoding-mangle, truncate, nesting-bomb);
* :mod:`repro.fuzz.oracles` — the differential and property oracles
  (tokenizer step budget, parse→serialize→reparse equivalence, autofix
  fix-point, WARC byte round-trip, CDX typed-rejection, sequential vs
  parallel checker equality);
* :mod:`repro.fuzz.bucketing` — crash dedup by (oracle, exception type,
  top repro frame);
* :mod:`repro.fuzz.minimize` — greedy byte-chunk input minimization;
* :mod:`repro.fuzz.corpus` — the replayable regression corpus committed
  under ``tests/fuzz_corpus/`` and replayed by tier-1;
* :mod:`repro.fuzz.harness` — the deterministic driver behind
  ``repro-study fuzz``.

Every random draw threads an explicit ``random.Random(f"{seed}:...")``
instance (enforced by the staticcheck determinism pass): the same seed and
iteration count always produce the same executions and the same finding
buckets.
"""
from .bucketing import Bucket, bucket_for
from .corpus import (
    CorpusEntry,
    CorpusFormatError,
    load_corpus,
    replay_entry,
    save_entry,
)
from .harness import FuzzConfig, FuzzFinding, FuzzReport, render_report, run_fuzz
from .minimize import minimize
from .mutators import MUTATORS, mutate
from .oracles import BATCH_ORACLES, ORACLES, OracleFailure, SkipInput

__all__ = [
    "BATCH_ORACLES",
    "Bucket",
    "CorpusEntry",
    "CorpusFormatError",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "MUTATORS",
    "ORACLES",
    "OracleFailure",
    "SkipInput",
    "bucket_for",
    "load_corpus",
    "minimize",
    "mutate",
    "render_report",
    "replay_entry",
    "run_fuzz",
    "save_entry",
]
