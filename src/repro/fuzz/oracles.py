"""Differential and property oracles over the parsing substrate.

Each per-input oracle is a pure function ``run(data: bytes) -> None`` with
three outcomes:

* **pass** — return normally;
* **property violation** — raise :class:`OracleFailure` with a stable
  ``detail`` code (bucketed by that code);
* **crash** — any other exception escaping the checked code (bucketed by
  exception type and top repro frame).

:class:`SkipInput` is the fourth, neutral outcome: the input is outside
the oracle's contract (non-UTF-8 bytes for the HTML oracles, documents
the HTML spec itself declares non-round-trippable for the serializer).

The ``parallel`` oracle is a *batch* oracle: it runs once per fuzz session
over a sample of the generated corpus and asserts the pipeline's core
scaling assumption — checking a page is a pure function, so a process
pool must produce bit-identical results to a sequential loop.
"""
from __future__ import annotations

import io
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core import Checker, DecodeFailure, autofix
from ..html import decode_bytes, parse, preprocess, serialize
from ..html.bytes_tokenizer import BytesTokenizer
from ..html.dom import Element, Text
from ..html.dump import dump_tree
from ..html.serializer import RAW_TEXT_ELEMENTS
from ..html.treebuilder import SPECIAL_ELEMENTS
from ..html.reference_tokenizer import reference_tokenize
from ..html.tokenizer import Tokenizer
from ..html.tokens import EOF
from ..warc import WARCFormatError, WARCRecord, WARCWriter, iter_records, surt
from ..warc.cdx import CDXEntry, CDXFormatError


class OracleFailure(AssertionError):
    """A checked property does not hold.  ``detail`` is a stable short
    code used as the bucket key (instead of a stack frame)."""

    def __init__(self, detail: str, message: str = "") -> None:
        self.detail = detail
        super().__init__(message or detail)


class SkipInput(Exception):
    """The input is outside this oracle's contract (not a failure)."""


@dataclass(frozen=True, slots=True)
class Oracle:
    """One per-input oracle."""

    name: str
    description: str
    run: Callable[[bytes], None]


@dataclass(frozen=True, slots=True)
class BatchOracle:
    """A once-per-session oracle over a corpus sample."""

    name: str
    description: str
    run_batch: Callable[..., None]


def _decode(data: bytes) -> str:
    text = decode_bytes(data)
    if text is None:
        # the paper's methodology: non-UTF-8 documents are filtered, not
        # parsed — so the HTML oracles have nothing to check
        raise SkipInput("non-utf8")
    return text


# ------------------------------------------------------------- tokenizer

#: token budget: a linear function of input length.  The spec machine
#: emits at most one token per input character plus bounded overhead; a
#: tokenizer that exceeds this is looping.
TOKEN_BUDGET_BASE = 256
TOKEN_BUDGET_PER_CHAR = 16


def oracle_tokenize(data: bytes) -> None:
    """The tokenizer never raises and never loops (step budget), and
    emits exactly one EOF token, last."""
    text = _decode(data)
    budget = TOKEN_BUDGET_BASE + TOKEN_BUDGET_PER_CHAR * len(text)
    steps = 0
    last = None
    for token in Tokenizer(text):
        steps += 1
        if steps > budget:
            raise OracleFailure(
                "token-budget-exceeded",
                f"{steps} tokens from {len(text)} chars: {text[:80]!r}",
            )
        if isinstance(last, EOF):
            raise OracleFailure("tokens-after-eof", repr(text[:80]))
        last = token
    if not isinstance(last, EOF):
        raise OracleFailure("missing-eof", repr(text[:80]))


def oracle_fastpath(data: bytes) -> None:
    """The chunked fast-path scanner and the per-character reference
    scanner produce the identical token stream and the identical
    spec-named parse-error sequence.

    The parse errors are the study's violation signal (FB1/FB2/DM3 and
    parts of DE3 are detected from them), so this oracle is what licenses
    the tokenizer's bulk-scanning optimisations: any divergence — an
    extra token, a reordered error, a shifted offset — is a measurement
    bug, not just a perf bug.
    """
    text = _decode(data)
    fast = Tokenizer(text)
    fast_tokens = list(fast)
    ref_tokens, ref_errors = reference_tokenize(text)
    if fast_tokens != ref_tokens:
        for index, (left, right) in enumerate(zip(fast_tokens, ref_tokens)):
            if left != right:
                raise OracleFailure(
                    "fastpath-token-divergence",
                    f"token {index}: fast {left!r} != reference {right!r} "
                    f"in {text[:80]!r}",
                )
        raise OracleFailure(
            "fastpath-token-divergence",
            f"{len(fast_tokens)} fast vs {len(ref_tokens)} reference tokens "
            f"in {text[:80]!r}",
        )
    if fast.errors != ref_errors:
        for index, (left, right) in enumerate(zip(fast.errors, ref_errors)):
            if left != right:
                raise OracleFailure(
                    "fastpath-error-divergence",
                    f"error {index}: fast {left!r} != reference {right!r} "
                    f"in {text[:80]!r}",
                )
        raise OracleFailure(
            "fastpath-error-divergence",
            f"{len(fast.errors)} fast vs {len(ref_errors)} reference errors "
            f"in {text[:80]!r}",
        )


def oracle_bytes_parity(data: bytes) -> None:
    """The decode-free bytes tokenizer is observationally identical to
    decode + preprocess + str tokenizer.

    Two contracts, both checked on every input (this oracle never skips —
    the bytes domain is exactly where non-UTF-8 inputs live):

    * **UTF-8 input** — :class:`BytesTokenizer` over the raw bytes must
      emit the same tokens (including lazily materialized character data
      and attributes) and the same spec-named error sequence as the str
      :class:`Tokenizer` over ``preprocess(decode_bytes(data)).text``.
      Offsets are compared too: the bytes path keeps positions in
      *decoded code points*, so a drift means every downstream violation
      offset is wrong.
    * **non-UTF-8 input** — draining the bytes tokenizer must raise
      :class:`UnicodeDecodeError`; anything else means the section 4.1
      encoding filter silently admitted an undecodable page.
    """
    text = decode_bytes(data)
    if text is None:
        try:
            for _ in BytesTokenizer(data):
                pass
        except UnicodeDecodeError:
            return
        raise OracleFailure(
            "bytes-missed-invalid-utf8",
            f"bytes tokenizer accepted non-UTF-8 input {data[:80]!r}",
        )
    reference = Tokenizer(preprocess(text).text)
    ref_tokens = list(reference)
    lazy = BytesTokenizer(data)
    lazy_tokens = list(lazy)
    if lazy_tokens != ref_tokens:
        for index, (left, right) in enumerate(zip(lazy_tokens, ref_tokens)):
            if left != right:
                raise OracleFailure(
                    "bytes-token-divergence",
                    f"token {index}: bytes {left!r} != str {right!r} "
                    f"in {data[:80]!r}",
                )
        raise OracleFailure(
            "bytes-token-divergence",
            f"{len(lazy_tokens)} bytes vs {len(ref_tokens)} str tokens "
            f"in {data[:80]!r}",
        )
    if lazy.errors != reference.errors:
        for index, (left, right) in enumerate(
            zip(lazy.errors, reference.errors)
        ):
            if left != right:
                raise OracleFailure(
                    "bytes-error-divergence",
                    f"error {index}: bytes {left!r} != str {right!r} "
                    f"in {data[:80]!r}",
                )
        raise OracleFailure(
            "bytes-error-divergence",
            f"{len(lazy.errors)} bytes vs {len(reference.errors)} str "
            f"errors in {data[:80]!r}",
        )
    if lazy.decoded_bytes > lazy.input_bytes:
        raise OracleFailure(
            "bytes-decode-overcount",
            f"decoded {lazy.decoded_bytes} of {lazy.input_bytes} payload "
            f"bytes in {data[:80]!r}",
        )


# ------------------------------------------------------------- round-trip


def _serialization_lossy(document) -> bool:
    """True for documents the HTML spec's own serialization section
    declares non-round-trippable.

    ``plaintext`` can never be closed, so its serialized end tag re-parses
    as text; raw-text elements (script/style/...) whose character data
    contains comment or tag openers re-tokenize differently (the spec's
    "string round-trips" warning — the same lossiness behind mXSS); and a
    carriage return placed in the DOM by ``&#xD;`` serializes as a raw CR
    (spec escaping covers only ``&``/nbsp/``<``/``>``) which re-parsing's
    preprocessor normalizes to LF.
    """
    for node in document.iter():
        if isinstance(node, Text):
            if "\r" in node.data:
                return True
            continue
        if not isinstance(node, Element):
            continue
        element = node
        if any("\r" in value for value in element.attributes.values()):
            return True
        if element.name == "plaintext":
            return True
        if element.name in RAW_TEXT_ELEMENTS:
            text = element.text_content().lower()
            if "<!--" in text or "</" in text or "<script" in text:
                return True
    return False


def _contains_unnestable(document) -> bool:
    """True for trees bearing the adoption-agency's fingerprints.

    ``a`` and ``nobr`` are the formatting elements whose start tag
    auto-closes an open same-name element (via the adoption agency), so
    same-name nesting — which the agency's reconstruction step can
    itself build — is a shape re-parsing will never reproduce.  The same
    goes for an ``a``/``nobr`` directly containing a *special* (block)
    element: serializing keeps the block inside, but re-parsing
    reconstructs the formatting element around the block's contents
    instead.
    """
    for element in document.iter_elements():
        if element.name not in ("a", "nobr") or not element.is_html():
            continue
        if any(
            getattr(ancestor, "name", None) == element.name
            for ancestor in element.ancestors()
        ):
            return True
        for child in element.children:
            if (
                isinstance(child, Element)
                and child.is_html()
                and child.name in SPECIAL_ELEMENTS
            ):
                return True
    return False


def _normalized_dump(document) -> str:
    """html5lib-format dump with the doctype reduced to its name (the
    serializer emits ``<!DOCTYPE name>`` only, per spec 13.3)."""
    lines = []
    for line in dump_tree(document).split("\n"):
        if line.startswith("| <!DOCTYPE "):
            name = line[len("| <!DOCTYPE "):].split('"')[0].strip(" >")
            line = f"| <!DOCTYPE {name}>"
        lines.append(line)
    return "\n".join(lines)


def oracle_roundtrip(data: bytes) -> None:
    """parse → serialize → reparse reaches a tree fix-point.

    The reparsed tree must equal the original parse (modulo the doctype
    ids the spec's serialization drops), and serializing it again must be
    byte-identical — the serializer faithfully externalizes the DOM.

    One spec-sanctioned exception: foster parenting can build trees that
    re-parsing will never rebuild — ``<a><table><a>`` nests the fostered
    ``a`` inside the first, but re-parsing the serialization closes the
    first ``a`` instead (likewise ``nobr``, ``p``-closers, implied end
    tags).  Foreign content has an analogous asymmetry: an in-body
    ``</p>`` seen inside ``<math>``/``<svg>`` inserts an HTML ``p``
    *inside* the foreign element, which the breakout rule pops right out
    on reparse.  Both shapes need an enabling context — an open table
    (possibly via template) or a foreign element — so a first-round
    mismatch in such a document is accepted **iff** the second round is a
    genuine fix-point; otherwise every mismatch is a failure.
    """
    text = _decode(data)
    first = parse(text)
    if _serialization_lossy(first.document):
        raise SkipInput("spec-lossy-serialization")
    serialized = serialize(first.document)
    second = parse(serialized)
    if _normalized_dump(second.document) != _normalized_dump(first.document):
        lossy_context = any(
            first.document.find(name) is not None
            for name in ("table", "template", "math", "svg")
        ) or _contains_unnestable(first.document)
        if lossy_context:
            # serialize∘parse must still reach a fix-point — one round
            # per level of adoption-agency re-nesting, so the budget
            # scales with how misnested a document can get before the
            # input-size cap; a byte-stable serialization implies a
            # stable tree, since parse is a pure function of the string
            current = serialize(second.document)
            for _ in range(24):
                next_round = serialize(parse(current).document)
                if next_round == current:
                    raise SkipInput("reparse-lossy-context")
                current = next_round
        raise OracleFailure(
            "reparse-tree-mismatch",
            f"input {text[:60]!r} serialized {serialized[:60]!r}",
        )
    reserialized = serialize(second.document)
    if reserialized != serialized:
        raise OracleFailure(
            "serialize-not-idempotent",
            f"{serialized[:60]!r} -> {reserialized[:60]!r}",
        )


# ---------------------------------------------------------------- autofix


def oracle_autofix(data: bytes) -> None:
    """The automatic repair is a fix-point: ``fix(fix(x)) == fix(x)``,
    and the repaired output no longer violates the repaired rules."""
    text = _decode(data)
    first = autofix(text)
    second = autofix(first.fixed)
    if second.fixed != first.fixed:
        raise OracleFailure(
            "autofix-not-fixpoint",
            f"{first.fixed[:60]!r} -> {second.fixed[:60]!r}",
        )
    repaired = {finding.violation for finding in first.repaired}
    still = {
        finding.violation
        for finding in (*second.repaired, *second.remaining)
    } & repaired
    if still:
        raise OracleFailure(
            "autofix-residual-violations", f"{sorted(still)} in {text[:60]!r}"
        )


# ------------------------------------------------------------------- WARC

_WARC_DATE = "2022-01-01T00:00:00Z"


def oracle_warc(data: bytes) -> None:
    """WARC write → read is a byte-exact round-trip (plain and gzip), and
    corrupted/truncated gzip members fail with the typed
    :class:`WARCFormatError`, never a raw gzip/zlib exception."""
    record = WARCRecord.response("http://fuzz.example/page", data, _WARC_DATE)
    tail = WARCRecord.response("http://fuzz.example/tail", b"tail", _WARC_DATE)
    gzip_blob = b""
    member_span = (0, 0)
    for use_gzip in (False, True):
        buffer = io.BytesIO()
        writer = WARCWriter(buffer, use_gzip=use_gzip)
        member_span = writer.write_record(record)
        writer.write_record(tail)
        blob = buffer.getvalue()
        records = list(iter_records(io.BytesIO(blob)))
        if len(records) != 2:
            raise OracleFailure("warc-record-count", f"{len(records)} != 2")
        if records[0].content != record.content:
            raise OracleFailure("warc-content-mismatch", f"{len(data)} bytes")
        if records[0].headers != record.headers:
            raise OracleFailure("warc-header-mismatch", str(record.headers))
        if use_gzip:
            gzip_blob = blob

    # CDX-style random access: one member decompresses to one record
    offset, length = member_span
    member = gzip_blob[offset:offset + length]
    alone = list(iter_records(io.BytesIO(member)))
    if len(alone) != 1 or alone[0].content != record.content:
        raise OracleFailure("warc-member-access", f"{len(alone)} records")

    # corruption tolerance: deterministic truncations and bit flips must
    # either still parse (slack bytes) or raise the typed error
    probe = zlib.crc32(data)
    corrupted = [
        member[: max(1, length // 3)],
        member[: max(1, length - 1)],
        member[:probe % length] + bytes([member[probe % length] ^ 0x55])
        + member[probe % length + 1:],
    ]
    for blob in corrupted:
        try:
            list(iter_records(io.BytesIO(blob)))
        except WARCFormatError:
            pass


# -------------------------------------------------------------------- CDX


def _valid_cdx_entry() -> CDXEntry:
    return CDXEntry(
        urlkey=surt("http://fuzz.example/x"),
        timestamp="20220101000000",
        url="http://fuzz.example/x",
        mime="text/html",
        status=200,
        digest="sha1:FUZZ",
        length=128,
        offset=0,
        filename="fuzz-00000.warc.gz",
    )


def oracle_cdx(data: bytes) -> None:
    """CDX lines either parse or raise the typed :class:`CDXFormatError`;
    a written line always round-trips field-for-field."""
    entry = _valid_cdx_entry()
    line = entry.to_line()
    if CDXEntry.from_line(line) != entry:
        raise OracleFailure("cdx-roundtrip-mismatch", line)

    text = data.decode("utf-8", "replace")
    text = text.replace("\r", " ").replace("\n", " ")
    probe = zlib.crc32(data) % (len(line) - 1)
    variants = (
        text,                               # arbitrary junk as a line
        line[:probe],                       # truncated line
        line[:probe] + text + line[probe:],  # junk spliced into a line
        f"{entry.urlkey} {entry.timestamp} {text}",  # junk JSON payload
    )
    for variant in variants:
        try:
            CDXEntry.from_line(variant)
        except CDXFormatError:
            pass


# ---------------------------------------------------------------- service

#: one inline-mode app reused across iterations; its result cache stays
#: enabled on purpose — a content-hash collision or stale-entry bug would
#: surface as a parity divergence on the next input
_SERVICE_APP = None


def _service_app():
    global _SERVICE_APP
    if _SERVICE_APP is None:
        from ..service import ServiceApp, ServiceConfig

        _SERVICE_APP = ServiceApp(ServiceConfig(cache_size=64))
    return _SERVICE_APP


def oracle_service_parity(data: bytes) -> None:
    """The HTTP service layer is a faithful wrapper over the checker.

    Routes the input through the in-process request handler (the same
    ``ServiceApp.handle`` production traffic hits — routing, admission,
    cache and all) and diffs the JSON response against a direct
    :meth:`Checker.check_html` call.  Any divergence — a dropped finding,
    a shifted offset, a cache entry served for the wrong body — means the
    service is *measuring differently than the study*, the exact bug
    class the fastpath oracle guards against one layer down.

    The same input is then pushed through ``POST /check-batch`` as a
    ``body_b64`` line, and the framed result must contain the single
    response's bytes *verbatim* — the batch endpoint is a re-framing of
    the single path, never a re-implementation.  This runs before the
    non-UTF-8 skip so 422 outcomes are parity-checked too.

    Non-UTF-8 input must map to a 422 whose payload names the encoding
    filter; after verifying that, the input is out of the HTML oracles'
    contract and is skipped.
    """
    import base64
    import json

    from ..service import ServiceApp  # noqa: F401 - ensures import errors surface here
    from ..service.app import post
    from ..service.workers import report_payload

    app = _service_app()
    response = app.handle_sync(post("/check", data, url="http://fuzz.example/page"))

    batch_line = json.dumps({
        "body_b64": base64.b64encode(data).decode("ascii"),
        "url": "http://fuzz.example/page",
    }).encode("ascii") + b"\n"
    batch_response = app.handle_sync(post("/check-batch", batch_line))
    if batch_response.status != 200:
        raise OracleFailure(
            "service-batch-status",
            f"batch wrapper answered {batch_response.status}",
        )
    expected = (
        b'{"index":0,"status":%d,"result":' % response.status
        + response.body + b"}\n"
    )
    if batch_response.body != expected:
        raise OracleFailure(
            "service-batch-parity",
            f"batch line {batch_response.body[:80]!r} != "
            f"framed single response {expected[:80]!r}",
        )

    text = decode_bytes(data)
    if text is None:
        if response.status != 422:
            raise OracleFailure(
                "service-non-utf8-status",
                f"expected 422 for undecodable body, got {response.status}",
            )
        payload = json.loads(response.body)
        if payload.get("error") != "undecodable-body":
            raise OracleFailure(
                "service-non-utf8-payload", repr(payload)[:120]
            )
        raise SkipInput("non-utf8")

    if response.status != 200:
        raise OracleFailure(
            "service-status",
            f"{response.status} for decodable {len(data)}-byte body",
        )
    served = json.loads(response.body)
    direct = report_payload(
        Checker().check_html(text, url="http://fuzz.example/page")
    )
    if served != direct:
        for key in sorted(set(served) | set(direct)):
            if served.get(key) != direct.get(key):
                raise OracleFailure(
                    "service-parity-divergence",
                    f"field {key!r}: served {str(served.get(key))[:80]} != "
                    f"direct {str(direct.get(key))[:80]}",
                )
        raise OracleFailure("service-parity-divergence", "unlocated diff")


# ----------------------------------------------------------- fused engine

#: one pair of engines reused across iterations; rules are stateless by
#: contract (the footprint staticcheck pass proves it), so reuse is safe
#: and any cross-call state leak would itself surface as a divergence
_FUSED_CHECKER: Checker | None = None
_REFERENCE_CHECKER: Checker | None = None


def _engine_pair() -> tuple[Checker, Checker]:
    global _FUSED_CHECKER, _REFERENCE_CHECKER
    if _FUSED_CHECKER is None:
        _FUSED_CHECKER = Checker(engine="fused")
        _REFERENCE_CHECKER = Checker(engine="reference")
    return _FUSED_CHECKER, _REFERENCE_CHECKER


def oracle_fused_parity(data: bytes) -> None:
    """The fused single-pass engine equals the per-rule reference path.

    ``Checker(engine="fused")`` compiles all rules' declared footprints
    into one streaming walk (:mod:`repro.core.rules.fused`);
    ``engine="reference"`` runs each rule's own ``check`` traversal.  The
    two must produce **bit-identical ordered findings** on every parse —
    not just the same multiset: downstream reports slice by offset and
    evidence, so ordering or field drift is as much a bug as a missing
    finding.  This is the same retained-reference pattern that pins the
    chunked tokenizer to ``reference_tokenizer.py``.
    """
    text = _decode(data)
    result = parse(text)
    fused, reference = _engine_pair()
    expected = reference.check_parse(result).findings
    got = fused.check_parse(result).findings
    if got != expected:
        length = f"{len(got)} fused vs {len(expected)} reference findings"
        for index, (left, right) in enumerate(zip(expected, got)):
            if left != right:
                raise OracleFailure(
                    "fused-parity-divergence",
                    f"finding {index}: reference {left!r} != fused {right!r}",
                )
        raise OracleFailure("fused-parity-length", length)


_DOM_CHECKER: "Checker | None" = None
_STREAM_CHECKER: "Checker | None" = None


def _mode_pair() -> tuple[Checker, Checker]:
    global _DOM_CHECKER, _STREAM_CHECKER
    if _DOM_CHECKER is None:
        _DOM_CHECKER = Checker(mode="dom")
        _STREAM_CHECKER = Checker(mode="stream")
    return _DOM_CHECKER, _STREAM_CHECKER


def oracle_stream_parity(data: bytes) -> None:
    """DOM-free stream checking equals the materialized-DOM walk.

    ``Checker(mode="stream")`` parses through
    :class:`~repro.html.treebuilder.StreamTreeBuilder` — elements are
    emitted in pre-order while parsing, text/comment nodes are never
    built, and the fused tree dispatch runs over the flat emission list.
    Pages whose parse performs a tree-reordering mutation (foster
    parenting, adoption-agency reparenting, frameset body takeover, the
    after-head reroute) *taint* and fall back to the ordinary DOM walk
    over the element-complete tree.  Either way the findings must be
    **bit-identical ordered** to ``mode="dom"`` — this is the machine
    check behind the stream mode's correctness argument, including the
    fallback path: both the taint classifier (does the builder notice the
    mutation?) and the emission invariant (is the untainted emission
    really the final pre-order?) fail loudly here if wrong.
    """
    _decode(data)  # SkipInput for non-UTF-8 (both modes would just agree)
    dom, stream = _mode_pair()
    expected = dom.check_bytes(data)
    got = stream.check_bytes(data)
    if isinstance(expected, DecodeFailure) or isinstance(got, DecodeFailure):
        if type(expected) is not type(got):
            raise OracleFailure(
                "stream-decode-divergence",
                f"dom {type(expected).__name__} vs stream {type(got).__name__}",
            )
        return
    if got.findings != expected.findings:
        for index, (left, right) in enumerate(
            zip(expected.findings, got.findings)
        ):
            if left != right:
                raise OracleFailure(
                    "stream-parity-divergence",
                    f"finding {index}: dom {left!r} != stream {right!r}",
                )
        raise OracleFailure(
            "stream-parity-length",
            f"{len(got.findings)} stream vs {len(expected.findings)} dom",
        )


# --------------------------------------------------- sequential ∥ parallel


def check_counts(data: bytes) -> tuple[bool, tuple[tuple[str, int], ...]]:
    """The per-page result the study stores, as a comparable value.

    Module-level (not a closure) so a process pool can pickle it — the
    same constraint the real :mod:`repro.pipeline.parallel` workers obey.
    """
    report = Checker().check_bytes(data)
    if isinstance(report, DecodeFailure):
        # the encoding filter rejected the page
        return (False, ())
    return (True, tuple(sorted(report.counts.items())))


def parallel_equivalence(
    corpus: Sequence[bytes], *, workers: int = 2, window: int | None = None
) -> None:
    """Checking fuzzed pages through a process pool must equal the
    sequential loop element-for-element (the sharding soundness claim).

    The pool is driven through :func:`repro.pipeline.reorder.streamed_map`
    — the exact completion-streamed scheduler the study's parallel runner
    uses — so this batch oracle differentially fuzzes the reorder buffer
    too: the harness varies ``workers`` and the in-flight ``window``
    (``None`` means the whole corpus at once) per session, and any
    ordering bug surfaces as an index whose sequential and parallel
    results disagree.

    The sequential pass runs first so a crashing input fails in-process
    with an attributable traceback rather than through pool plumbing.
    """
    from ..pipeline.reorder import streamed_map

    if not corpus:
        raise SkipInput("empty-corpus-sample")
    if window is None:
        window = len(corpus)
    sequential = [check_counts(data) for data in corpus]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        submit = lambda data: pool.submit(check_counts, data)
        parallel = list(streamed_map(submit, list(corpus), window=window))
    if len(parallel) != len(sequential):
        raise OracleFailure(
            "parallel-length-divergence",
            f"{len(parallel)} parallel results != {len(sequential)} inputs "
            f"(workers={workers}, window={window})",
        )
    for index, (left, right) in enumerate(zip(sequential, parallel)):
        if left != right:
            raise OracleFailure(
                "parallel-divergence",
                f"input {index}: sequential {left} != parallel {right} "
                f"(workers={workers}, window={window})",
            )


def _dedup_mutation(data: bytes) -> bytes:
    """A deterministic near-miss revision of ``data`` (content changed)."""
    import hashlib

    tag = hashlib.sha256(data).hexdigest()[:8].encode("ascii")
    return data + b"<!-- rev " + tag + b" -->"


def _write_dedup_snapshot(
    root, name: str, year: int, pages: Sequence[tuple[str, bytes]]
) -> dict:
    """One synthetic snapshot (WARC part + CDXJ index) under ``root``."""
    from pathlib import Path

    from ..commoncrawl.snapshot import _cdx_timestamp, _warc_date
    from ..warc import CDXWriter

    warc_dir = root / "crawl-data" / name / "warc"
    warc_dir.mkdir(parents=True, exist_ok=True)
    index_dir = root / "cc-index"
    index_dir.mkdir(parents=True, exist_ok=True)
    cdx = CDXWriter()
    part_rel = Path("crawl-data") / name / "warc" / "part-00000.warc.gz"
    with open(root / part_rel, "wb") as stream:
        writer = WARCWriter(stream)
        writer.write_record(
            WARCRecord.warcinfo(
                "part-00000.warc.gz", _warc_date(year, 0),
                {"software": "repro-fuzz/1.0", "isPartOf": name},
            )
        )
        for counter, (url, payload) in enumerate(pages):
            date = _warc_date(year, counter)
            record = WARCRecord.response(
                url, payload, date, content_type="text/html; charset=UTF-8"
            )
            offset, length = writer.write_record(record)
            cdx.add(
                CDXEntry(
                    urlkey=surt(url), timestamp=_cdx_timestamp(date),
                    url=url, mime="text/html", status=200,
                    digest=record.payload_digest, length=length,
                    offset=offset, filename=str(part_rel),
                )
            )
    cdx.write(index_dir / f"{name}.cdxj")
    return {
        "id": name, "name": f"fuzz crawl {year}", "year": year,
        "cdx-api": f"cc-index/{name}.cdxj", "records": len(pages),
    }


def dedup_parity(
    corpus: Sequence[bytes], *, workers: int = 2, window: int | None = None
) -> None:
    """The dedup ingest must never change results (the §3.13 parity claim).

    Builds a two-snapshot archive from the fuzzed corpus with controlled
    cross-snapshot churn — page ``i`` is byte-identical in the second
    snapshot when ``i % 3 == 0``, deterministically mutated when
    ``i % 3 == 1``, and dropped when ``i % 3 == 2`` — then asserts:

    * the incremental run's canonical aggregate dump is byte-identical
      to the full pipeline's (carry-forward is invisible to analyses);
    * a parallel incremental run (``workers`` from the session config)
      produces a full dump — provenance column included — byte-identical
      to the sequential incremental run.

    ``window`` is accepted for batch-oracle signature compatibility; the
    reorder window is exercised by the ``parallel`` oracle.
    """
    import json
    import tempfile
    from pathlib import Path

    from ..commoncrawl.snapshot import snapshot_name
    from ..incremental import DedupConfig, execute_study_run

    del window
    if not corpus:
        raise SkipInput("empty-corpus-sample")
    # cap the archive size: the oracle runs once per session and pays
    # three full pipeline executions over this corpus
    sample = list(corpus)[:12]
    domain = "fuzz-dedup.example"
    pages_a = [
        (f"https://{domain}/p{index}", data)
        for index, data in enumerate(sample)
    ]
    pages_b = [
        (url, data if index % 3 == 0 else _dedup_mutation(data))
        for index, (url, data) in enumerate(pages_a)
        if index % 3 != 2
    ]
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-dedup-") as tmp:
        root = Path(tmp)
        collinfo = [
            _write_dedup_snapshot(root, snapshot_name(2021), 2021, pages_a),
            _write_dedup_snapshot(root, snapshot_name(2022), 2022, pages_b),
        ]
        (root / "collinfo.json").write_text(json.dumps(collinfo))
        domains = [(domain, 1000.0)]

        def run(dedup, run_workers, index_path=None):
            manifest, _stats = execute_study_run(
                archive_root=root, db_path=":memory:", domains=domains,
                max_pages=len(sample) + 1, workers=run_workers, seed=0,
                dedup=dedup, index_path=index_path,
            )
            return manifest["results"]

        full = run(None, 1)
        incremental = run(DedupConfig(), 1)
        if incremental["aggregate_sha256"] != full["aggregate_sha256"]:
            raise OracleFailure(
                "dedup-aggregate-divergence",
                f"incremental aggregate {incremental['aggregate_sha256']} != "
                f"full {full['aggregate_sha256']} over {len(sample)} pages",
            )
        parallel = run(
            DedupConfig(), max(2, workers),
            index_path=root / "content-index.sqlite",
        )
        if parallel["full_sha256"] != incremental["full_sha256"]:
            raise OracleFailure(
                "dedup-parallel-divergence",
                f"workers={max(2, workers)} incremental full dump "
                f"{parallel['full_sha256']} != sequential "
                f"{incremental['full_sha256']}",
            )


# --------------------------------------------------------------- registry

#: per-input oracles, keyed by CLI name
ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "tokenize",
            "tokenizer never raises, never loops (step budget), single EOF",
            oracle_tokenize,
        ),
        Oracle(
            "fastpath",
            "chunked fast-path and per-char reference scanner emit identical "
            "tokens and parse errors",
            oracle_fastpath,
        ),
        Oracle(
            "bytes_parity",
            "decode-free bytes tokenizer matches decode+preprocess+str "
            "tokenizer; non-UTF-8 input raises",
            oracle_bytes_parity,
        ),
        Oracle(
            "roundtrip",
            "parse -> serialize -> reparse tree equivalence and idempotence",
            oracle_roundtrip,
        ),
        Oracle(
            "autofix",
            "autofix is a fix-point and clears the rules it repairs",
            oracle_autofix,
        ),
        Oracle(
            "fused_parity",
            "fused single-pass check engine emits findings bit-identical "
            "to the per-rule reference path",
            oracle_fused_parity,
        ),
        Oracle(
            "stream_parity",
            "DOM-free stream check mode (incl. taint fallback) emits "
            "findings bit-identical to the materialized-DOM walk",
            oracle_stream_parity,
        ),
        Oracle(
            "service_parity",
            "the HTTP service handler returns byte-for-byte the same check "
            "result as a direct Checker.check_html call",
            oracle_service_parity,
        ),
        Oracle(
            "warc",
            "WARC write -> read byte round-trip; corrupt gzip fails typed",
            oracle_warc,
        ),
        Oracle(
            "cdx",
            "CDX lines parse or raise CDXFormatError; written lines round-trip",
            oracle_cdx,
        ),
    )
}

#: batch oracles, run once per fuzz session over a corpus sample
BATCH_ORACLES: dict[str, BatchOracle] = {
    "parallel": BatchOracle(
        "parallel",
        "sequential and process-pool checking produce identical results",
        parallel_equivalence,
    ),
    "dedup_parity": BatchOracle(
        "dedup_parity",
        "incremental dedup ingest is bit-identical to the full pipeline, "
        "sequential and parallel",
        dedup_parity,
    ),
}
