"""Byte-level mutators applied to generated seed inputs.

Each mutator is a pure function ``(data, rng) -> data`` registered in
:data:`MUTATORS`.  They operate on bytes — below the UTF-8 layer — so the
encoding-decode filter (:func:`repro.html.preprocessor.decode_bytes`) is
itself inside the fuzzed surface: a mutation may turn a valid document
into a non-UTF-8 byte stream, which the oracles must *reject*, not crash
on.
"""
from __future__ import annotations

import random
import re
from typing import Callable

Mutator = Callable[[bytes, random.Random], bytes]

#: hard cap on mutated input size, so splice/nesting growth stays bounded
MAX_INPUT_BYTES = 65_536

_TAG_RE = re.compile(rb"</?([a-zA-Z][a-zA-Z0-9]*)")

#: tag names nesting_bomb wraps with (formatting elements stress the
#: adoption agency and the active-formatting reconstruction path)
_BOMB_TAGS = (b"b", b"i", b"em", b"nobr", b"font", b"div", b"span", b"small")

#: byte strings encoding_mangle splices in: invalid UTF-8 (lone
#: continuation, truncated multibyte, overlong, surrogate half), a BOM,
#: CR/CRLF, NUL and C1 controls
_MANGLE_BYTES = (
    b"\x80", b"\xc3", b"\xe2\x82", b"\xf0\x9f\x92", b"\xc0\xaf",
    b"\xed\xa0\x80", b"\xef\xbb\xbf", b"\r", b"\r\n", b"\x00", b"\x1b",
    b"\x85", b"\xff", b"\xfe",
)


def splice(data: bytes, rng: random.Random) -> bytes:
    """Copy a random slice of the input over or into another position."""
    if len(data) < 2:
        return data
    start = rng.randrange(len(data))
    end = min(len(data), start + rng.randrange(1, 32))
    chunk = data[start:end]
    at = rng.randrange(len(data) + 1)
    if rng.random() < 0.5:  # insert
        return data[:at] + chunk + data[at:]
    return data[:at] + chunk + data[at + len(chunk):]  # overwrite


def tag_swap(data: bytes, rng: random.Random) -> bytes:
    """Rename one tag occurrence to another tag name seen in the input.

    Swapping names between contexts (e.g. ``table`` for ``select``,
    ``script`` for ``b``) is what drives the tree builder into the
    in-table / in-select / raw-text mode interactions.
    """
    matches = list(_TAG_RE.finditer(data))
    if len(matches) < 2:
        return data
    victim = matches[rng.randrange(len(matches))]
    donor = matches[rng.randrange(len(matches))]
    return data[: victim.start(1)] + donor.group(1) + data[victim.end(1):]


def entity_corrupt(data: bytes, rng: random.Random) -> bytes:
    """Damage a character reference, or plant a malformed one."""
    corrupt = rng.choice((
        b"&", b"&#", b"&#x", b"&amp", b"&notit;", b"&#xD800;",
        b"&#1114112;", b"&#0;", b"&ampamp;", b"&;",
    ))
    amp = data.find(b"&")
    if amp != -1 and rng.random() < 0.5:
        # truncate an existing reference mid-name
        cut = amp + rng.randrange(1, 6)
        return data[:cut] + corrupt + data[cut:]
    at = rng.randrange(len(data) + 1)
    return data[:at] + corrupt + data[at:]


def encoding_mangle(data: bytes, rng: random.Random) -> bytes:
    """Splice in bytes that are invalid or troublesome below the UTF-8
    layer (lone continuation bytes, truncated sequences, BOM, CR, NUL)."""
    out = data
    for _ in range(rng.randrange(1, 4)):
        at = rng.randrange(len(out) + 1)
        out = out[:at] + rng.choice(_MANGLE_BYTES) + out[at:]
    return out


#: complete multi-byte UTF-8 sequences utf8_stretch splices in: 2/3/4-byte
#: characters, a combining mark, and a CR-glued pair.  Unlike
#: ``encoding_mangle`` these keep the input decodable — they move the
#: ASCII/non-ASCII boundary around inside tokens, which is exactly where
#: the bytes tokenizer switches between lazy byte spans and eager decode.
_STRETCH_BYTES = (
    "é".encode(), "ß".encode(), "漢".encode(), "字".encode(),
    "🎉".encode(), "́".encode(), " ".encode(),
    "é\r".encode(), "\r漢".encode(), "\x00字".encode(),
)


def utf8_stretch(data: bytes, rng: random.Random) -> bytes:
    """Splice valid multi-byte UTF-8 (plus CR/NUL-glued variants) into the
    input, usually landing mid-construct."""
    out = data
    for _ in range(rng.randrange(1, 5)):
        at = rng.randrange(len(out) + 1)
        out = out[:at] + rng.choice(_STRETCH_BYTES) + out[at:]
    return out


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the input off, usually mid-construct (the EOF-in-X states)."""
    if len(data) < 2:
        return data
    if rng.random() < 0.25:  # drop a prefix instead
        return data[rng.randrange(1, len(data)):]
    return data[: rng.randrange(1, len(data))]


def nesting_bomb(data: bytes, rng: random.Random) -> bytes:
    """Wrap the input in deeply nested formatting elements.

    Stresses the adoption agency, active-formatting reconstruction, and —
    historically — every recursive tree walker (serializer, dumper,
    ``Node.iter``), which had to become iterative to survive this.
    """
    depth = rng.choice((8, 64, 384, 1100, 1600))
    tag = rng.choice(_BOMB_TAGS)
    opener = b"<" + tag + b">"
    budget = max(0, MAX_INPUT_BYTES - len(data)) // len(opener)
    depth = min(depth, budget)
    return opener * depth + data


#: Registry of all mutators, keyed by name (sorted iteration keeps the
#: harness deterministic).
MUTATORS: dict[str, Mutator] = {
    "splice": splice,
    "tag_swap": tag_swap,
    "entity_corrupt": entity_corrupt,
    "encoding_mangle": encoding_mangle,
    "utf8_stretch": utf8_stretch,
    "truncate": truncate,
    "nesting_bomb": nesting_bomb,
}

_MUTATOR_NAMES = tuple(sorted(MUTATORS))


def mutate(data: bytes, rng: random.Random, *, max_mutations: int = 3) -> bytes:
    """Apply zero to ``max_mutations`` randomly chosen mutators."""
    for _ in range(rng.randrange(0, max_mutations + 1)):
        data = MUTATORS[rng.choice(_MUTATOR_NAMES)](data, rng)
    return data[:MAX_INPUT_BYTES]
