"""Structure-aware input generation for the fuzzing harness.

Two complementary sources, mixed per iteration:

* **template pages** — realistic conforming pages from
  :mod:`repro.commoncrawl.templates` with zero to three violation
  injectors applied, the same building blocks the synthetic study corpus
  uses.  These exercise the deep, well-structured paths (head/body modes,
  tables, forms, foreign content).
* **markup soup** — short adversarial strings assembled from an alphabet
  of tokenizer- and tree-builder-hostile atoms (half-open tags, comment
  and CDATA openers, entity fragments, NULs, raw-text and table context
  switches).  These reach the error-recovery corners no template visits.

Everything is a pure function of the :class:`random.Random` instance
passed in; the harness derives one per iteration from the run seed.
"""
from __future__ import annotations

import random

from ..commoncrawl.templates import INJECTORS, build_page

#: Adversarial markup atoms.  Biased toward state-machine edges: half-open
#: constructs, context-switching start tags, entity fragments, NULs.
SOUP_ATOMS: tuple[str, ...] = (
    # bare syntax characters
    "<", ">", "/", "=", "&", ";", "\"", "'", " ", "\n", "\t", "\f", "\x00",
    "-", "!", "?", "#", "x", "0", "1", "a", "b", "\xa0", "é",
    # multi-byte UTF-8 and raw CR: the bytes-domain tokenizer scans below
    # the decode layer, so 2/3/4-byte sequences, combining marks and
    # CR/CRLF runs probe its width accounting and lazy-materialization
    # boundaries (the str path sees them pre-normalized)
    "漢", "字", "日本語", "Ж", "α", "🎉", "🧪", "á", "é̂",
    "\r", "\r\n", "\r\r", "<р>", "<a ключ='значение'>", "&#x6f22;",
    # half-open and degenerate constructs
    "<!--", "-->", "<!-", "<!", "</", "</ ", "<?", "<![CDATA[", "]]>",
    "<!doctype html>", "<!DOCTYPE", "<a href=", "<a href='x",
    # context-switching start tags
    "<b>", "<i>", "<nobr>", "<font size=1>", "</b>", "</i>",
    "<table>", "<tr>", "<td>", "<caption>", "<colgroup>", "<col>",
    "</table>", "<select>", "<option>", "<optgroup>", "<textarea>",
    "</textarea>", "<script>", "</script>", "<style>", "</style>",
    "<title>", "</title>", "<xmp>", "<iframe>", "<noscript>", "<noembed>",
    "<noframes>", "<plaintext>", "<template>", "</template>", "<svg>",
    "</svg>", "<math>", "</math>", "<mi>", "<desc>", "<foreignObject>",
    "<form>", "</form>", "<input type=hidden>", "<button>", "<frameset>",
    "<frame>", "<head>", "</head>", "<body>", "</body>", "<html>",
    "</html>", "<p>", "</p>", "<li>", "<dd>", "<h1>", "<br/>", "<img/>",
    "<meta charset=utf-8>", "<base href='/x'>", "<a href='x'>", "</a>",
    # attribute shrapnel and entity fragments
    "<a b=c>", "<a b c>", "<a 'x'>", "<a b=\"", "id=\"x\"", "=''",
    "&amp;", "&amp", "&AMP", "&#x41;", "&#65;", "&#", "&#x", "&notin;",
    "&notit;", "&not", "&#xD800;", "&#1114112;", "&nbsp;",
)


def generate_soup(rng: random.Random) -> str:
    """A short adversarial markup string."""
    length = rng.randrange(1, 64)
    return "".join(rng.choice(SOUP_ATOMS) for _ in range(length))


def generate_template_page(rng: random.Random) -> str:
    """A realistic page with zero to three study injectors applied."""
    domain = f"fuzz{rng.randrange(10_000)}.example"
    draft = build_page(
        domain,
        f"/page/{rng.randrange(100)}",
        rng,
        use_svg=rng.random() < 0.25,
        use_math=rng.random() < 0.25,
    )
    names = sorted(INJECTORS)
    # terminal injectors swallow the rest of the document, so apply at
    # most one of them and apply it last, matching the corpus generator
    chosen = [INJECTORS[rng.choice(names)] for _ in range(rng.randrange(0, 4))]
    chosen.sort(key=lambda injector: injector.terminal)
    seen_terminal = False
    for injector in chosen:
        if injector.terminal:
            if seen_terminal:
                continue
            seen_terminal = True
        injector.apply(draft, rng)
    return draft.render()


#: Skeletons for the tree-reordering corners the stream check mode must
#: classify correctly (its taint-then-fallback decision): foster
#: parenting, adoption-agency reparenting, table text buffering, the
#: frameset body takeover and the after-head element reroute.  ``{}``
#: slots are filled with a small soup fragment so every instantiation
#: is distinct.
REORDER_SKELETONS: tuple[str, ...] = (
    # foster parenting: flow content directly inside table contexts
    "<table>{}</table>",
    "<table><tbody>{}<tr><td>x</td></tr></tbody></table>",
    "<table><tr>{}<td>y</td></tr></table>",
    "<table><div>{}</div></table>",
    # table text: whitespace and non-whitespace pending-character runs
    "<table> \t\n{}</table>",
    "<table><tr><td>a</td> {} </tr></table>",
    # adoption agency with and without a furthest block
    "<b><p>{}</b>y</p>",
    "<a><div><a>{}</a></div></a>",
    "<i><table><i>{}</i></table></i>",
    "<nobr>x<nobr>{}</nobr>",
    # frameset takeover of an already-implied body
    "<div></div><frameset><frame>{}</frameset>",
    # head-element-after-head reroute
    "<head></head>{}<base href='/x'>",
    "<head><meta charset=utf-8></head><link rel=x href={}>",
)


def generate_reorder_page(rng: random.Random) -> str:
    """A page built around one (or two nested) tree-reordering skeletons."""
    filler = generate_soup(rng) if rng.random() < 0.5 else "x"
    page = rng.choice(REORDER_SKELETONS).format(filler)
    if rng.random() < 0.3:
        page = rng.choice(REORDER_SKELETONS).format(page)
    if rng.random() < 0.5:
        page = "<!doctype html><body>" + page
    return page


def generate(rng: random.Random) -> bytes:
    """One seed input for an iteration: soup-heavy, with template pages
    and tree-reordering pages mixed in for structural depth."""
    choice = rng.random()
    if choice < 0.2:
        text = generate_template_page(rng)
    elif choice < 0.4:
        # weighted toward the stream-mode taint corners: foster
        # parenting, adoption agency, table text, frameset, after-head
        text = generate_reorder_page(rng)
    else:
        text = generate_soup(rng)
    return text.encode("utf-8")
