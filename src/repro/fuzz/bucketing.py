"""Crash bucketing: deduplicate findings by where and how they fail.

A fuzzing session over a buggy state machine produces thousands of
failures from a handful of root causes.  The bucket key mirrors what
crash triage services (and OSS-Fuzz) use: the oracle that tripped, the
exception type, and the **top repro frame** — the innermost stack frame
inside the checked package (excluding the fuzzing machinery itself).
Property violations carry their own stable ``detail`` code instead of a
frame, so "serialize-not-idempotent" is one bucket no matter which input
shape triggered it.
"""
from __future__ import annotations

import traceback
from dataclasses import dataclass

from .oracles import OracleFailure

_NO_FRAME = "<no-repro-frame>"


@dataclass(frozen=True, slots=True)
class Bucket:
    """One deduplicated failure class."""

    oracle: str
    kind: str    # exception type name, e.g. "RecursionError"
    frame: str   # "module:function" of the top repro frame, or detail code

    @property
    def label(self) -> str:
        return f"{self.oracle}/{self.kind}@{self.frame}"

    @property
    def slug(self) -> str:
        """Filesystem-safe form used for corpus file names."""
        raw = f"{self.oracle}-{self.kind}-{self.frame}"
        return "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in raw.lower()
        )


def top_repro_frame(exc: BaseException) -> str:
    """``module:function`` of the innermost frame inside ``repro``
    (excluding ``repro/fuzz`` itself, which merely drives the code)."""
    frames = traceback.extract_tb(exc.__traceback__)
    for frame in reversed(frames):
        path = frame.filename.replace("\\", "/")
        if "/repro/" in path and "/repro/fuzz/" not in path:
            stem = path.rsplit("/", 1)[-1]
            if stem.endswith(".py"):
                stem = stem[:-3]
            return f"{stem}:{frame.name}"
    return _NO_FRAME


def bucket_for(oracle_name: str, exc: BaseException) -> Bucket:
    """The bucket a failure belongs to."""
    if isinstance(exc, OracleFailure):
        return Bucket(oracle=oracle_name, kind="OracleFailure", frame=exc.detail)
    return Bucket(
        oracle=oracle_name,
        kind=type(exc).__name__,
        frame=top_repro_frame(exc),
    )
