"""Greedy input minimization (a bounded ddmin variant).

Given a failing input and a predicate "still fails in the same bucket",
repeatedly delete byte chunks — halving the chunk size whenever a full
sweep makes no progress — until single-byte deletions stop reproducing or
the attempt budget runs out.  The budget keeps minimization time-boxed for
the CI smoke run; determinism follows from the algorithm being a pure
function of ``(data, predicate)``.
"""
from __future__ import annotations

from typing import Callable


def minimize(
    data: bytes,
    predicate: Callable[[bytes], bool],
    *,
    max_attempts: int = 384,
) -> bytes:
    """Smallest input found that still satisfies ``predicate``.

    ``predicate`` must return True for ``data`` itself; if it does not
    (a flaky failure), the input is returned unchanged.
    """
    if not data or not predicate(data):
        return data
    attempts = 0
    chunk = max(1, len(data) // 2)
    while True:
        progressed = False
        start = 0
        while start < len(data) and attempts < max_attempts:
            candidate = data[:start] + data[start + chunk:]
            attempts += 1
            if predicate(candidate):
                data = candidate
                progressed = True
                # keep the same start: the next chunk slid into place
            else:
                start += chunk
        if attempts >= max_attempts:
            return data
        if not progressed:
            if chunk == 1:
                return data
            chunk = max(1, chunk // 2)
