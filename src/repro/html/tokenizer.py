"""The HTML tokenizer state machine (HTML Living Standard section 13.2.5).

This is a from-scratch implementation of the tokenization stage of the
WHATWG parsing algorithm.  It covers the states needed to parse real-world
documents — data, tag, attribute, comment, DOCTYPE, RCDATA / RAWTEXT /
script-data (including the escaped and double-escaped comment-like states),
PLAINTEXT and CDATA — and, crucially for this reproduction, it records every
spec-named parse error it passes through.  The paper's "Parsing Errors"
violation category (FB1, FB2, DM3, parts of DE3) is defined directly in
terms of these error states.

The tree builder drives the tokenizer: after start tags such as ``textarea``
or ``script`` it calls :meth:`Tokenizer.switch_to` to move the machine into
the matching text state, exactly as the spec's tree-construction stage does.
"""
from __future__ import annotations

import re
from collections import deque
from typing import Iterator

from .entities import consume_character_reference
from .errors import ErrorCode, ParseError
from .tokens import EOF, Attribute, Character, Comment, Doctype, EndTag, StartTag, Token

_WHITESPACE = "\t\n\f "
_ASCII_ALPHA = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
)
_REPLACEMENT = "�"

#: ASCII-only lowercasing for tag/attribute/doctype names (the spec's
#: "ASCII lowercase": add 0x20 to A-Z, leave everything else — including
#: cased non-ASCII letters — untouched).  A translation table rather than
#: ``str.lower`` so that lowering a bulk-scanned slice is guaranteed
#: character-wise identical to lowering one character at a time
#: (``str.lower`` applies context-sensitive Unicode mappings such as the
#: Greek final sigma, which would make the two paths diverge).
_TO_ASCII_LOWER = str.maketrans(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ", "abcdefghijklmnopqrstuvwxyz"
)

# Tokenizer content-model states the tree builder may switch into.
DATA = "data"
RCDATA = "rcdata"
RAWTEXT = "rawtext"
SCRIPT_DATA = "script_data"
PLAINTEXT = "plaintext"

# --------------------------------------------------------- chunked scanning
#
# The hot text-ish states do not dispatch per character: each bulk-scans to
# its next significant delimiter with a precompiled regex and hands only the
# delimiter itself to the per-character spec transitions.  Every chunked
# state declares its delimiter ("break") set here — the single source of
# truth its run pattern is compiled from.  The staticcheck ``state-machine``
# pass verifies (a) every declared break character has an explicit
# per-character handler branch in the named state (or a helper it calls), so
# widening a break set without handling the new delimiter is a lint error,
# and (b) every ``_scanner(...)`` pattern below is derived from a declared
# entry.  The per-character twins live in ``reference_tokenizer.py``; the
# ``fastpath`` fuzz oracle diffs the two token/error streams.

#: delimiter sets of the chunked fast-path states, keyed by handler name
CHUNK_BREAK_SETS: dict[str, str] = {
    "_data_state": "&<\x00",
    "_rcdata_state": "&<\x00",
    "_rawtext_state": "<\x00",
    "_script_data_state": "<\x00",
    "_plaintext_state": "\x00",
    "_tag_name_state": "\t\n\f />\x00",
    "_attribute_name_state": "\t\n\f />=\x00\"'<",
    "_attribute_value_double_state": "\"&\x00",
    "_attribute_value_single_state": "'&\x00",
    "_attribute_value_unquoted_state": "\t\n\f >&\x00\"'<=`",
    "_comment_state": "-<\x00",
    "_bogus_comment_state": ">\x00",
    "_script_data_escaped_state": "-<\x00",
    "_script_data_double_escaped_state": "-<\x00",
    "_doctype_name_state": "\t\n\f >\x00",
    "_bogus_doctype_state": ">\x00",
    "_cdata_section_state": "]",
}


def _scanner(state: str) -> re.Pattern[str]:
    """Compile ``state``'s longest-run pattern from its declared break set."""
    return re.compile("[^" + re.escape(CHUNK_BREAK_SETS[state]) + "]+")


_RUN_DATA = _scanner("_data_state")
_RUN_RCDATA = _scanner("_rcdata_state")
_RUN_RAWTEXT = _scanner("_rawtext_state")
_RUN_SCRIPT_DATA = _scanner("_script_data_state")
_RUN_PLAINTEXT = _scanner("_plaintext_state")
_RUN_TAG_NAME = _scanner("_tag_name_state")
_RUN_ATTR_NAME = _scanner("_attribute_name_state")
_RUN_ATTR_VALUE_DOUBLE = _scanner("_attribute_value_double_state")
_RUN_ATTR_VALUE_SINGLE = _scanner("_attribute_value_single_state")
_RUN_ATTR_VALUE_UNQUOTED = _scanner("_attribute_value_unquoted_state")
_RUN_COMMENT = _scanner("_comment_state")
_RUN_BOGUS_COMMENT = _scanner("_bogus_comment_state")
_RUN_SCRIPT_ESCAPED = _scanner("_script_data_escaped_state")
_RUN_SCRIPT_DOUBLE_ESCAPED = _scanner("_script_data_double_escaped_state")
_RUN_DOCTYPE_NAME = _scanner("_doctype_name_state")
_RUN_BOGUS_DOCTYPE = _scanner("_bogus_doctype_state")
_RUN_CDATA = _scanner("_cdata_section_state")

# Fused whole-tag patterns for the data state's happy path: a start/end tag
# that cannot produce a parse error, parse-error flag (``preceded_by_solidus``
# / ``missing_preceding_space``) or character reference is recognised with a
# single regex instead of 10+ state dispatches.  Anything else — NULs, quotes
# in names, ``=`` before a name, missing whitespace, ``&`` in values, stray
# solidi, EOF — fails the match and falls back to the per-state machine, so
# the error paths (the study's violation signal) stay in exactly one place.
# The character classes are the complements of the CHUNK_BREAK_SETS entries
# for the corresponding states.
_RE_FAST_START_TAG = re.compile(
    r"([a-zA-Z][^\t\n\f />\x00]*)"            # tag name
    # Attributes are separated by whitespace, or — the FB2 shape — by
    # nothing at all directly after a quoted value (the lookbehind):
    # missing-whitespace-between-attributes is the one parse error common
    # enough in the wild that the fast path reproduces it instead of
    # bailing out to the state machine.
    r"((?:(?:[\t\n\f ]+|(?<=[\"']))[^\t\n\f />=\x00\"'<]+"
    r"(?:[\t\n\f ]*=[\t\n\f ]*"               # ... with optional =value
    r"(?:\"[^\"&\x00]*\"|'[^'&\x00]*'|[^\t\n\f >&\x00\"'<=`]+))?)*)"
    r"[\t\n\f ]*(/?)>"
)
_RE_FAST_ATTR = re.compile(
    r"([\t\n\f ]*)([^\t\n\f />=\x00\"'<]+)"
    r"(?:[\t\n\f ]*=[\t\n\f ]*"
    r"(\"[^\"&\x00]*\"|'[^'&\x00]*'|[^\t\n\f >&\x00\"'<=`]+))?"
)
_RE_FAST_END_TAG = re.compile(r"/([a-zA-Z][^\t\n\f />\x00]*)[\t\n\f ]*>")
#: shortcut for the most common shape — a lowercase, attribute-less start
#: tag (``<p>``, ``<div>``): skips the attribute machinery entirely.
_RE_FAST_SIMPLE_TAG = re.compile(r"([a-z][a-z0-9]*)>")

#: Start-tag names after which the tree builder may call ``switch_to`` to
#: change the content model (RCDATA/RAWTEXT/script data/PLAINTEXT).  The
#: data-state batch loop returns to the pull loop after emitting one of
#: these so the builder's switch happens before the next character is
#: scanned; every other tag is safe to tokenize straight through.
_MODE_SWITCH_TAGS = frozenset({
    "title", "textarea", "style", "xmp", "iframe", "noembed",
    "noframes", "noscript", "script", "plaintext",
})


class Tokenizer:
    """Pull-based HTML tokenizer.

    Usage::

        tok = Tokenizer(html_text)
        for token in tok:
            ...
        tok.errors  # list[ParseError]
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.errors: list[ParseError] = []
        self._queue: deque[Token] = deque()
        self._state = self._data_state
        self._char_buffer: list[str] = []
        self._char_start = 0
        self._current_tag: StartTag | EndTag | None = None
        self._current_attr: Attribute | None = None
        self._current_comment: Comment | None = None
        self._current_doctype: Doctype | None = None
        self._last_start_tag = ""
        self._temp_buffer = ""
        self._tag_start_offset = 0
        self._pending_solidus = False
        self._pending_missing_space = False
        self._return_state = None
        self._done = False
        #: set by the tree builder while the adjusted current node is in a
        #: foreign (SVG/MathML) namespace; controls CDATA handling.
        self.in_foreign_content = False

    # ------------------------------------------------------------------ API

    def __iter__(self) -> Iterator[Token]:
        queue = self._queue
        popleft = queue.popleft
        while True:
            while queue:
                yield popleft()
            if self._done:
                return
            self._state()

    def switch_to(self, model: str) -> None:
        """Switch the content model (called by the tree builder)."""
        states = {
            DATA: self._data_state,
            RCDATA: self._rcdata_state,
            RAWTEXT: self._rawtext_state,
            SCRIPT_DATA: self._script_data_state,
            PLAINTEXT: self._plaintext_state,
        }
        self._state = states[model]

    # ------------------------------------------------------------ plumbing

    def _error(self, code: ErrorCode, detail: str = "", offset: int | None = None) -> None:
        self.errors.append(
            ParseError(code, self.pos if offset is None else offset, detail)
        )

    def _next(self) -> str | None:
        if self.pos >= len(self.text):
            self.pos += 1  # keep reconsume arithmetic consistent at EOF
            return None
        char = self.text[self.pos]
        self.pos += 1
        return char

    def _reconsume(self) -> None:
        self.pos -= 1

    def _peek(self, count: int = 1) -> str:
        return self.text[self.pos : self.pos + count]

    def _emit_char(self, data: str) -> None:
        if not self._char_buffer:
            self._char_start = self.pos - 1
        self._char_buffer.append(data)

    def _flush_chars(self) -> None:
        if self._char_buffer:
            self._queue.append(
                Character(offset=self._char_start, data="".join(self._char_buffer))
            )
            self._char_buffer = []

    def _emit(self, token: Token) -> None:
        if self._char_buffer:
            self._flush_chars()
        self._queue.append(token)

    def _emit_eof(self) -> None:
        self._emit(EOF(offset=len(self.text)))
        self._done = True

    def _emit_current_tag(self) -> None:
        tag = self._current_tag
        assert tag is not None
        tag.end = self.pos
        self._finish_attribute()
        if isinstance(tag, StartTag):
            self._last_start_tag = tag.name
        else:
            if tag.attributes:
                self._error(ErrorCode.END_TAG_WITH_ATTRIBUTES, offset=tag.offset)
            if tag.self_closing:
                self._error(ErrorCode.END_TAG_WITH_TRAILING_SOLIDUS, offset=tag.offset)
        self._emit(tag)
        self._current_tag = None
        self._state = self._data_state

    # -------------------------------------------------------- attributes

    def _start_attribute(self, name: str = "") -> None:
        self._finish_attribute()
        tag = self._current_tag
        assert tag is not None
        attr = Attribute(name=name, offset=self.pos - 1)
        if self._pending_solidus:
            attr.preceded_by_solidus = True
            self._pending_solidus = False
        if self._pending_missing_space:
            attr.missing_preceding_space = True
            self._pending_missing_space = False
        tag.attributes.append(attr)
        self._current_attr = attr

    def _finish_attribute(self) -> None:
        """Close the in-flight attribute, applying the duplicate check."""
        attr = self._current_attr
        if attr is None:
            return
        tag = self._current_tag
        assert tag is not None
        for other in tag.attributes:
            if other is not attr and other.name == attr.name:
                self._error(
                    ErrorCode.DUPLICATE_ATTRIBUTE, detail=attr.name, offset=attr.offset
                )
                attr.duplicate = True
                break
        self._current_attr = None

    def _flush_char_ref(self, result_text: str) -> None:
        """Append a character-reference result to the right sink."""
        if self._current_attr is not None and self._return_state in (
            self._attribute_value_double_state,
            self._attribute_value_single_state,
            self._attribute_value_unquoted_state,
        ):
            self._current_attr.value += result_text
        else:
            for char in result_text:
                self._emit_char(char)

    def _consume_char_ref(self, return_state) -> None:
        in_attribute = return_state in (
            self._attribute_value_double_state,
            self._attribute_value_single_state,
            self._attribute_value_unquoted_state,
        )
        self._return_state = return_state
        result = consume_character_reference(self.text, self.pos, in_attribute=in_attribute)
        self.errors.extend(result.errors)
        if result.matched:
            self.pos += result.consumed
            self._flush_char_ref(result.text)
        else:
            self._flush_char_ref("&")
        self._state = return_state

    # --------------------------------------------------------- data states

    def _scan_run(self, run: re.Pattern[str]) -> str | None:
        """Emit the maximal run of plain text, then return the break char.

        Fast path for the text-ish states: bulk-scans with the state's
        precompiled run pattern, emits everything before the next break
        character as one source slice, consumes and returns the break
        character (None at EOF).
        """
        text = self.text
        pos = self.pos
        if pos >= len(text):
            self.pos = pos + 1
            return None
        match = run.match(text, pos)
        if match is not None:
            end = match.end()
            if not self._char_buffer:
                self._char_start = pos
            self._char_buffer.append(text[pos:end])
            if end == len(text):
                self.pos = end + 1
                return None
            pos = end
        self.pos = pos + 1
        return text[pos]

    def _data_state(self) -> None:
        """Data state, batched: text runs and error-free tags are consumed
        in a loop until EOF, a slow-path construct (``_fast_tag`` bailout),
        or a tag that may switch the content model hands control back."""
        text = self.text
        length = len(text)
        buffer = self._char_buffer
        while True:
            pos = self.pos
            if pos >= length:
                self.pos = pos + 1
                self._emit_eof()
                return
            match = _RUN_DATA.match(text, pos)
            if match is not None:
                end = match.end()
                if not buffer:
                    self._char_start = pos
                buffer.append(text[pos:end])
                if end == length:
                    self.pos = end + 1
                    self._emit_eof()
                    return
                pos = end
            self.pos = pos + 1
            char = text[pos]
            if char == "<":
                tag = self._fast_tag()
                if tag is None:
                    self._tag_start_offset = pos
                    self._state = self._tag_open_state
                    return
                buffer = self._char_buffer  # _fast_tag flushed the old one
                if tag.__class__ is StartTag and tag.name in _MODE_SWITCH_TAGS:
                    return
            elif char == "&":
                self._consume_char_ref(self._data_state)
            elif char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                self._emit_char(char)

    def _fast_tag(self) -> StartTag | EndTag | None:
        """Recognise one error-free tag at ``pos`` with a single regex.

        Returns the emitted tag when the whole tag (name, attributes,
        ``>``) was consumed; None bails out to ``_tag_open_state`` with no
        input consumed.  Must be behaviourally invisible: every input it
        accepts produces exactly the token the state machine would, and
        any input that could produce a parse error fails the match.
        """
        text = self.text
        pos = self.pos  # just past "<"
        if not text.startswith("/", pos):
            match = _RE_FAST_SIMPLE_TAG.match(text, pos)
            if match is not None:
                name = match[1]
                tag = StartTag(pos - 1, name)
                tag.end = self.pos = match.end()
                self._last_start_tag = name
                buffer = self._char_buffer
                if buffer:
                    self._queue.append(
                        Character(
                            self._char_start,
                            buffer[0] if len(buffer) == 1 else "".join(buffer),
                        )
                    )
                    self._char_buffer = []
                self._queue.append(tag)
                return tag
            match = _RE_FAST_START_TAG.match(text, pos)
            if match is None:
                return None
            name = match[1]
            if not name.islower():
                name = name.translate(_TO_ASCII_LOWER)
            tag = StartTag(pos - 1, name)
            if match.end(2) > match.start(2):
                attrs = tag.attributes
                seen: set[str] = set()
                # The state machine reports a duplicate attribute when the
                # NEXT attribute starts (or the tag ends), after any
                # missing-whitespace error for that next attribute — so the
                # duplicate report is deferred one attribute to keep the
                # error sequence identical.
                pending_dup: tuple[str, int] | None = None
                for attr_match in _RE_FAST_ATTR.finditer(
                    text, match.start(2), match.end(2)
                ):
                    name_start = attr_match.start(2)
                    glued = attr_match.start(1) == name_start
                    if glued:
                        self._error(
                            ErrorCode.MISSING_WHITESPACE_BETWEEN_ATTRIBUTES,
                            offset=name_start + 1,
                        )
                    if pending_dup is not None:
                        self._error(
                            ErrorCode.DUPLICATE_ATTRIBUTE,
                            detail=pending_dup[0],
                            offset=pending_dup[1],
                        )
                        pending_dup = None
                    value = attr_match[3]
                    if value is None:
                        value = ""
                    elif value[0] in "\"'":
                        value = value[1:-1]
                    attr_name = attr_match[2]
                    if not attr_name.islower():
                        attr_name = attr_name.translate(_TO_ASCII_LOWER)
                    attr = Attribute(attr_name, value, name_start)
                    if glued:
                        attr.missing_preceding_space = True
                    if attr_name in seen:
                        attr.duplicate = True
                        pending_dup = (attr_name, name_start)
                    else:
                        seen.add(attr_name)
                    attrs.append(attr)
                if pending_dup is not None:
                    self._error(
                        ErrorCode.DUPLICATE_ATTRIBUTE,
                        detail=pending_dup[0],
                        offset=pending_dup[1],
                    )
            if match[3]:
                tag.self_closing = True
            tag.end = self.pos = match.end()
            self._last_start_tag = name
        else:
            match = _RE_FAST_END_TAG.match(text, pos)
            if match is None:
                return None
            name = match[1]
            if not name.islower():
                name = name.translate(_TO_ASCII_LOWER)
            tag = EndTag(pos - 1, name)
            tag.end = self.pos = match.end()
        buffer = self._char_buffer
        if buffer:
            self._queue.append(
                Character(
                    self._char_start,
                    buffer[0] if len(buffer) == 1 else "".join(buffer),
                )
            )
            self._char_buffer = []
        self._queue.append(tag)
        return tag

    def _rcdata_state(self) -> None:
        char = self._scan_run(_RUN_RCDATA)
        if char is None:
            self._emit_eof()
        elif char == "&":
            self._consume_char_ref(self._rcdata_state)
        elif char == "<":
            self._state = self._rcdata_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _rawtext_state(self) -> None:
        char = self._scan_run(_RUN_RAWTEXT)
        if char is None:
            self._emit_eof()
        elif char == "<":
            self._state = self._rawtext_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _plaintext_state(self) -> None:
        char = self._scan_run(_RUN_PLAINTEXT)
        if char is None:
            self._emit_eof()
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    # ----------------------------------------------------------- tag states

    def _tag_open_state(self) -> None:
        char = self._next()
        if char == "!":
            self._state = self._markup_declaration_open_state
        elif char == "/":
            self._state = self._end_tag_open_state
        elif char is not None and char in _ASCII_ALPHA:
            self._current_tag = StartTag(offset=self._tag_start_offset)
            self._reconsume()
            self._state = self._tag_name_state
        elif char == "?":
            self._error(ErrorCode.UNEXPECTED_QUESTION_MARK_INSTEAD_OF_TAG_NAME)
            self._current_comment = Comment(offset=self.pos - 1)
            self._reconsume()
            self._state = self._bogus_comment_state
        elif char is None:
            self._error(ErrorCode.EOF_BEFORE_TAG_NAME)
            self._emit_char("<")
            self._emit_eof()
        else:
            self._error(ErrorCode.INVALID_FIRST_CHARACTER_OF_TAG_NAME)
            self._emit_char("<")
            self._reconsume()
            self._state = self._data_state

    def _end_tag_open_state(self) -> None:
        char = self._next()
        if char is not None and char in _ASCII_ALPHA:
            self._current_tag = EndTag(offset=self._tag_start_offset)
            self._reconsume()
            self._state = self._tag_name_state
        elif char == ">":
            self._error(ErrorCode.MISSING_END_TAG_NAME)
            self._state = self._data_state
        elif char is None:
            self._error(ErrorCode.EOF_BEFORE_TAG_NAME)
            self._emit_char("<")
            self._emit_char("/")
            self._emit_eof()
        else:
            self._error(ErrorCode.INVALID_FIRST_CHARACTER_OF_TAG_NAME)
            self._current_comment = Comment(offset=self.pos - 1)
            self._reconsume()
            self._state = self._bogus_comment_state

    def _tag_name_state(self) -> None:
        tag = self._current_tag
        assert tag is not None
        text = self.text
        while True:
            match = _RUN_TAG_NAME.match(text, self.pos)
            if match is not None:
                tag.name += match.group().translate(_TO_ASCII_LOWER)
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char in _WHITESPACE:
                self._state = self._before_attribute_name_state
                return
            if char == "/":
                self._state = self._self_closing_start_tag_state
                return
            if char == ">":
                self._emit_current_tag()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                tag.name += _REPLACEMENT

    def _before_attribute_name_state(self) -> None:
        char = self._next()
        if char is None or char in "/>":
            self._reconsume()
            self._state = self._after_attribute_name_state
        elif char in _WHITESPACE:
            pass
        elif char == "=":
            self._error(ErrorCode.UNEXPECTED_EQUALS_SIGN_BEFORE_ATTRIBUTE_NAME)
            self._start_attribute(name="=")
            self._state = self._attribute_name_state
        else:
            self._start_attribute()
            self._reconsume()
            self._state = self._attribute_name_state

    def _attribute_name_state(self) -> None:
        attr = self._current_attr
        assert attr is not None
        text = self.text
        while True:
            match = _RUN_ATTR_NAME.match(text, self.pos)
            if match is not None:
                attr.name += match.group().translate(_TO_ASCII_LOWER)
                self.pos = match.end()
            char = self._next()
            if char is None or char in "/>" or char in _WHITESPACE:
                self._reconsume()
                self._state = self._after_attribute_name_state
                return
            if char == "=":
                self._state = self._before_attribute_value_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.name += _REPLACEMENT
            elif char in "\"'<":
                self._error(
                    ErrorCode.UNEXPECTED_CHARACTER_IN_ATTRIBUTE_NAME, detail=char
                )
                attr.name += char

    def _after_attribute_name_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_TAG)
            self._emit_eof()
        elif char in _WHITESPACE:
            pass
        elif char == "/":
            self._state = self._self_closing_start_tag_state
        elif char == "=":
            self._state = self._before_attribute_value_state
        elif char == ">":
            self._emit_current_tag()
        else:
            self._start_attribute()
            self._reconsume()
            self._state = self._attribute_name_state

    def _before_attribute_value_state(self) -> None:
        char = self._next()
        if char is None:
            self._reconsume()
            self._state = self._attribute_value_unquoted_state
        elif char in _WHITESPACE:
            pass
        elif char == '"':
            self._state = self._attribute_value_double_state
        elif char == "'":
            self._state = self._attribute_value_single_state
        elif char == ">":
            self._error(ErrorCode.MISSING_ATTRIBUTE_VALUE)
            self._emit_current_tag()
        else:
            self._reconsume()
            self._state = self._attribute_value_unquoted_state

    def _attribute_value_double_state(self) -> None:
        self._quoted_value_state(
            '"', _RUN_ATTR_VALUE_DOUBLE, self._attribute_value_double_state
        )

    def _attribute_value_single_state(self) -> None:
        self._quoted_value_state(
            "'", _RUN_ATTR_VALUE_SINGLE, self._attribute_value_single_state
        )

    def _quoted_value_state(self, quote: str, run: re.Pattern[str], state) -> None:
        """Shared quoted-value scanner; consumes runs, not characters."""
        attr = self._current_attr
        assert attr is not None
        text = self.text
        while True:
            match = run.match(text, self.pos)
            if match is not None:
                attr.value += match.group()
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char == quote:
                self._state = self._after_attribute_value_quoted_state
                return
            if char == "&":
                self._consume_char_ref(state)
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.value += _REPLACEMENT

    def _attribute_value_unquoted_state(self) -> None:
        attr = self._current_attr
        assert attr is not None
        text = self.text
        while True:
            match = _RUN_ATTR_VALUE_UNQUOTED.match(text, self.pos)
            if match is not None:
                attr.value += match.group()
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char in _WHITESPACE:
                self._state = self._before_attribute_name_state
                return
            if char == "&":
                self._consume_char_ref(self._attribute_value_unquoted_state)
                return
            if char == ">":
                self._emit_current_tag()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.value += _REPLACEMENT
            elif char in "\"'<=`":
                self._error(
                    ErrorCode.UNEXPECTED_CHARACTER_IN_UNQUOTED_ATTRIBUTE_VALUE,
                    detail=char,
                )
                attr.value += char

    def _after_attribute_value_quoted_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_TAG)
            self._emit_eof()
        elif char in _WHITESPACE:
            self._state = self._before_attribute_name_state
        elif char == "/":
            self._state = self._self_closing_start_tag_state
        elif char == ">":
            self._emit_current_tag()
        else:
            self._error(ErrorCode.MISSING_WHITESPACE_BETWEEN_ATTRIBUTES)
            self._pending_missing_space = True
            self._reconsume()
            self._state = self._before_attribute_name_state

    def _self_closing_start_tag_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_TAG)
            self._emit_eof()
        elif char == ">":
            tag = self._current_tag
            assert tag is not None
            tag.self_closing = True
            self._emit_current_tag()
        else:
            self._error(ErrorCode.UNEXPECTED_SOLIDUS_IN_TAG)
            self._pending_solidus = True
            self._reconsume()
            self._state = self._before_attribute_name_state

    # -------------------------------------------------------- RCDATA/RAWTEXT

    def _rcdata_less_than_state(self) -> None:
        self._text_less_than(self._rcdata_state, self._rcdata_end_tag_name_state)

    def _rawtext_less_than_state(self) -> None:
        self._text_less_than(self._rawtext_state, self._rawtext_end_tag_name_state)

    def _text_less_than(self, text_state, end_tag_name_state) -> None:
        char = self._next()
        if char == "/":
            self._temp_buffer = ""
            next_char = self._peek()
            if next_char and next_char in _ASCII_ALPHA:
                self._current_tag = EndTag(offset=self.pos - 2)
                self._state = end_tag_name_state
            else:
                self._emit_char("<")
                self._emit_char("/")
                self._state = text_state
        else:
            self._emit_char("<")
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1  # let the text state see EOF
            self._state = text_state

    def _rcdata_end_tag_name_state(self) -> None:
        self._text_end_tag_name(self._rcdata_state)

    def _rawtext_end_tag_name_state(self) -> None:
        self._text_end_tag_name(self._rawtext_state)

    def _text_end_tag_name(self, text_state) -> None:
        tag = self._current_tag
        assert isinstance(tag, EndTag)
        while True:
            char = self._next()
            if char is not None and char in _ASCII_ALPHA:
                tag.name += char.lower()
                self._temp_buffer += char
                continue
            appropriate = tag.name == self._last_start_tag
            if appropriate and char is not None and char in _WHITESPACE:
                self._state = self._before_attribute_name_state
                return
            if appropriate and char == "/":
                self._state = self._self_closing_start_tag_state
                return
            if appropriate and char == ">":
                self._emit_current_tag()
                return
            # Not an appropriate end tag: flush as text.
            self._current_tag = None
            self._emit_char("<")
            self._emit_char("/")
            for buffered in self._temp_buffer:
                self._emit_char(buffered)
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = text_state
            return

    # ------------------------------------------------------------ script data

    def _script_data_state(self) -> None:
        char = self._scan_run(_RUN_SCRIPT_DATA)
        if char is None:
            self._emit_eof()
        elif char == "<":
            self._state = self._script_data_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _script_data_less_than_state(self) -> None:
        char = self._next()
        if char == "/":
            next_char = self._peek()
            if next_char and next_char in _ASCII_ALPHA:
                self._temp_buffer = ""
                self._current_tag = EndTag(offset=self.pos - 2)
                self._state = self._script_data_end_tag_name_state
            else:
                self._emit_char("<")
                self._emit_char("/")
                self._state = self._script_data_state
        elif char == "!":
            self._emit_char("<")
            self._emit_char("!")
            self._state = self._script_data_escape_start_state
        else:
            self._emit_char("<")
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_state

    def _script_data_end_tag_name_state(self) -> None:
        self._text_end_tag_name(self._script_data_state)

    def _script_data_escape_start_state(self) -> None:
        char = self._next()
        if char == "-":
            self._emit_char("-")
            self._state = self._script_data_escape_start_dash_state
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_state

    def _script_data_escape_start_dash_state(self) -> None:
        char = self._next()
        if char == "-":
            self._emit_char("-")
            self._state = self._script_data_escaped_dash_dash_state
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_state

    def _script_data_escaped_state(self) -> None:
        char = self._scan_run(_RUN_SCRIPT_ESCAPED)
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_escaped_dash_state
        elif char == "<":
            self._state = self._script_data_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _script_data_escaped_dash_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_escaped_dash_dash_state
        elif char == "<":
            self._state = self._script_data_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
            self._state = self._script_data_escaped_state
        else:
            self._emit_char(char)
            self._state = self._script_data_escaped_state

    def _script_data_escaped_dash_dash_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
        elif char == "<":
            self._state = self._script_data_escaped_less_than_state
        elif char == ">":
            self._emit_char(">")
            self._state = self._script_data_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
            self._state = self._script_data_escaped_state
        else:
            self._emit_char(char)
            self._state = self._script_data_escaped_state

    def _script_data_escaped_less_than_state(self) -> None:
        char = self._next()
        if char == "/":
            next_char = self._peek()
            if next_char and next_char in _ASCII_ALPHA:
                self._temp_buffer = ""
                self._current_tag = EndTag(offset=self.pos - 2)
                self._state = self._script_data_escaped_end_tag_name_state
            else:
                self._emit_char("<")
                self._emit_char("/")
                self._state = self._script_data_escaped_state
        elif char is not None and char in _ASCII_ALPHA:
            self._temp_buffer = ""
            self._emit_char("<")
            self._reconsume()
            self._state = self._script_data_double_escape_start_state
        else:
            self._emit_char("<")
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_escaped_state

    def _script_data_escaped_end_tag_name_state(self) -> None:
        self._text_end_tag_name(self._script_data_escaped_state)

    def _script_data_double_escape_start_state(self) -> None:
        char = self._next()
        if char is not None and (char in _WHITESPACE or char in "/>"):
            if self._temp_buffer.lower() == "script":
                self._state = self._script_data_double_escaped_state
            else:
                self._state = self._script_data_escaped_state
            self._emit_char(char)
        elif char is not None and char in _ASCII_ALPHA:
            self._temp_buffer += char
            self._emit_char(char)
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_escaped_state

    def _script_data_double_escaped_state(self) -> None:
        char = self._scan_run(_RUN_SCRIPT_DOUBLE_ESCAPED)
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_double_escaped_dash_state
        elif char == "<":
            self._emit_char("<")
            self._state = self._script_data_double_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _script_data_double_escaped_dash_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_double_escaped_dash_dash_state
        elif char == "<":
            self._emit_char("<")
            self._state = self._script_data_double_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
            self._state = self._script_data_double_escaped_state
        else:
            self._emit_char(char)
            self._state = self._script_data_double_escaped_state

    def _script_data_double_escaped_dash_dash_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
        elif char == "<":
            self._emit_char("<")
            self._state = self._script_data_double_escaped_less_than_state
        elif char == ">":
            self._emit_char(">")
            self._state = self._script_data_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
            self._state = self._script_data_double_escaped_state
        else:
            self._emit_char(char)
            self._state = self._script_data_double_escaped_state

    def _script_data_double_escaped_less_than_state(self) -> None:
        char = self._next()
        if char == "/":
            self._temp_buffer = ""
            self._emit_char("/")
            self._state = self._script_data_double_escape_end_state
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_double_escaped_state

    def _script_data_double_escape_end_state(self) -> None:
        char = self._next()
        if char is not None and (char in _WHITESPACE or char in "/>"):
            if self._temp_buffer.lower() == "script":
                self._state = self._script_data_escaped_state
            else:
                self._state = self._script_data_double_escaped_state
            self._emit_char(char)
        elif char is not None and char in _ASCII_ALPHA:
            self._temp_buffer += char
            self._emit_char(char)
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._script_data_double_escaped_state

    # --------------------------------------------------------------- comments

    def _markup_declaration_open_state(self) -> None:
        if self._peek(2) == "--":
            self.pos += 2
            self._current_comment = Comment(offset=self.pos - 4)
            self._state = self._comment_start_state
        elif self._peek(7).lower() == "doctype":
            self.pos += 7
            self._state = self._doctype_state
        elif self._peek(7) == "[CDATA[":
            self.pos += 7
            if self.in_foreign_content:
                self._state = self._cdata_section_state
            else:
                self._error(ErrorCode.CDATA_IN_HTML_CONTENT)
                self._current_comment = Comment(offset=self.pos - 9, data="[CDATA[")
                self._state = self._bogus_comment_state
        else:
            self._error(ErrorCode.INCORRECTLY_OPENED_COMMENT)
            self._current_comment = Comment(offset=self.pos - 2)
            self._state = self._bogus_comment_state

    def _bogus_comment_state(self) -> None:
        comment = self._current_comment
        assert comment is not None
        text = self.text
        while True:
            match = _RUN_BOGUS_COMMENT.match(text, self.pos)
            if match is not None:
                comment.data += match.group()
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._emit(comment)
                self._current_comment = None
                self._emit_eof()
                return
            if char == ">":
                self._emit(comment)
                self._current_comment = None
                self._state = self._data_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                comment.data += _REPLACEMENT

    def _comment_start_state(self) -> None:
        char = self._next()
        if char == "-":
            self._state = self._comment_start_dash_state
        elif char == ">":
            self._error(ErrorCode.ABRUPT_CLOSING_OF_EMPTY_COMMENT)
            self._emit_comment()
            self._state = self._data_state
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._comment_state

    def _comment_start_dash_state(self) -> None:
        char = self._next()
        if char == "-":
            self._state = self._comment_end_state
        elif char == ">":
            self._error(ErrorCode.ABRUPT_CLOSING_OF_EMPTY_COMMENT)
            self._emit_comment()
            self._state = self._data_state
        elif char is None:
            self._error(ErrorCode.EOF_IN_COMMENT)
            self._emit_comment()
            self._emit_eof()
        else:
            self._append_comment("-")
            self._reconsume()
            self._state = self._comment_state

    def _comment_state(self) -> None:
        comment = self._current_comment
        assert comment is not None
        text = self.text
        while True:
            match = _RUN_COMMENT.match(text, self.pos)
            if match is not None:
                comment.data += match.group()
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_COMMENT)
                self._emit_comment()
                self._emit_eof()
                return
            if char == "<":
                comment.data += char
                self._state = self._comment_less_than_state
                return
            if char == "-":
                self._state = self._comment_end_dash_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                comment.data += _REPLACEMENT

    def _comment_less_than_state(self) -> None:
        char = self._next()
        if char == "!":
            self._append_comment("!")
            self._state = self._comment_less_than_bang_state
        elif char == "<":
            self._append_comment("<")
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._comment_state

    def _comment_less_than_bang_state(self) -> None:
        char = self._next()
        if char == "-":
            self._state = self._comment_less_than_bang_dash_state
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._comment_state

    def _comment_less_than_bang_dash_state(self) -> None:
        char = self._next()
        if char == "-":
            self._state = self._comment_less_than_bang_dash_dash_state
        else:
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._comment_end_dash_state

    def _comment_less_than_bang_dash_dash_state(self) -> None:
        char = self._next()
        if char is None or char == ">":
            if char is not None:
                self._reconsume()
            else:
                self.pos -= 1
            self._state = self._comment_end_state
        else:
            self._error(ErrorCode.NESTED_COMMENT)
            self._reconsume()
            self._state = self._comment_end_state

    def _comment_end_dash_state(self) -> None:
        char = self._next()
        if char == "-":
            self._state = self._comment_end_state
        elif char is None:
            self._error(ErrorCode.EOF_IN_COMMENT)
            self._emit_comment()
            self._emit_eof()
        else:
            self._append_comment("-")
            self._reconsume()
            self._state = self._comment_state

    def _comment_end_state(self) -> None:
        char = self._next()
        if char == ">":
            self._emit_comment()
            self._state = self._data_state
        elif char == "!":
            self._state = self._comment_end_bang_state
        elif char == "-":
            self._append_comment("-")
        elif char is None:
            self._error(ErrorCode.EOF_IN_COMMENT)
            self._emit_comment()
            self._emit_eof()
        else:
            self._append_comment("--")
            self._reconsume()
            self._state = self._comment_state

    def _comment_end_bang_state(self) -> None:
        char = self._next()
        if char == "-":
            self._append_comment("--!")
            self._state = self._comment_end_dash_state
        elif char == ">":
            self._error(ErrorCode.INCORRECTLY_CLOSED_COMMENT)
            self._emit_comment()
            self._state = self._data_state
        elif char is None:
            self._error(ErrorCode.EOF_IN_COMMENT)
            self._emit_comment()
            self._emit_eof()
        else:
            self._append_comment("--!")
            self._reconsume()
            self._state = self._comment_state

    def _append_comment(self, data: str) -> None:
        comment = self._current_comment
        assert comment is not None
        comment.data += data

    def _emit_comment(self) -> None:
        comment = self._current_comment
        assert comment is not None
        self._emit(comment)
        self._current_comment = None

    # ---------------------------------------------------------------- doctype

    def _doctype_state(self) -> None:
        char = self._next()
        if char is not None and char in _WHITESPACE:
            self._state = self._before_doctype_name_state
        elif char == ">":
            self._reconsume()
            self._state = self._before_doctype_name_state
        elif char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit(Doctype(offset=self.pos - 1, force_quirks=True))
            self._emit_eof()
        else:
            self._error(ErrorCode.MISSING_WHITESPACE_BEFORE_DOCTYPE_NAME)
            self._reconsume()
            self._state = self._before_doctype_name_state

    def _before_doctype_name_state(self) -> None:
        char = self._next()
        if char is not None and char in _WHITESPACE:
            return
        if char == ">":
            self._error(ErrorCode.MISSING_DOCTYPE_NAME)
            self._emit(Doctype(offset=self.pos - 1, force_quirks=True))
            self._state = self._data_state
        elif char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit(Doctype(offset=self.pos - 1, force_quirks=True))
            self._emit_eof()
        else:
            self._current_doctype = Doctype(offset=self.pos - 1)
            self._reconsume()
            self._state = self._doctype_name_state

    def _doctype_name_state(self) -> None:
        doctype = self._current_doctype
        assert doctype is not None
        text = self.text
        while True:
            match = _RUN_DOCTYPE_NAME.match(text, self.pos)
            if match is not None:
                doctype.name += match.group().translate(_TO_ASCII_LOWER)
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_DOCTYPE)
                doctype.force_quirks = True
                self._emit(doctype)
                self._current_doctype = None
                self._emit_eof()
                return
            if char in _WHITESPACE:
                self._state = self._after_doctype_name_state
                return
            if char == ">":
                self._emit(doctype)
                self._current_doctype = None
                self._state = self._data_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                doctype.name += _REPLACEMENT

    def _emit_doctype(self, *, quirks: bool = False, at_eof: bool = False) -> None:
        doctype = self._current_doctype
        assert doctype is not None
        if quirks:
            doctype.force_quirks = True
        self._emit(doctype)
        self._current_doctype = None
        if at_eof:
            self._emit_eof()
        else:
            self._state = self._data_state

    def _after_doctype_name_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            pass
        elif char == ">":
            self._emit_doctype()
        else:
            self._reconsume()
            keyword = self._peek(6).lower()
            if keyword == "public":
                self.pos += 6
                self._state = self._after_doctype_public_keyword_state
            elif keyword == "system":
                self.pos += 6
                self._state = self._after_doctype_system_keyword_state
            else:
                self._error(
                    ErrorCode.INVALID_CHARACTER_SEQUENCE_AFTER_DOCTYPE_NAME,
                    detail=self._peek(20),
                )
                doctype = self._current_doctype
                assert doctype is not None
                doctype.force_quirks = True
                self._state = self._bogus_doctype_state

    def _after_doctype_public_keyword_state(self) -> None:
        char = self._next()
        doctype = self._current_doctype
        assert doctype is not None
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            self._state = self._before_doctype_public_identifier_state
        elif char in "\"'":
            self._error(
                ErrorCode.MISSING_WHITESPACE_AFTER_DOCTYPE_PUBLIC_KEYWORD
            )
            doctype.public_id = ""
            self._state = self._make_identifier_state("public_id", char)
        elif char == ">":
            self._error(ErrorCode.MISSING_DOCTYPE_PUBLIC_IDENTIFIER)
            self._emit_doctype(quirks=True)
        else:
            self._error(
                ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_PUBLIC_IDENTIFIER
            )
            doctype.force_quirks = True
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _before_doctype_public_identifier_state(self) -> None:
        char = self._next()
        doctype = self._current_doctype
        assert doctype is not None
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            pass
        elif char in "\"'":
            doctype.public_id = ""
            self._state = self._make_identifier_state("public_id", char)
        elif char == ">":
            self._error(ErrorCode.MISSING_DOCTYPE_PUBLIC_IDENTIFIER)
            self._emit_doctype(quirks=True)
        else:
            self._error(
                ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_PUBLIC_IDENTIFIER
            )
            doctype.force_quirks = True
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _make_identifier_state(self, field: str, quote: str):
        """Build the (public|system) identifier quoted state closure."""
        abrupt = (
            ErrorCode.ABRUPT_DOCTYPE_PUBLIC_IDENTIFIER
            if field == "public_id"
            else ErrorCode.ABRUPT_DOCTYPE_SYSTEM_IDENTIFIER
        )
        after_state = (
            self._after_doctype_public_identifier_state
            if field == "public_id"
            else self._after_doctype_system_identifier_state
        )

        def identifier_state() -> None:
            doctype = self._current_doctype
            assert doctype is not None
            while True:
                char = self._next()
                if char is None:
                    self._error(ErrorCode.EOF_IN_DOCTYPE)
                    self._emit_doctype(quirks=True, at_eof=True)
                    return
                if char == quote:
                    self._state = after_state
                    return
                if char == ">":
                    self._error(abrupt)
                    self._emit_doctype(quirks=True)
                    return
                if char == "\x00":
                    self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                    char = _REPLACEMENT
                current = getattr(doctype, field) or ""
                setattr(doctype, field, current + char)

        return identifier_state

    def _after_doctype_public_identifier_state(self) -> None:
        char = self._next()
        doctype = self._current_doctype
        assert doctype is not None
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            self._state = self._between_doctype_public_and_system_state
        elif char == ">":
            self._emit_doctype()
        elif char in "\"'":
            self._error(
                ErrorCode.MISSING_WHITESPACE_BETWEEN_DOCTYPE_PUBLIC_AND_SYSTEM_IDENTIFIERS
            )
            doctype.system_id = ""
            self._state = self._make_identifier_state("system_id", char)
        else:
            self._error(
                ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_SYSTEM_IDENTIFIER
            )
            doctype.force_quirks = True
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _between_doctype_public_and_system_state(self) -> None:
        char = self._next()
        doctype = self._current_doctype
        assert doctype is not None
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            pass
        elif char == ">":
            self._emit_doctype()
        elif char in "\"'":
            doctype.system_id = ""
            self._state = self._make_identifier_state("system_id", char)
        else:
            self._error(
                ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_SYSTEM_IDENTIFIER
            )
            doctype.force_quirks = True
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _after_doctype_system_keyword_state(self) -> None:
        char = self._next()
        doctype = self._current_doctype
        assert doctype is not None
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            self._state = self._before_doctype_system_identifier_state
        elif char in "\"'":
            self._error(
                ErrorCode.MISSING_WHITESPACE_AFTER_DOCTYPE_SYSTEM_KEYWORD
            )
            doctype.system_id = ""
            self._state = self._make_identifier_state("system_id", char)
        elif char == ">":
            self._error(ErrorCode.MISSING_DOCTYPE_SYSTEM_IDENTIFIER)
            self._emit_doctype(quirks=True)
        else:
            self._error(
                ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_SYSTEM_IDENTIFIER
            )
            doctype.force_quirks = True
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _before_doctype_system_identifier_state(self) -> None:
        char = self._next()
        doctype = self._current_doctype
        assert doctype is not None
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            pass
        elif char in "\"'":
            doctype.system_id = ""
            self._state = self._make_identifier_state("system_id", char)
        elif char == ">":
            self._error(ErrorCode.MISSING_DOCTYPE_SYSTEM_IDENTIFIER)
            self._emit_doctype(quirks=True)
        else:
            self._error(
                ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_SYSTEM_IDENTIFIER
            )
            doctype.force_quirks = True
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _after_doctype_system_identifier_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_DOCTYPE)
            self._emit_doctype(quirks=True, at_eof=True)
        elif char in _WHITESPACE:
            pass
        elif char == ">":
            self._emit_doctype()
        else:
            # per spec: error but NOT force-quirks
            self._error(
                ErrorCode.UNEXPECTED_CHARACTER_AFTER_DOCTYPE_SYSTEM_IDENTIFIER
            )
            self._reconsume()
            self._state = self._bogus_doctype_state

    def _bogus_doctype_state(self) -> None:
        text = self.text
        while True:
            match = _RUN_BOGUS_DOCTYPE.match(text, self.pos)
            if match is not None:
                # bogus DOCTYPE content is discarded wholesale (spec 13.2.5.68)
                self.pos = match.end()
            char = self._next()
            if char is None:
                self._emit_doctype(at_eof=True)
                return
            if char == ">":
                self._emit_doctype()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)

    # ------------------------------------------------------------------ CDATA

    def _cdata_section_state(self) -> None:
        while True:
            char = self._scan_run(_RUN_CDATA)
            if char is None:
                self._error(ErrorCode.EOF_IN_CDATA)
                self._emit_eof()
                return
            if char == "]":
                if self._peek(2) == "]>":
                    self.pos += 2
                    self._state = self._data_state
                    return
                self._emit_char("]")


def tokenize(text: str) -> tuple[list[Token], list[ParseError]]:
    """Tokenize ``text`` fully in the data state; convenience for tests/rules.

    Note: without a tree builder driving content-model switches, ``script``
    and ``style`` content is tokenized as markup.  Use :func:`repro.html.parse`
    for faithful document parsing.
    """
    tokenizer = Tokenizer(text)
    tokens = list(tokenizer)
    return tokens, tokenizer.errors
