"""`repro.html` — a from-scratch WHATWG HTML parsing substrate.

Implements the pipeline the paper describes in section 2.1: byte stream
decoder → input stream preprocessor → tokenizer → tree builder, plus the
serializer used by the automatic repair process.  Every error-tolerant
fix-up is observable, either as a spec-named :class:`~repro.html.errors.ParseError`
or as a :class:`~repro.html.treebuilder.TreeEvent`.

Quick use::

    from repro.html import parse
    result = parse("<p>hello")
    result.document          # DOM tree
    result.errors            # spec-named parse errors
    result.events            # error-tolerance fix-up events
"""
from .dom import (
    HTML_NAMESPACE,
    MATHML_NAMESPACE,
    SVG_NAMESPACE,
    CommentNode,
    Document,
    DocumentFragment,
    DocumentType,
    Element,
    Node,
    Text,
)
from .bytes_tokenizer import BytesTokenizer, tokenize_bytes
from .encoding import SniffResult, canonical_label, sniff_encoding
from .entities import decode_entities
from .errors import ErrorCode, ParseError, StrictParseError
from .preprocessor import decode_bytes, preprocess
from .serializer import inner_html, serialize
from .tokenizer import Tokenizer, tokenize
from .tokens import (
    EOF,
    Attribute,
    ByteSource,
    Character,
    Comment,
    Doctype,
    EndTag,
    StartTag,
    Token,
)
from .treebuilder import (
    ParseResult,
    StreamTaint,
    StreamTreeBuilder,
    TreeBuilder,
    TreeEvent,
    parse,
    parse_bytes,
    parse_bytes_stream,
    parse_fragment,
)

__all__ = [
    "HTML_NAMESPACE",
    "MATHML_NAMESPACE",
    "SVG_NAMESPACE",
    "Attribute",
    "ByteSource",
    "BytesTokenizer",
    "Character",
    "Comment",
    "CommentNode",
    "Doctype",
    "Document",
    "DocumentFragment",
    "DocumentType",
    "EOF",
    "Element",
    "EndTag",
    "ErrorCode",
    "Node",
    "ParseError",
    "ParseResult",
    "StreamTaint",
    "StreamTreeBuilder",
    "SniffResult",
    "StartTag",
    "StrictParseError",
    "Text",
    "Token",
    "Tokenizer",
    "TreeBuilder",
    "TreeEvent",
    "canonical_label",
    "decode_bytes",
    "decode_entities",
    "sniff_encoding",
    "inner_html",
    "parse",
    "parse_bytes",
    "parse_bytes_stream",
    "parse_fragment",
    "preprocess",
    "serialize",
    "tokenize",
    "tokenize_bytes",
]
