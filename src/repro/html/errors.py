"""Parse-error value types for the WHATWG HTML parser.

The HTML Living Standard (section 13.2) names every condition under which a
conforming parser *may* report a parse error yet must continue parsing.  The
paper's "Parsing Errors" violation category is defined exactly in terms of
these named error states (e.g. ``unexpected-solidus-in-tag`` for FB1), so the
tokenizer and tree builder in this package record each one with its spec name
and the source offset at which it occurred.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass


class ErrorCode(enum.Enum):
    """Spec-named parse errors (HTML Living Standard section 13.2.2).

    Only the codes that this parser can actually emit are listed; the value
    is the name used by the specification and by validator.nu.
    """

    # Tokenizer: tag states
    UNEXPECTED_SOLIDUS_IN_TAG = "unexpected-solidus-in-tag"
    MISSING_WHITESPACE_BETWEEN_ATTRIBUTES = "missing-whitespace-between-attributes"
    DUPLICATE_ATTRIBUTE = "duplicate-attribute"
    UNEXPECTED_CHARACTER_IN_ATTRIBUTE_NAME = "unexpected-character-in-attribute-name"
    UNEXPECTED_EQUALS_SIGN_BEFORE_ATTRIBUTE_NAME = (
        "unexpected-equals-sign-before-attribute-name"
    )
    UNEXPECTED_CHARACTER_IN_UNQUOTED_ATTRIBUTE_VALUE = (
        "unexpected-character-in-unquoted-attribute-value"
    )
    MISSING_ATTRIBUTE_VALUE = "missing-attribute-value"
    UNEXPECTED_NULL_CHARACTER = "unexpected-null-character"
    UNEXPECTED_QUESTION_MARK_INSTEAD_OF_TAG_NAME = (
        "unexpected-question-mark-instead-of-tag-name"
    )
    INVALID_FIRST_CHARACTER_OF_TAG_NAME = "invalid-first-character-of-tag-name"
    MISSING_END_TAG_NAME = "missing-end-tag-name"
    EOF_BEFORE_TAG_NAME = "eof-before-tag-name"
    EOF_IN_TAG = "eof-in-tag"
    END_TAG_WITH_ATTRIBUTES = "end-tag-with-attributes"
    END_TAG_WITH_TRAILING_SOLIDUS = "end-tag-with-trailing-solidus"

    # Tokenizer: comment states
    ABRUPT_CLOSING_OF_EMPTY_COMMENT = "abrupt-closing-of-empty-comment"
    NESTED_COMMENT = "nested-comment"
    INCORRECTLY_CLOSED_COMMENT = "incorrectly-closed-comment"
    INCORRECTLY_OPENED_COMMENT = "incorrectly-opened-comment"
    EOF_IN_COMMENT = "eof-in-comment"

    # Tokenizer: DOCTYPE states
    EOF_IN_DOCTYPE = "eof-in-doctype"
    MISSING_WHITESPACE_BEFORE_DOCTYPE_NAME = "missing-whitespace-before-doctype-name"
    MISSING_DOCTYPE_NAME = "missing-doctype-name"
    INVALID_CHARACTER_SEQUENCE_AFTER_DOCTYPE_NAME = (
        "invalid-character-sequence-after-doctype-name"
    )
    MISSING_WHITESPACE_AFTER_DOCTYPE_PUBLIC_KEYWORD = (
        "missing-whitespace-after-doctype-public-keyword"
    )
    MISSING_WHITESPACE_AFTER_DOCTYPE_SYSTEM_KEYWORD = (
        "missing-whitespace-after-doctype-system-keyword"
    )
    MISSING_DOCTYPE_PUBLIC_IDENTIFIER = "missing-doctype-public-identifier"
    MISSING_DOCTYPE_SYSTEM_IDENTIFIER = "missing-doctype-system-identifier"
    MISSING_QUOTE_BEFORE_DOCTYPE_PUBLIC_IDENTIFIER = (
        "missing-quote-before-doctype-public-identifier"
    )
    MISSING_QUOTE_BEFORE_DOCTYPE_SYSTEM_IDENTIFIER = (
        "missing-quote-before-doctype-system-identifier"
    )
    ABRUPT_DOCTYPE_PUBLIC_IDENTIFIER = "abrupt-doctype-public-identifier"
    ABRUPT_DOCTYPE_SYSTEM_IDENTIFIER = "abrupt-doctype-system-identifier"
    MISSING_WHITESPACE_BETWEEN_DOCTYPE_PUBLIC_AND_SYSTEM_IDENTIFIERS = (
        "missing-whitespace-between-doctype-public-and-system-identifiers"
    )
    UNEXPECTED_CHARACTER_AFTER_DOCTYPE_SYSTEM_IDENTIFIER = (
        "unexpected-character-after-doctype-system-identifier"
    )

    # Tokenizer: script data / CDATA
    EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT = "eof-in-script-html-comment-like-text"
    EOF_IN_CDATA = "eof-in-cdata"
    CDATA_IN_HTML_CONTENT = "cdata-in-html-content"

    # Tokenizer: character references
    MISSING_SEMICOLON_AFTER_CHARACTER_REFERENCE = (
        "missing-semicolon-after-character-reference"
    )
    UNKNOWN_NAMED_CHARACTER_REFERENCE = "unknown-named-character-reference"
    ABSENCE_OF_DIGITS_IN_NUMERIC_CHARACTER_REFERENCE = (
        "absence-of-digits-in-numeric-character-reference"
    )
    NULL_CHARACTER_REFERENCE = "null-character-reference"
    CHARACTER_REFERENCE_OUTSIDE_UNICODE_RANGE = (
        "character-reference-outside-unicode-range"
    )
    SURROGATE_CHARACTER_REFERENCE = "surrogate-character-reference"
    NONCHARACTER_CHARACTER_REFERENCE = "noncharacter-character-reference"
    CONTROL_CHARACTER_REFERENCE = "control-character-reference"

    # Input stream preprocessing
    CONTROL_CHARACTER_IN_INPUT_STREAM = "control-character-in-input-stream"
    NONCHARACTER_IN_INPUT_STREAM = "noncharacter-in-input-stream"
    SURROGATE_IN_INPUT_STREAM = "surrogate-in-input-stream"

    # Tree construction (the spec only says "parse error" here; these names
    # follow html5lib conventions so each tree-builder error is identifiable).
    UNEXPECTED_TOKEN_IN_INITIAL_MODE = "expected-doctype-but-got-something-else"
    NON_VOID_ELEMENT_START_TAG_WITH_TRAILING_SOLIDUS = (
        "non-void-html-element-start-tag-with-trailing-solidus"
    )
    UNEXPECTED_START_TAG = "unexpected-start-tag"
    UNEXPECTED_END_TAG = "unexpected-end-tag"
    UNEXPECTED_DOCTYPE = "unexpected-doctype"
    EOF_WITH_UNCLOSED_ELEMENTS = "expected-closing-tag-but-got-eof"
    UNEXPECTED_CELL_OR_ROW = "unexpected-cell-or-row"
    FOSTER_PARENTED_CONTENT = "foster-parented-content"
    UNEXPECTED_FORM_IN_FORM = "unexpected-form-in-form"
    SECOND_BODY_START_TAG = "unexpected-start-tag-body"
    SECOND_HEAD_START_TAG = "unexpected-start-tag-head"
    UNEXPECTED_HTML_ELEMENT_IN_FOREIGN_CONTENT = (
        "unexpected-html-element-in-foreign-content"
    )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class ParseError:
    """A single parse error observed while parsing a document.

    ``offset`` is the index into the (preprocessed) input string at which the
    error was detected; ``detail`` optionally carries extra context such as
    the offending attribute name for ``duplicate-attribute``.
    """

    code: ErrorCode
    offset: int
    detail: str = ""

    def __str__(self) -> str:
        if self.detail:
            return f"{self.code.value} at {self.offset} ({self.detail})"
        return f"{self.code.value} at {self.offset}"


class StrictParseError(Exception):
    """Raised by the strict parsing mode when a deprecated violation occurs.

    This is the behaviour the paper's roadmap (section 5.3.2) proposes: the
    parser stops and returns an error instead of a fixed-up page.
    """

    def __init__(self, error: ParseError) -> None:
        super().__init__(str(error))
        self.error = error
