"""Decode-free bytes-domain tokenizer (the PR-8 hot path).

:class:`BytesTokenizer` runs the WHATWG state machine of
:class:`repro.html.tokenizer.Tokenizer` directly over raw UTF-8 bytes,
replacing the old ``bytes → decode_bytes → preprocess (two full-string
copies) → str Tokenizer`` pipeline with a single scan:

* every chunked state's run pattern is recompiled **in bytes** from the same
  ``CHUNK_BREAK_SETS`` source of truth (:func:`_bytes_scanner` mirrors
  ``tokenizer._scanner``; the staticcheck ``state-machine`` pass verifies the
  derivation).  All break characters are ASCII, and UTF-8 continuation bytes
  are ≥ 0x80, so a byte-domain ``[^breaks]+`` scan can never split a
  multi-byte character — the byte runs are exactly the char runs;
* input normalization is folded into the scan: a UTF-8 BOM becomes a start
  offset (no slice copy), CRLF / lone CR become ``\\n`` with at most one
  byte-level ``replace`` per form (a no-op returning the same object when
  absent), killing ``preprocessor.preprocess``'s separate copies;
* text materializes lazily.  Character data is buffered as byte *spans* into
  a shared :class:`~repro.html.tokens.ByteSource` and only joined/decoded
  when ``.data`` is read; error-free attribute regions ride on
  :class:`~repro.html.tokens.StartTag` as a lazy region; tag/attribute names
  decode through a small intern cache (ASCII fast slice);
* invalid UTF-8 raises :class:`UnicodeDecodeError` from whichever scan first
  touches the bad sequence — the same documents the old upfront
  ``decode_bytes`` filter rejected, discovered incrementally (callers map
  the exception to ``DecodeFailure``).

The per-position machinery mirrors the base class through a tiny accounting
layer: ``pos`` (a property) reports *character* offsets — ``_bpos - base -
_extra`` where ``_extra`` counts UTF-8 continuation bytes consumed so far —
so every inherited slow-path state, error offset and token offset stays in
the str-domain coordinate system and the three scanners (bytes, chunked str,
per-char reference) remain bit-comparable.  The inherited ``self.pos ± k``
arithmetic is byte==char safe: every such site crosses ASCII-only input
("--", "doctype", "public", "system", "[CDATA[", "]>", entity runs); real
characters are only re-consumed via :meth:`_reconsume`, which knows the last
consumed width.

``_data_state`` is replaced wholesale by a batch loop over one master
pattern (text run | simple start tag | end tag | start tag with attributes |
well-formed named reference) with ``lastindex`` dispatch; the tag
alternatives exclude bytes ≥ 0x80, so non-ASCII tag/attribute content falls
back to the inherited per-state machine, which the accounting layer keeps
correct.  Anything error-shaped fails the master match and takes the slow
path, exactly like the str fast path — parse-error semantics (the study's
violation signal) stay defined in one place.
"""
from __future__ import annotations

import re

from .arena import GLOBAL_ATOMS
from .entities import NAMED_ENTITY_BYTES, consume_character_reference_bytes
from .errors import ErrorCode, ParseError
from .preprocessor import UTF8_BOM
from .tokens import (
    EOF,
    Attribute,
    ByteSource,
    Character,
    Comment,
    Doctype,
    EndTag,
    StartTag,
    Token,
)
from .tokenizer import (
    _MODE_SWITCH_TAGS,
    _REPLACEMENT,
    _TO_ASCII_LOWER,
    CHUNK_BREAK_SETS,
    Tokenizer,
)

_ASCII_CHR = tuple(map(chr, range(128)))
_NON_ASCII = re.compile(rb"[\x80-\xff]")

# ------------------------------------------------------- bytes run patterns


def _bytes_scanner(state: str) -> re.Pattern[bytes]:
    """Compile ``state``'s longest-run pattern from its declared break set.

    The bytes twin of ``tokenizer._scanner``: same ``CHUNK_BREAK_SETS``
    entry, encoded to ASCII bytes.  Break sets are ASCII by construction
    (the staticcheck pass enforces it), so the complement class matches
    UTF-8 continuation bytes as part of the run — multi-byte characters are
    never split.
    """
    return re.compile(b"[^" + re.escape(CHUNK_BREAK_SETS[state].encode("ascii")) + b"]+")


_RUN_RCDATA_B = _bytes_scanner("_rcdata_state")
_RUN_RAWTEXT_B = _bytes_scanner("_rawtext_state")
_RUN_SCRIPT_DATA_B = _bytes_scanner("_script_data_state")
_RUN_PLAINTEXT_B = _bytes_scanner("_plaintext_state")
_RUN_TAG_NAME_B = _bytes_scanner("_tag_name_state")
_RUN_ATTR_NAME_B = _bytes_scanner("_attribute_name_state")
_RUN_ATTR_VALUE_DOUBLE_B = _bytes_scanner("_attribute_value_double_state")
_RUN_ATTR_VALUE_SINGLE_B = _bytes_scanner("_attribute_value_single_state")
_RUN_ATTR_VALUE_UNQUOTED_B = _bytes_scanner("_attribute_value_unquoted_state")
_RUN_COMMENT_B = _bytes_scanner("_comment_state")
_RUN_BOGUS_COMMENT_B = _bytes_scanner("_bogus_comment_state")
_RUN_SCRIPT_ESCAPED_B = _bytes_scanner("_script_data_escaped_state")
_RUN_SCRIPT_DOUBLE_ESCAPED_B = _bytes_scanner("_script_data_double_escaped_state")
_RUN_DOCTYPE_NAME_B = _bytes_scanner("_doctype_name_state")
_RUN_BOGUS_DOCTYPE_B = _bytes_scanner("_bogus_doctype_state")
_RUN_CDATA_B = _bytes_scanner("_cdata_section_state")
# NOTE: ``_data_state`` has no ``_bytes_scanner`` run pattern — its text runs
# are scanned by ``_MASTER``'s group 1, whose character class the staticcheck
# ``state-machine`` pass verifies against ``CHUNK_BREAK_SETS["_data_state"]``.

# The data-state batch loop recognises a text run AND the construct that
# terminates it with ONE pattern, dispatching on ``lastindex``: one regex
# call per text+tag pair instead of two.  The text prefix (group 1) is
# possessive (``*+``) so a construct that fails to match cannot backtrack
# into the run one byte at a time.  Character classes mirror the str fast
# path (`_RE_FAST_START_TAG` et al. — complements of CHUNK_BREAK_SETS
# entries) except that the tag alternatives additionally exclude bytes >=
# 0x80: non-ASCII names/attributes bail to the per-state machine rather
# than teach the fast path about character widths.  Text runs do include
# high bytes — they are decoded (and validated) as a unit only when
# non-ASCII is actually present.
# The single-attribute alternative (groups 4-6) is tried before the
# general region (groups 7-9): a region holding exactly one whitespace-
# separated attribute structurally cannot contain a glued attribute or a
# duplicate name, so the dispatch defers it lazily with *no* probe call —
# and single-attribute tags are the most common attributed shape.
_MASTER = re.compile(
    rb"([^&<\x00]*+)"                                       # 1: text run
    rb"(?:"
    rb"<([a-z][a-z0-9]*)>"                                  # 2: simple start tag
    rb"|</([a-zA-Z][^\t\n\f />\x00\x80-\xff]*)[\t\n\f ]*>"  # 3: end tag
    rb"|<([a-zA-Z][^\t\n\f />\x00\x80-\xff]*)"              # 4: start-tag name
    rb"([\t\n\f ]+[^\t\n\f />=\x00\"'<\x80-\xff]+"
    rb"(?:[\t\n\f ]*=[\t\n\f ]*"
    rb"(?:\"[^\"&\x00\x80-\xff]*\"|'[^'&\x00\x80-\xff]*'"
    rb"|[^\t\n\f >&\x00\"'<=`\x80-\xff]+))?)"               # 5: one attribute
    rb"[\t\n\f ]*(/?)>"                                     # 6: self-closing flag
    rb"|<([a-zA-Z][^\t\n\f />\x00\x80-\xff]*)"              # 7: start-tag name
    rb"((?:(?:[\t\n\f ]+|(?<=[\"']))[^\t\n\f />=\x00\"'<\x80-\xff]+"
    rb"(?:[\t\n\f ]*=[\t\n\f ]*"
    rb"(?:\"[^\"&\x00\x80-\xff]*\"|'[^'&\x00\x80-\xff]*'"
    rb"|[^\t\n\f >&\x00\"'<=`\x80-\xff]+))?)*)"             # 8: attribute region
    rb"[\t\n\f ]*(/?)>"                                     # 9: self-closing flag
    rb"|&([a-zA-Z][a-zA-Z0-9]*);"                           # 10: named reference
    rb")?"
)

# One *whole* well-behaved comment, recognised from the data state in a
# single match: ``<!--`` body ``-->`` where the body is pure ASCII, has no
# NUL, no nested ``<!``, never ends a dash run anywhere ``>``/``!``/EOF
# could follow it (those are the comment-end / bang / abrupt-close edges
# with their own error vocabulary), and dash runs inside are followed by a
# plain body byte — exactly the inputs on which the state machine emits
# one Comment token and zero errors.  Everything else (including ``--->``
# tails and non-ASCII bodies) falls back to the per-state path.
_RE_FAST_COMMENT = re.compile(
    rb"<!--("
    rb"(?:[^-\x00<\x80-\xff]|<(?!!)|-+(?:[^->!\x00<\x80-\xff]|<(?!!)))*+"
    rb")-->"
)

#: the one spec-conforming doctype shape, matched wholesale: ``<!doctype``
#: (any case), ASCII whitespace, ``html`` (any case), optional trailing
#: whitespace, ``>`` — the state machine emits exactly
#: ``Doctype(name="html")`` with zero errors for it.  ``\r`` is excluded
#: (it shifts char offsets), as is every other doctype variant.
_RE_FAST_DOCTYPE = re.compile(
    rb"<![Dd][Oo][Cc][Tt][Yy][Pp][Ee][ \t\n\f]+"
    rb"([Hh][Tt][Mm][Ll])[ \t\n\f]*>"
)

#: one attribute inside a master-matched region: (sep, name, value); the
#: bytes twin of ``_RE_FAST_ATTR``, shared by the lazy probe, the eager
#: fallback parser and the lazy materializer so all three agree.
_RE_FAST_ATTR_B = re.compile(
    rb"([\t\n\f ]*)([^\t\n\f />=\x00\"'<\x80-\xff]+)"
    rb"(?:[\t\n\f ]*=[\t\n\f ]*"
    rb"(\"[^\"&\x00\x80-\xff]*\"|'[^'&\x00\x80-\xff]*'"
    rb"|[^\t\n\f >&\x00\"'<=`\x80-\xff]+))?"
)

# Bounded bytes->str intern caches for tag / attribute names: pages repeat a
# tiny name vocabulary, so the decode+ASCII-lower happens once per distinct
# spelling.  The caches live on the process-wide atom table shared with the
# DOM arena (repro.html.arena.GLOBAL_ATOMS), so the name a token carries is
# the same str object the arena's names column and every other document
# use.  The bound only guards against adversarial name churn.
_NAME_CACHE_LIMIT = 4096
_TAG_NAMES: dict[bytes, str] = GLOBAL_ATOMS.tag_bytes
_ATTR_NAMES: dict[bytes, str] = GLOBAL_ATOMS.attr_bytes


def _intern_name(cache: dict[bytes, str], raw: bytes) -> str:
    name = GLOBAL_ATOMS.intern(raw.decode("ascii").translate(_TO_ASCII_LOWER))
    if len(cache) < _NAME_CACHE_LIMIT:
        cache[raw] = name
    return name


class _LazyAttrRegion:
    """A proven-error-free attribute byte region, parsed on first access.

    Only regions with no glued attribute (missing-whitespace) and no
    case-insensitive duplicate name are deferred, so materialization never
    has parse errors or flag bits to report; region bytes are pure ASCII by
    the master pattern's construction.
    """

    __slots__ = ("source", "start", "end", "offs")

    def __init__(self, source: ByteSource, start: int, end: int, offs: int) -> None:
        self.source = source
        self.start = start
        self.end = end
        self.offs = offs

    def materialize(self) -> list[Attribute]:
        source = self.source
        source.decoded += self.end - self.start
        offs = self.offs
        attributes = []
        for match in _RE_FAST_ATTR_B.finditer(source.data, self.start, self.end):
            value_b = match[3]
            if value_b is None:
                value = ""
            else:
                if value_b[0] in (0x22, 0x27):  # quoted: strip the quotes
                    value_b = value_b[1:-1]
                value = value_b.decode("ascii")
            raw = match[2]
            name = _ATTR_NAMES.get(raw) or _intern_name(_ATTR_NAMES, raw)
            attributes.append(Attribute(name, value, match.start(2) - offs))
        return attributes


class BytesTokenizer(Tokenizer):
    """Pull-based tokenizer over raw UTF-8 bytes; see the module docstring.

    Overrides exactly the ``CHUNK_BREAK_SETS`` states (``BYTES_OVERRIDES``
    is machine-checked against ``REFERENCE_OVERRIDES``) plus the position /
    character plumbing.  Token and error streams are char-offset identical
    to ``Tokenizer(preprocess(decode(data)).text)`` for valid UTF-8 input;
    invalid UTF-8 raises :class:`UnicodeDecodeError` at the first scan that
    touches it.
    """

    def __init__(self, data: bytes) -> None:
        base = 3 if data.startswith(UTF8_BOM) else 0
        if base and data.startswith(UTF8_BOM, 3):
            # mirror the composed str pipeline: decode_bytes eats the byte
            # BOM, then preprocess strips one more leading U+FEFF
            base = 6
        if b"\r" in data:
            # bytes.replace returns the original object when nothing matches,
            # so normalization costs at most one copy per form present
            data = data.replace(b"\r\n", b"\n")
            if b"\r" in data:
                data = data.replace(b"\r", b"\n")
        self._src = ByteSource(data, base)
        self._base = base
        self._bpos = base
        self._extra = 0
        self._last_width = 1
        # byte position of the next non-ASCII byte at/after the scan point
        # (len(data) when none): runs ending before it are provably ASCII
        # without a per-run search.  Maintained monotonically — a stale
        # value (< the position being classified) triggers one re-search
        # from that position, so total search work stays linear.
        match = _NON_ASCII.search(data, base)
        self._na_pos = match.start() if match is not None else len(data)
        super().__init__("")

    # ------------------------------------------------- position accounting

    @property
    def pos(self) -> int:
        """Char-domain position: byte position minus BOM and continuation bytes."""
        return self._bpos - self._base - self._extra

    @pos.setter
    def pos(self, value: int) -> None:
        # inherited `self.pos ± k` sites only ever cross ASCII, where the
        # byte delta equals the char delta
        self._bpos += value - (self._bpos - self._base - self._extra)

    def _next(self) -> str | None:
        data = self._src.data
        bpos = self._bpos
        if bpos >= len(data):
            self._bpos = bpos + 1  # keep reconsume arithmetic consistent at EOF
            self._last_width = 1
            return None
        byte = data[bpos]
        if byte < 0x80:
            self._bpos = bpos + 1
            self._last_width = 1
            return _ASCII_CHR[byte]
        width = 2 if byte < 0xE0 else 3 if byte < 0xF0 else 4
        # raises UnicodeDecodeError on stray continuation / truncated /
        # overlong sequences — the incremental equivalent of the upfront
        # decode filter
        char = data[bpos : bpos + width].decode("utf-8")
        self._src.decoded += width
        self._bpos = bpos + width
        self._extra += width - 1
        self._last_width = width
        return char

    def _reconsume(self) -> None:
        width = self._last_width
        self._bpos -= width
        if width > 1:
            self._extra -= width - 1
            self._last_width = 1

    def _peek(self, count: int = 1) -> str:
        data = self._src.data
        bpos = self._bpos
        if count == 1:
            if bpos >= len(data):
                return ""
            byte = data[bpos]
            if byte < 0x80:
                return _ASCII_CHR[byte]
            # callers only test single-char peeks against ASCII sets; any
            # non-ASCII placeholder answers those tests identically
            return "�"
        window = data[bpos : bpos + 4 * count]
        try:
            return window.decode("utf-8")[:count]
        except UnicodeDecodeError:
            # a cut at the window edge decodes short; truly invalid bytes
            # will raise from the consuming scan that reaches them
            return window.decode("utf-8", "replace")[:count]

    # --------------------------------------------------- char data plumbing

    def _flush_chars(self) -> None:
        buffer = self._char_buffer
        if buffer:
            if len(buffer) == 1 and buffer[0].__class__ is str:
                token = Character(self._char_start, buffer[0])
            else:
                token = Character.from_parts(self._char_start, buffer)
            self._queue.append(token)
            self._char_buffer = []

    def _emit_eof(self) -> None:
        self._emit(EOF(offset=len(self._src.data) - self._base - self._extra))
        self._done = True

    def __iter__(self):
        # the inherited loop pays a Python-level ``popleft`` round-trip per
        # token; the bytes scanner fills the queue in large batches between
        # state calls, so snapshot each batch and let ``yield from`` hand
        # the tokens out through C-level tuple iteration instead
        queue = self._queue
        while True:
            if queue:
                batch = tuple(queue)
                queue.clear()
                yield from batch
            elif self._done:
                return
            else:
                self._state()

    def _is_ascii_run(self, start: int, end: int) -> bool:
        """True when ``data[start:end]`` is provably ASCII, refreshing the
        cached next-non-ASCII position when it has gone stale."""
        na_pos = self._na_pos
        if end <= na_pos:
            return True
        if na_pos < start:
            data = self._src.data
            match = _NON_ASCII.search(data, start)
            self._na_pos = na_pos = (
                match.start() if match is not None else len(data)
            )
            return end <= na_pos
        return False

    def _advance_na_pos(self, position: int) -> None:
        """Recompute the next-non-ASCII position from ``position``."""
        data = self._src.data
        match = _NON_ASCII.search(data, position)
        self._na_pos = match.start() if match is not None else len(data)

    def _run_part(self, start: int, end: int):
        """A char-buffer part for ``data[start:end]``: a lazy span when the
        run is pure ASCII, else the decoded (validated, accounted) str."""
        src = self._src
        if self._is_ascii_run(start, end):
            return (src, start, end)
        text = src.data[start:end].decode("utf-8")
        src.decoded += end - start
        self._extra += (end - start) - len(text)
        self._advance_na_pos(end)
        return text

    def _run_text(self, start: int, end: int) -> str:
        """Decode ``data[start:end]`` eagerly (names, comments, values)."""
        src = self._src
        src.decoded += end - start
        if self._is_ascii_run(start, end):
            return src.data[start:end].decode("ascii")
        text = src.data[start:end].decode("utf-8")
        self._extra += (end - start) - len(text)
        self._advance_na_pos(end)
        return text

    def _skip_run(self, start: int, end: int) -> None:
        """Account (and validate) a discarded run (bogus DOCTYPE content)."""
        if not self._is_ascii_run(start, end):
            text = self._src.data[start:end].decode("utf-8")
            self._extra += (end - start) - len(text)
            self._advance_na_pos(end)

    def _scan_run_b(self, run: re.Pattern[bytes]) -> str | None:
        """Bytes twin of ``Tokenizer._scan_run``: buffer the maximal run as a
        lazy part, consume and return the (always-ASCII) break character."""
        data = self._src.data
        bpos = self._bpos
        if bpos >= len(data):
            self._bpos = bpos + 1
            return None
        match = run.match(data, bpos)
        if match is not None:
            end = match.end()
            if not self._char_buffer:
                self._char_start = self.pos
            self._char_buffer.append(self._run_part(bpos, end))
            if end == len(data):
                self._bpos = end + 1
                return None
            bpos = end
        self._bpos = bpos + 1
        return _ASCII_CHR[data[bpos]]

    # --------------------------------------------------- character references

    def _consume_char_ref(self, return_state) -> None:
        in_attribute = return_state in (
            self._attribute_value_double_state,
            self._attribute_value_single_state,
            self._attribute_value_unquoted_state,
        )
        self._return_state = return_state
        result = consume_character_reference_bytes(
            self._src.data, self._bpos, in_attribute=in_attribute
        )
        if result.errors:
            # reference grammar is ASCII: window-relative offsets rebase
            # onto the current char position unchanged
            rebase = self.pos
            self.errors.extend(
                ParseError(error.code, error.offset + rebase, error.detail)
                for error in result.errors
            )
        if result.matched:
            self._bpos += result.consumed
            self._flush_char_ref(result.text)
        else:
            self._flush_char_ref("&")
        self._state = return_state

    # ------------------------------------------------------------ data state

    def _data_state(self) -> None:
        # the hottest loop in the repo: token classes, dict lookups and the
        # allocator (object.__new__ + direct slot writes instead of the
        # classes' __init__) are all hoisted into locals
        src = self._src
        data = src.data
        length = len(data)
        queue = self._queue
        append = queue.append
        buffer = self._char_buffer
        offs = self._base + self._extra  # char_pos(b) == b - offs
        bpos = self._bpos
        na_pos = self._na_pos
        master_finditer = _MASTER.finditer
        comment_match = _RE_FAST_COMMENT.match
        doctype_match = _RE_FAST_DOCTYPE.match
        fast_attr_match = _RE_FAST_ATTR_B.match
        tag_names_get = _TAG_NAMES.get
        entity_get = NAMED_ENTITY_BYTES.get
        new = object.__new__
        character_cls = Character
        start_cls = StartTag
        end_cls = EndTag
        lazy_cls = _LazyAttrRegion
        mode_tags = _MODE_SWITCH_TAGS
        # the scan rides a single finditer: because the master pattern
        # matches (possibly zero-width) at *every* position, the iterator
        # never skips a byte, and its C-level resume replaces a Python
        # ``match(data, bpos)`` round-trip per construct.  Slow paths that
        # consume input behind the iterator's back (comments, character
        # references) break out and restart it at the new position.
        while bpos < length:
            for match in master_finditer(data, bpos):
                end = match.end()
                text_end = match.end(1)
                if end != text_end:
                    group = match.lastindex
                    if group != 10:
                        # ----- tag construct (group 2, 3, 6 or 9): hot exit
                        if text_end > bpos:
                            if not buffer and text_end <= na_pos:
                                # pure-ASCII run straight into a tag — emit
                                # the Character with a bare span, skipping
                                # the buffer round-trip
                                character = new(character_cls)
                                character.offset = bpos - offs
                                character._data = None
                                character._parts = (src, bpos, text_end)
                                append(character)
                            else:
                                self._na_pos = na_pos
                                if not buffer:
                                    self._char_start = bpos - offs
                                buffer.append(self._run_part(bpos, text_end))
                                offs = self._base + self._extra
                                na_pos = self._na_pos
                                character = new(character_cls)
                                character.offset = self._char_start
                                if (
                                    len(buffer) == 1
                                    and buffer[0].__class__ is str
                                ):
                                    character._data = buffer[0]
                                    character._parts = None
                                else:
                                    character._data = None
                                    character._parts = buffer
                                append(character)
                                buffer = self._char_buffer = []
                        elif buffer:
                            character = new(character_cls)
                            character.offset = self._char_start
                            if len(buffer) == 1 and buffer[0].__class__ is str:
                                character._data = buffer[0]
                                character._parts = None
                            else:
                                character._data = None
                                character._parts = buffer
                            append(character)
                            buffer = self._char_buffer = []
                        if group == 3:  # </name ...>
                            raw = match[3]
                            name = tag_names_get(raw) or _intern_name(
                                _TAG_NAMES, raw
                            )
                            tag = new(end_cls)
                            tag.offset = text_end - offs
                            tag.name = name
                            tag.attributes = []
                            tag.self_closing = False
                            tag.end = end - offs
                            append(tag)
                            bpos = end
                            continue
                        if group == 2:  # <name> — lowercase bare start tag
                            raw = match[2]
                            name = tag_names_get(raw) or _intern_name(
                                _TAG_NAMES, raw
                            )
                            tag = new(start_cls)
                            tag.offset = text_end - offs
                            tag.name = name
                            tag._attributes = []
                            tag._lazy = None
                            tag.self_closing = False
                            tag.self_closing_acknowledged = False
                            tag.end = end - offs
                            append(tag)
                            self._last_start_tag = name
                            bpos = end
                            if name in mode_tags:
                                self._bpos = end
                                self._na_pos = na_pos
                                return
                            continue
                        if group == 6:  # <name attr>: exactly one attribute
                            raw = match[4]
                            name = tag_names_get(raw) or _intern_name(
                                _TAG_NAMES, raw
                            )
                            astart, aend = match.span(5)
                            tag = new(start_cls)
                            tag.offset = text_end - offs
                            tag.name = name
                            tag.self_closing = bool(match[6])
                            tag.self_closing_acknowledged = False
                            tag.end = end - offs
                            # one whitespace-separated attribute can be
                            # neither glued nor duplicated: defer with no
                            # probe at all
                            lazy = new(lazy_cls)
                            lazy.source = src
                            lazy.start = astart
                            lazy.end = aend
                            lazy.offs = offs
                            tag._attributes = None
                            tag._lazy = lazy
                            append(tag)
                            self._last_start_tag = name
                            bpos = end
                            if name in mode_tags:
                                self._bpos = end
                                self._na_pos = na_pos
                                return
                            continue
                        # group == 9: start tag with attribute region
                        raw = match[7]
                        name = tag_names_get(raw) or _intern_name(
                            _TAG_NAMES, raw
                        )
                        astart, aend = match.span(8)
                        tag = new(start_cls)
                        tag.offset = text_end - offs
                        tag.name = name
                        tag.self_closing = bool(match[9])
                        tag.self_closing_acknowledged = False
                        tag.end = end - offs
                        # inlined single-attribute probe fast path: the
                        # first attribute's separator is structurally
                        # non-empty, so a one-attribute region defers after
                        # a single match call
                        first = fast_attr_match(data, astart, aend)
                        if first is None:
                            tag._attributes = []
                            tag._lazy = None
                            if aend > astart:
                                # error offsets default to self.pos
                                self._bpos = end
                                self._parse_attributes(tag, astart, aend, offs)
                        elif first.end() == aend or self._probe_attr_rest(
                            data, first, aend
                        ):
                            lazy = new(lazy_cls)
                            lazy.source = src
                            lazy.start = astart
                            lazy.end = aend
                            lazy.offs = offs
                            tag._attributes = None
                            tag._lazy = lazy
                        else:
                            tag._attributes = []
                            tag._lazy = None
                            self._bpos = end
                            self._parse_attributes(tag, astart, aend, offs)
                        append(tag)
                        self._last_start_tag = name
                        bpos = end
                        if name in mode_tags:
                            self._bpos = end
                            self._na_pos = na_pos
                            return
                        continue
                    # ----- group == 10: &name; — well-formed named reference
                    if text_end > bpos:
                        self._na_pos = na_pos
                        if not buffer:
                            self._char_start = bpos - offs
                        buffer.append(self._run_part(bpos, text_end))
                        offs = self._base + self._extra
                        na_pos = self._na_pos
                    expansion = entity_get(match[10])
                    if expansion is None:  # unknown name: slow path decides
                        self._bpos = text_end + 1
                        self._consume_char_ref(self._data_state)
                        bpos = self._bpos
                        offs = self._base + self._extra
                        buffer = self._char_buffer
                        break  # restart the scan iterator at the new bpos
                    if not buffer:
                        # the state machine starts the char run *after* the
                        # reference is consumed (offset of its last char)
                        self._char_start = end - offs - 1
                    buffer.append(expansion)
                    bpos = end
                    continue
                # ----- no construct: a text run, then (next iteration, as
                # a zero-width match) the break byte or EOF it stopped at
                if text_end > bpos:
                    self._na_pos = na_pos
                    if not buffer:
                        self._char_start = bpos - offs
                    buffer.append(self._run_part(bpos, text_end))
                    offs = self._base + self._extra
                    na_pos = self._na_pos
                    bpos = text_end
                    continue
                if bpos >= length:
                    self._bpos = bpos + 1
                    self._na_pos = na_pos
                    self._emit_eof()
                    return
                byte = data[bpos]
                self._bpos = bpos + 1
                if byte == 0x3C:  # "<": try a whole comment, else slow path
                    comment = comment_match(data, bpos)
                    if comment is not None:
                        src.decoded += comment.end(1) - comment.start(1)
                        if buffer:
                            character = new(character_cls)
                            character.offset = self._char_start
                            if len(buffer) == 1 and buffer[0].__class__ is str:
                                character._data = buffer[0]
                                character._parts = None
                            else:
                                character._data = None
                                character._parts = buffer
                            append(character)
                            buffer = self._char_buffer = []
                        append(Comment(bpos - offs, comment[1].decode("ascii")))
                        bpos = comment.end()
                        break  # restart the scan iterator past the comment
                    doctype = doctype_match(data, bpos)
                    if doctype is not None:
                        if buffer:
                            character = new(character_cls)
                            character.offset = self._char_start
                            if len(buffer) == 1 and buffer[0].__class__ is str:
                                character._data = buffer[0]
                                character._parts = None
                            else:
                                character._data = None
                                character._parts = buffer
                            append(character)
                            buffer = self._char_buffer = []
                        append(
                            Doctype(
                                offset=doctype.start(1) - offs, name="html"
                            )
                        )
                        bpos = doctype.end()
                        break  # restart the scan iterator past the doctype
                    self._tag_start_offset = bpos - offs
                    self._state = self._tag_open_state
                    self._na_pos = na_pos
                    return
                if byte == 0x26:  # "&": numeric/legacy/bare reference
                    self._consume_char_ref(self._data_state)
                    bpos = self._bpos
                    offs = self._base + self._extra
                    buffer = self._char_buffer
                    break  # restart the scan iterator at the new bpos
                # "\x00" — the only remaining break byte; the iterator's
                # own zero-width bump advances exactly one byte with us
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                if not buffer:
                    self._char_start = bpos - offs
                buffer.append("\x00")
                bpos += 1
        self._bpos = bpos + 1
        self._na_pos = na_pos
        self._emit_eof()

    @staticmethod
    def _probe_attr_region(data: bytes, start: int, end: int) -> bool:
        """True when the region can defer: no glued attribute, no duplicate
        (case-insensitive) name — i.e. materialization cannot owe errors.

        The first attribute's separator is guaranteed non-empty (the master
        pattern only enters a region with whitespace, and the quoted-value
        lookbehind cannot fire at the region start), so a region holding
        exactly one attribute — the common case by far — defers with a
        single match call.
        """
        first = _RE_FAST_ATTR_B.match(data, start, end)
        if first is None or first.end() == end:
            return True
        return BytesTokenizer._probe_attr_rest(data, first, end)

    @staticmethod
    def _probe_attr_rest(data: bytes, first: re.Match[bytes], end: int) -> bool:
        """The multi-attribute half of :meth:`_probe_attr_region`, resuming
        after an already-matched ``first`` attribute."""
        # bytes.lower() is exactly ASCII-lower; the islower() guard skips
        # the copy for the (overwhelmingly common) already-lowercase names
        name = first[2]
        seen = {name if name.islower() else name.lower()}
        for match in _RE_FAST_ATTR_B.finditer(data, first.end(), end):
            if not match[1]:
                return False
            name = match[2]
            if not name.islower():
                name = name.lower()
            if name in seen:
                return False
            seen.add(name)
        return True

    def _parse_attributes(self, tag: StartTag, start: int, end: int, offs: int) -> None:
        """Eager region parse, mirroring ``Tokenizer._fast_tag``'s attribute
        loop (including the one-attribute deferral of duplicate reports)."""
        data = self._src.data
        self._src.decoded += end - start
        attrs = tag.attributes
        seen: set[str] = set()
        pending_dup: tuple[str, int] | None = None
        for match in _RE_FAST_ATTR_B.finditer(data, start, end):
            name_start = match.start(2) - offs
            glued = match.start(1) == match.start(2)
            if glued:
                self._error(
                    ErrorCode.MISSING_WHITESPACE_BETWEEN_ATTRIBUTES,
                    offset=name_start + 1,
                )
            if pending_dup is not None:
                self._error(
                    ErrorCode.DUPLICATE_ATTRIBUTE,
                    detail=pending_dup[0],
                    offset=pending_dup[1],
                )
                pending_dup = None
            value_b = match[3]
            if value_b is None:
                value = ""
            else:
                if value_b[0] in (0x22, 0x27):
                    value_b = value_b[1:-1]
                value = value_b.decode("ascii")
            raw = match[2]
            attr_name = _ATTR_NAMES.get(raw) or _intern_name(_ATTR_NAMES, raw)
            attr = object.__new__(Attribute)
            attr.name = attr_name
            attr.value = value
            attr.offset = name_start
            attr.duplicate = False
            attr.preceded_by_solidus = False
            attr.missing_preceding_space = glued
            if attr_name in seen:
                attr.duplicate = True
                pending_dup = (attr_name, name_start)
            else:
                seen.add(attr_name)
            attrs.append(attr)
        if pending_dup is not None:
            self._error(
                ErrorCode.DUPLICATE_ATTRIBUTE,
                detail=pending_dup[0],
                offset=pending_dup[1],
            )

    # ------------------------------------------------------- text-ish states

    def _rcdata_state(self) -> None:
        char = self._scan_run_b(_RUN_RCDATA_B)
        if char is None:
            self._emit_eof()
        elif char == "&":
            self._consume_char_ref(self._rcdata_state)
        elif char == "<":
            self._state = self._rcdata_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _rawtext_state(self) -> None:
        char = self._scan_run_b(_RUN_RAWTEXT_B)
        if char is None:
            self._emit_eof()
        elif char == "<":
            self._state = self._rawtext_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _script_data_state(self) -> None:
        char = self._scan_run_b(_RUN_SCRIPT_DATA_B)
        if char is None:
            self._emit_eof()
        elif char == "<":
            self._state = self._script_data_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _plaintext_state(self) -> None:
        char = self._scan_run_b(_RUN_PLAINTEXT_B)
        if char is None:
            self._emit_eof()
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _script_data_escaped_state(self) -> None:
        char = self._scan_run_b(_RUN_SCRIPT_ESCAPED_B)
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_escaped_dash_state
        elif char == "<":
            self._state = self._script_data_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    def _script_data_double_escaped_state(self) -> None:
        char = self._scan_run_b(_RUN_SCRIPT_DOUBLE_ESCAPED_B)
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_double_escaped_dash_state
        elif char == "<":
            self._emit_char("<")
            self._state = self._script_data_double_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)

    # ------------------------------------------------------------ tag states

    def _tag_name_state(self) -> None:
        tag = self._current_tag
        assert tag is not None
        data = self._src.data
        while True:
            match = _RUN_TAG_NAME_B.match(data, self._bpos)
            if match is not None:
                tag.name += self._run_text(match.start(), match.end()).translate(
                    _TO_ASCII_LOWER
                )
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char in "\t\n\f ":
                self._state = self._before_attribute_name_state
                return
            if char == "/":
                self._state = self._self_closing_start_tag_state
                return
            if char == ">":
                self._emit_current_tag()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                tag.name += _REPLACEMENT

    def _attribute_name_state(self) -> None:
        attr = self._current_attr
        assert attr is not None
        data = self._src.data
        while True:
            match = _RUN_ATTR_NAME_B.match(data, self._bpos)
            if match is not None:
                attr.name += self._run_text(match.start(), match.end()).translate(
                    _TO_ASCII_LOWER
                )
                self._bpos = match.end()
            char = self._next()
            if char is None or char in "/>" or char in "\t\n\f ":
                self._reconsume()
                self._state = self._after_attribute_name_state
                return
            if char == "=":
                self._state = self._before_attribute_value_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.name += _REPLACEMENT
            elif char in "\"'<":
                self._error(
                    ErrorCode.UNEXPECTED_CHARACTER_IN_ATTRIBUTE_NAME, detail=char
                )
                attr.name += char

    def _attribute_value_double_state(self) -> None:
        self._quoted_value_bytes(
            '"', _RUN_ATTR_VALUE_DOUBLE_B, self._attribute_value_double_state
        )

    def _attribute_value_single_state(self) -> None:
        self._quoted_value_bytes(
            "'", _RUN_ATTR_VALUE_SINGLE_B, self._attribute_value_single_state
        )

    def _quoted_value_bytes(self, quote: str, run: re.Pattern[bytes], state) -> None:
        attr = self._current_attr
        assert attr is not None
        data = self._src.data
        while True:
            match = run.match(data, self._bpos)
            if match is not None:
                attr.value += self._run_text(match.start(), match.end())
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char == quote:
                self._state = self._after_attribute_value_quoted_state
                return
            if char == "&":
                self._consume_char_ref(state)
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.value += _REPLACEMENT

    def _attribute_value_unquoted_state(self) -> None:
        attr = self._current_attr
        assert attr is not None
        data = self._src.data
        while True:
            match = _RUN_ATTR_VALUE_UNQUOTED_B.match(data, self._bpos)
            if match is not None:
                attr.value += self._run_text(match.start(), match.end())
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char in "\t\n\f ":
                self._state = self._before_attribute_name_state
                return
            if char == "&":
                self._consume_char_ref(self._attribute_value_unquoted_state)
                return
            if char == ">":
                self._emit_current_tag()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.value += _REPLACEMENT
            elif char in "\"'<=`":
                self._error(
                    ErrorCode.UNEXPECTED_CHARACTER_IN_UNQUOTED_ATTRIBUTE_VALUE,
                    detail=char,
                )
                attr.value += char

    # -------------------------------------------------------------- comments

    def _comment_state(self) -> None:
        comment = self._current_comment
        assert comment is not None
        data = self._src.data
        while True:
            match = _RUN_COMMENT_B.match(data, self._bpos)
            if match is not None:
                comment.data += self._run_text(match.start(), match.end())
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_COMMENT)
                self._emit_comment()
                self._emit_eof()
                return
            if char == "<":
                comment.data += char
                self._state = self._comment_less_than_state
                return
            if char == "-":
                self._state = self._comment_end_dash_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                comment.data += _REPLACEMENT

    def _bogus_comment_state(self) -> None:
        comment = self._current_comment
        assert comment is not None
        data = self._src.data
        while True:
            match = _RUN_BOGUS_COMMENT_B.match(data, self._bpos)
            if match is not None:
                comment.data += self._run_text(match.start(), match.end())
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._emit(comment)
                self._current_comment = None
                self._emit_eof()
                return
            if char == ">":
                self._emit(comment)
                self._current_comment = None
                self._state = self._data_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                comment.data += _REPLACEMENT

    # --------------------------------------------------------------- doctype

    def _doctype_name_state(self) -> None:
        doctype = self._current_doctype
        assert doctype is not None
        data = self._src.data
        while True:
            match = _RUN_DOCTYPE_NAME_B.match(data, self._bpos)
            if match is not None:
                doctype.name += self._run_text(match.start(), match.end()).translate(
                    _TO_ASCII_LOWER
                )
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_DOCTYPE)
                doctype.force_quirks = True
                self._emit(doctype)
                self._current_doctype = None
                self._emit_eof()
                return
            if char in "\t\n\f ":
                self._state = self._after_doctype_name_state
                return
            if char == ">":
                self._emit(doctype)
                self._current_doctype = None
                self._state = self._data_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                doctype.name += _REPLACEMENT

    def _bogus_doctype_state(self) -> None:
        data = self._src.data
        while True:
            match = _RUN_BOGUS_DOCTYPE_B.match(data, self._bpos)
            if match is not None:
                # content is discarded wholesale (spec 13.2.5.68), but the
                # bytes must still be validated and width-accounted
                self._skip_run(match.start(), match.end())
                self._bpos = match.end()
            char = self._next()
            if char is None:
                self._emit_doctype(at_eof=True)
                return
            if char == ">":
                self._emit_doctype()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)

    # ------------------------------------------------------------------ CDATA

    def _cdata_section_state(self) -> None:
        while True:
            char = self._scan_run_b(_RUN_CDATA_B)
            if char is None:
                self._error(ErrorCode.EOF_IN_CDATA)
                self._emit_eof()
                return
            if char == "]":
                if self._peek(2) == "]>":
                    self.pos += 2
                    self._state = self._data_state
                    return
                self._emit_char("]")

    # ------------------------------------------------------------- reporting

    @property
    def decoded_bytes(self) -> int:
        """Input bytes materialized as str so far (lazy spans count on read)."""
        return self._src.decoded

    @property
    def input_bytes(self) -> int:
        """Document payload size in bytes (after BOM skip / CR normalization)."""
        return self._src.payload_length()


#: the chunked states this class re-implements over bytes; compared against
#: ``REFERENCE_OVERRIDES`` (== ``CHUNK_BREAK_SETS``) by the tier-1
#: equivalence test and the staticcheck ``state-machine`` pass, so the three
#: scanners stay in lock-step.
BYTES_OVERRIDES: frozenset[str] = frozenset(
    name
    for name in vars(BytesTokenizer)
    if name.endswith("_state") and not name.startswith("__")
)


def tokenize_bytes(data: bytes) -> tuple[list[Token], list[ParseError]]:
    """Tokenize raw UTF-8 ``data`` fully in the data state.

    The bytes twin of :func:`repro.html.tokenizer.tokenize`; raises
    :class:`UnicodeDecodeError` when ``data`` is not valid UTF-8.
    """
    tokenizer = BytesTokenizer(data)
    tokens = list(tokenizer)
    return tokens, tokenizer.errors


__all__ = [
    "BytesTokenizer",
    "BYTES_OVERRIDES",
    "UTF8_BOM",
    "tokenize_bytes",
]
