"""HTML serialization (HTML spec section 13.3).

Serializing a parsed DOM back to markup is the core of the paper's proposed
automatic repair for FB1/FB2 (section 4.4): "repairing these issues could be
automated by serializing the entire document with the current HTML parser
and deserializing it again.  The syntax would be fixed, but the semantics
would still be broken."  The auto-fixer in :mod:`repro.core.autofix` uses
this module for exactly that round-trip.
"""
from __future__ import annotations

from .dom import (
    CommentNode,
    Document,
    DocumentFragment,
    DocumentType,
    Element,
    Node,
    Text,
)

#: Void elements never get an end tag (spec 13.1.2).
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "basefont", "bgsound", "br", "col", "embed", "frame",
        "hr", "img", "input", "keygen", "link", "meta", "param", "source",
        "track", "wbr",
    }
)

#: Elements whose text children are serialized raw (no escaping).
RAW_TEXT_ELEMENTS = frozenset(
    {"style", "script", "xmp", "iframe", "noembed", "noframes", "plaintext"}
)


def _escape_text(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("\xa0", "&nbsp;")
        .replace("<", "&lt;").replace(">", "&gt;")
    )


def _escape_attribute(value: str) -> str:
    return (
        value.replace("&", "&amp;").replace("\xa0", "&nbsp;").replace('"', "&quot;")
    )


def serialize(node: Node) -> str:
    """Serialize a node tree to HTML per the spec's serialization algorithm."""
    parts: list[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node: Node, parts: list[str]) -> None:
    if isinstance(node, (Document, DocumentFragment)):
        for child in node.children:
            _serialize_node(child, parts)
    else:
        _serialize_node(node, parts)


def _serialize_node(node: Node, parts: list[str]) -> None:
    # Iterative with an explicit work stack: parsed trees can nest
    # thousands of elements deep, far past the recursion limit.  Each
    # stack item is either a node to open or a literal string (a pending
    # end tag) to emit.
    stack: list[Node | str] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        if isinstance(item, DocumentType):
            parts.append(f"<!DOCTYPE {item.name}>")
        elif isinstance(item, CommentNode):
            parts.append(f"<!--{item.data}-->")
        elif isinstance(item, Text):
            parent = item.parent
            if isinstance(parent, Element) and parent.name in RAW_TEXT_ELEMENTS:
                parts.append(item.data)
            else:
                parts.append(_escape_text(item.data))
        elif isinstance(item, Element):
            _open_element(item, parts)
            if item.is_html() and item.name in VOID_ELEMENTS:
                continue
            stack.append(f"</{item.name}>")
            stack.extend(reversed(item.children))
        elif isinstance(item, (Document, DocumentFragment)):
            stack.extend(reversed(item.children))


def _open_element(element: Element, parts: list[str]) -> None:
    parts.append(f"<{element.name}")
    for name, value in element.attributes.items():
        if value == "":
            parts.append(f" {name}=\"\"")
        else:
            parts.append(f' {name}="{_escape_attribute(value)}"')
    parts.append(">")


def inner_html(node: Node) -> str:
    """Serialize only the children of ``node`` (the innerHTML getter)."""
    parts: list[str] = []
    for child in node.children:
        _serialize_node(child, parts)
    return "".join(parts)
