"""Byte-stream decoding and input-stream preprocessing (HTML spec 13.2.3).

Two responsibilities, mirroring the first two boxes of the parsing pipeline
described in the paper's section 2.1:

* the *Byte Stream Decoder* turns raw bytes into characters.  Following the
  paper's methodology (section 4.1), only documents that decode as UTF-8 are
  analysed; everything else is filtered out rather than guessed at.
* the *Input Stream Preprocessor* normalizes newlines: every CRLF pair and
  every lone CR becomes a single LF, because CR is not allowed to reach the
  tokenizer.
"""
from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import ErrorCode, ParseError

_BOM = "﻿"
#: the UTF-8 byte-order mark; shared by :func:`decode_bytes`, the encoding
#: sniffer and the bytes-domain tokenizer (which skips it by offset)
UTF8_BOM = b"\xef\xbb\xbf"

#: one pass handles both newline forms: ``\r\n?`` consumes a CRLF pair or a
#: lone CR and rewrites either to LF
_RE_CR = re.compile("\r\n?")

#: C0/C1 controls that are parse errors when they appear in the input stream
#: (spec 13.2.3.5).  TAB, LF, FF, CR and NUL are handled separately.
_CONTROL_CHARS = frozenset(
    chr(c) for c in (*range(0x01, 0x09), 0x0B, *range(0x0E, 0x20), 0x7F)
)


def decode_bytes(data: bytes) -> str | None:
    """Decode ``data`` as UTF-8, honouring a BOM; return None if not UTF-8.

    The paper's framework "filters out documents that are not UTF-8
    encodable" — a ``None`` return is that filter signal.
    """
    if data.startswith(UTF8_BOM):
        data = data[3:]
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError:
        return None


@dataclass(slots=True)
class PreprocessResult:
    text: str
    errors: list[ParseError]


def preprocess(text: str, *, collect_errors: bool = False) -> PreprocessResult:
    """Normalize an input stream per spec 13.2.3.5.

    Replaces CRLF and CR with LF and strips a leading BOM.  When
    ``collect_errors`` is true, also records control-character /
    surrogate-in-input-stream parse errors (these are conformance errors
    only; the characters themselves are passed through unchanged, as the
    spec requires).

    This is the str-caller fallback path — the bytes-domain tokenizer folds
    the same normalization into its scan — so it is kept allocation-lean:
    no work at all when neither a BOM nor a CR appears, at most one slice
    for the BOM, and one combined substitution pass for both newline forms
    (the old ``.replace("\\r\\n", ...).replace("\\r", ...)`` chain copied
    the whole document twice whenever a lone CR followed any CRLF).
    """
    if text.startswith(_BOM):
        text = text[1:]
    if "\r" in text:
        text = _RE_CR.sub("\n", text)

    errors: list[ParseError] = []
    if collect_errors:
        for index, char in enumerate(text):
            if char in _CONTROL_CHARS:
                errors.append(
                    ParseError(ErrorCode.CONTROL_CHARACTER_IN_INPUT_STREAM, index)
                )
            elif "\ud800" <= char <= "\udfff":
                errors.append(ParseError(ErrorCode.SURROGATE_IN_INPUT_STREAM, index))
            elif _is_noncharacter(char):
                errors.append(
                    ParseError(ErrorCode.NONCHARACTER_IN_INPUT_STREAM, index)
                )
    return PreprocessResult(text=text, errors=errors)


def _is_noncharacter(char: str) -> bool:
    code = ord(char)
    if 0xFDD0 <= code <= 0xFDEF:
        return True
    return (code & 0xFFFE) == 0xFFFE and code <= 0x10FFFF
