"""Encoding sniffing (HTML spec 13.2.3.2: the meta-charset prescan).

The paper's framework deliberately does *not* guess encodings — "figuring
out the exact encoding without knowing the context is impossible" — and
filters to UTF-8-decodable documents instead.  This module implements what
a browser's byte-stream decoder would do anyway (BOM detection plus the
1024-byte meta prescan), so the pipeline can *report* declared encodings
(Common Crawl's own statistics say >90% of pages are UTF-8) while the
filter stays byte-exact.
"""
from __future__ import annotations

import re
from dataclasses import dataclass

from .preprocessor import UTF8_BOM

PRESCAN_BYTES = 1024

_BOMS = (
    (UTF8_BOM, "utf-8"),
    (b"\xfe\xff", "utf-16-be"),
    (b"\xff\xfe", "utf-16-le"),
)

_META_RE = re.compile(rb"<meta[\s/]", re.IGNORECASE)
_COMMENT_RE = re.compile(rb"<!--.*?-->", re.DOTALL)
_CHARSET_ATTR_RE = re.compile(
    rb"charset\s*=\s*(\"([^\"]*)\"|'([^']*)'|([^\s;\"'>]+))",
    re.IGNORECASE,
)
_HTTP_EQUIV_RE = re.compile(rb"http-equiv\s*=\s*[\"']?content-type", re.IGNORECASE)

#: label → canonical name, per the Encoding Standard's most common labels
_LABELS = {
    "utf-8": "utf-8", "utf8": "utf-8", "unicode-1-1-utf-8": "utf-8",
    "iso-8859-1": "windows-1252", "latin1": "windows-1252",
    "iso8859-1": "windows-1252", "l1": "windows-1252",
    "windows-1252": "windows-1252", "ascii": "windows-1252",
    "us-ascii": "windows-1252", "iso-8859-15": "iso-8859-15",
    "windows-1251": "windows-1251", "koi8-r": "koi8-r",
    "shift_jis": "shift_jis", "shift-jis": "shift_jis", "sjis": "shift_jis",
    "euc-jp": "euc-jp", "gb2312": "gbk", "gbk": "gbk", "gb18030": "gb18030",
    "big5": "big5", "euc-kr": "euc-kr", "iso-8859-2": "iso-8859-2",
    "windows-1250": "windows-1250", "windows-1254": "windows-1254",
    "iso-8859-9": "windows-1254", "utf-16": "utf-16-le",
    "utf-16le": "utf-16-le", "utf-16be": "utf-16-be",
}


def canonical_label(label: str) -> str | None:
    """Resolve an encoding label the way the Encoding Standard would."""
    return _LABELS.get(label.strip().lower())


@dataclass(frozen=True, slots=True)
class SniffResult:
    """Outcome of encoding detection for one document."""

    encoding: str | None   # canonical name, None when nothing was declared
    source: str            # 'bom' | 'http' | 'meta' | 'none'


def sniff_encoding(
    data: bytes, *, http_content_type: str | None = None
) -> SniffResult:
    """Detect the declared encoding of ``data``.

    Precedence per spec: BOM beats the HTTP ``Content-Type`` charset,
    which beats an in-document ``<meta>`` declaration found by the
    1024-byte prescan.
    """
    for bom, encoding in _BOMS:
        if data.startswith(bom):
            return SniffResult(encoding, "bom")
    if http_content_type:
        charset = _charset_from_content_type(http_content_type)
        if charset:
            canonical = canonical_label(charset)
            if canonical:
                return SniffResult(canonical, "http")
    meta = _prescan(data[:PRESCAN_BYTES])
    if meta:
        return SniffResult(meta, "meta")
    return SniffResult(None, "none")


def _charset_from_content_type(content_type: str) -> str | None:
    for part in content_type.split(";")[1:]:
        name, _, value = part.partition("=")
        if name.strip().lower() == "charset" and value:
            return value.strip().strip("\"'")
    return None


def _prescan(head: bytes) -> str | None:
    """Simplified spec prescan: find charset in meta tags, skip comments."""
    head = _COMMENT_RE.sub(b"", head)
    for match in _META_RE.finditer(head):
        tag_end = head.find(b">", match.start())
        tag = head[match.start() : tag_end if tag_end != -1 else len(head)]
        charset_match = _CHARSET_ATTR_RE.search(tag)
        if not charset_match:
            continue
        # For http-equiv metas the charset sits inside content="...";
        # the regex finds it either way.  Plain charset= attributes on
        # non-content-type http-equiv metas are still honoured, matching
        # browser behaviour.
        raw = (
            charset_match.group(2)
            or charset_match.group(3)
            or charset_match.group(4)
            or b""
        )
        try:
            label = raw.decode("ascii")
        except UnicodeDecodeError:
            continue
        canonical = canonical_label(label)
        if canonical:
            # Per spec, utf-16 meta declarations are read as utf-8 (the
            # prescan itself proved the bytes are ASCII-compatible).
            if canonical.startswith("utf-16"):
                return "utf-8"
            return canonical
    return None
