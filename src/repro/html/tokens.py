"""Token value types emitted by the HTML tokenizer (HTML spec section 13.2.5).

The tokenizer produces a flat stream of these tokens; the tree builder
consumes them.  Violation rules may also inspect the raw token stream (for
example DE3 checks attribute values on :class:`StartTag` tokens directly).

:class:`Character` and :class:`StartTag` are *lazy-capable*: the bytes-domain
tokenizer (:mod:`repro.html.bytes_tokenizer`) hands them byte spans into a
shared :class:`ByteSource` instead of decoded strings, and the text is only
materialized when something actually reads ``.data`` / ``.attributes``.  The
str-domain tokenizer keeps constructing them eagerly; both forms compare
equal when their materialized content is equal, so equivalence tests see one
token vocabulary.
"""
from __future__ import annotations

from dataclasses import dataclass, field


class ByteSource:
    """A shared byte buffer plus decode accounting for lazy token spans.

    ``decoded`` counts how many input bytes were materialized as ``str``
    (by run decoding, lazy-span access, or whole-source access); the bench
    snapshot's ``bytes_decoded_ratio`` divides it by :meth:`payload_length`
    to prove the lazy path is not silently eager.
    """

    __slots__ = ("data", "base", "decoded")

    def __init__(self, data: bytes, base: int = 0) -> None:
        self.data = data
        #: start offset of document content (skips an encoding BOM)
        self.base = base
        self.decoded = 0

    def payload_length(self) -> int:
        return len(self.data) - self.base

    def materialize(self, start: int, end: int) -> str:
        """Decode one ASCII span (bytes tokenizer only emits ASCII spans)."""
        self.decoded += end - start
        return self.data[start:end].decode("ascii")

    def materialize_all(self) -> str:
        """Decode the whole (BOM-stripped, CR-normalized) document."""
        self.decoded += len(self.data) - self.base
        return self.data[self.base :].decode("utf-8")


@dataclass(slots=True)
class Attribute:
    """One attribute on a start tag.

    ``duplicate`` is set when the attribute's name collided with an earlier
    attribute on the same tag (a ``duplicate-attribute`` parse error); per
    spec the duplicate is dropped from the element, but we keep it on the
    token so that rules such as DM3 can inspect what was discarded.
    """

    name: str
    value: str = ""
    offset: int = 0
    duplicate: bool = False
    #: True when the whitespace before this attribute was a '/' that the
    #: tokenizer treated as a separator (unexpected-solidus-in-tag, FB1).
    preceded_by_solidus: bool = False
    #: True when this attribute directly followed a quoted value with no
    #: whitespace (missing-whitespace-between-attributes, FB2).
    missing_preceding_space: bool = False


@dataclass(slots=True)
class Token:
    """Base class for all tokens."""

    offset: int = 0


@dataclass(slots=True)
class Doctype(Token):
    name: str = ""
    public_id: str | None = None
    system_id: str | None = None
    force_quirks: bool = False


class StartTag(Token):
    """A start tag; ``attributes`` may be a lazy byte region until read.

    The bytes tokenizer's batch loop only defers attribute parsing for tag
    regions it proved error-free (no glued attributes, no duplicates), so
    lazy materialization never has parse errors to report.
    """

    __slots__ = ("name", "_attributes", "_lazy", "self_closing",
                 "self_closing_acknowledged", "end")

    def __init__(
        self,
        offset: int = 0,
        name: str = "",
        attributes: list[Attribute] | None = None,
        self_closing: bool = False,
        self_closing_acknowledged: bool = False,
        end: int = 0,
    ) -> None:
        self.offset = offset
        self.name = name
        self._attributes = [] if attributes is None else attributes
        self._lazy = None
        self.self_closing = self_closing
        #: set by the tree builder when the self-closing flag was not acknowledged
        self.self_closing_acknowledged = self_closing_acknowledged
        #: source offset one past the closing '>' (0 when synthesized)
        self.end = end

    @classmethod
    def with_lazy_attributes(
        cls, offset: int, name: str, lazy, end: int, self_closing: bool = False
    ) -> "StartTag":
        tag = cls.__new__(cls)
        tag.offset = offset
        tag.name = name
        tag._attributes = None
        tag._lazy = lazy
        tag.self_closing = self_closing
        tag.self_closing_acknowledged = False
        tag.end = end
        return tag

    @property
    def attributes(self) -> list[Attribute]:
        attributes = self._attributes
        if attributes is None:
            attributes = self._attributes = self._lazy.materialize()
            self._lazy = None
        return attributes

    @attributes.setter
    def attributes(self, value: list[Attribute]) -> None:
        self._attributes = value
        self._lazy = None

    def __repr__(self) -> str:  # mirrors the former dataclass repr
        return (
            f"StartTag(offset={self.offset!r}, name={self.name!r}, "
            f"attributes={self.attributes!r}, self_closing={self.self_closing!r}, "
            f"self_closing_acknowledged={self.self_closing_acknowledged!r}, "
            f"end={self.end!r})"
        )

    def __eq__(self, other) -> bool:
        if other.__class__ is not StartTag:
            return NotImplemented
        return (
            self.offset == other.offset
            and self.name == other.name
            and self.self_closing == other.self_closing
            and self.self_closing_acknowledged == other.self_closing_acknowledged
            and self.end == other.end
            and self.attributes == other.attributes
        )

    __hash__ = None  # match the former eq=True dataclass

    def attr(self, name: str) -> str | None:
        """Return the value of the first (spec-visible) attribute ``name``."""
        for attribute in self.attributes:
            if attribute.name == name and not attribute.duplicate:
                return attribute.value
        return None

    def has_attr(self, name: str) -> bool:
        return self.attr(name) is not None

    def visible_attributes(self) -> list[Attribute]:
        """Attributes the DOM will keep (duplicates removed, per spec)."""
        return [a for a in self.attributes if not a.duplicate]


@dataclass(slots=True)
class EndTag(Token):
    name: str = ""
    attributes: list[Attribute] = field(default_factory=list)
    self_closing: bool = False
    #: source offset one past the closing '>' (0 when synthesized)
    end: int = 0


@dataclass(slots=True)
class Comment(Token):
    data: str = ""


#: the spec's ASCII whitespace set, as bytes (for decode-free span tests)
_WS_BYTES = b"\t\n\f\r "


class Character(Token):
    """A run of character data (the spec emits one char at a time; we batch).

    ``data`` is a property: the bytes tokenizer builds Character tokens from
    *parts* — ASCII byte spans ``(source, start, end)`` into a shared
    :class:`ByteSource`, interleaved with already-decoded ``str`` pieces
    (entity expansions, non-ASCII runs) — and the join only happens when a
    rule footprint or the tree builder reads ``.data``.  The hot single-run
    case stores the span tuple itself in ``_parts`` (no wrapping list).
    """

    __slots__ = ("_data", "_parts")

    def __init__(self, offset: int = 0, data: str = "") -> None:
        self.offset = offset
        self._data = data
        self._parts = None

    @classmethod
    def from_parts(cls, offset: int, parts: list) -> "Character":
        token = cls.__new__(cls)
        token.offset = offset
        token._data = None
        token._parts = parts
        return token

    @property
    def data(self) -> str:
        data = self._data
        if data is None:
            parts = self._parts
            if parts.__class__ is tuple:  # a bare (source, start, end) span
                data = parts[0].materialize(parts[1], parts[2])
            elif len(parts) == 1:
                part = parts[0]
                data = (
                    part
                    if part.__class__ is str
                    else part[0].materialize(part[1], part[2])
                )
            else:
                data = "".join(
                    part if part.__class__ is str
                    else part[0].materialize(part[1], part[2])
                    for part in parts
                )
            self._data = data
            self._parts = None
        return data

    @data.setter
    def data(self, value: str) -> None:
        self._data = value
        self._parts = None

    def __repr__(self) -> str:  # mirrors the former dataclass repr
        return f"Character(offset={self.offset!r}, data={self.data!r})"

    def __eq__(self, other) -> bool:
        if other.__class__ is not Character:
            return NotImplemented
        return self.offset == other.offset and self.data == other.data

    __hash__ = None  # match the former eq=True dataclass

    # ---------------------------------------------- decode-free predicates
    #
    # The tree builder's character handling only needs three facts about a
    # run — "is it all whitespace", "does it contain NUL", "does it start
    # with a newline" — and all three are answerable on the raw byte spans
    # without materializing the text.  Each falls back to the decoded
    # string when one already exists.

    def is_whitespace(self) -> bool:
        data = self._data
        if data is not None:
            return not data.strip("\t\n\f\r ")
        parts = self._parts
        if parts.__class__ is tuple:
            source, start, end = parts
            return not source.data[start:end].translate(None, _WS_BYTES)
        for part in parts:
            if part.__class__ is str:
                if part.strip("\t\n\f\r "):
                    return False
            elif part[0].data[part[1] : part[2]].translate(None, _WS_BYTES):
                return False
        return True

    def has_nul(self) -> bool:
        data = self._data
        if data is not None:
            return "\x00" in data
        parts = self._parts
        if parts.__class__ is tuple:
            source, start, end = parts
            return source.data.find(b"\x00", start, end) >= 0
        for part in parts:
            if part.__class__ is str:
                if "\x00" in part:
                    return True
            elif part[0].data.find(b"\x00", part[1], part[2]) >= 0:
                return True
        return False

    def starts_with_lf(self) -> bool:
        data = self._data
        if data is not None:
            return data.startswith("\n")
        parts = self._parts
        part = parts if parts.__class__ is tuple else parts[0]
        if part.__class__ is str:
            if part:
                return part.startswith("\n")
        elif part[1] < part[2]:
            return part[0].data[part[1]] == 0x0A
        # degenerate empty first part: answer on the materialized text
        return self.data.startswith("\n")


@dataclass(slots=True)
class EOF(Token):
    pass
