"""Token value types emitted by the HTML tokenizer (HTML spec section 13.2.5).

The tokenizer produces a flat stream of these tokens; the tree builder
consumes them.  Violation rules may also inspect the raw token stream (for
example DE3 checks attribute values on :class:`StartTag` tokens directly).
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Attribute:
    """One attribute on a start tag.

    ``duplicate`` is set when the attribute's name collided with an earlier
    attribute on the same tag (a ``duplicate-attribute`` parse error); per
    spec the duplicate is dropped from the element, but we keep it on the
    token so that rules such as DM3 can inspect what was discarded.
    """

    name: str
    value: str = ""
    offset: int = 0
    duplicate: bool = False
    #: True when the whitespace before this attribute was a '/' that the
    #: tokenizer treated as a separator (unexpected-solidus-in-tag, FB1).
    preceded_by_solidus: bool = False
    #: True when this attribute directly followed a quoted value with no
    #: whitespace (missing-whitespace-between-attributes, FB2).
    missing_preceding_space: bool = False


@dataclass(slots=True)
class Token:
    """Base class for all tokens."""

    offset: int = 0


@dataclass(slots=True)
class Doctype(Token):
    name: str = ""
    public_id: str | None = None
    system_id: str | None = None
    force_quirks: bool = False


@dataclass(slots=True)
class StartTag(Token):
    name: str = ""
    attributes: list[Attribute] = field(default_factory=list)
    self_closing: bool = False
    #: set by the tree builder when the self-closing flag was not acknowledged
    self_closing_acknowledged: bool = False
    #: source offset one past the closing '>' (0 when synthesized)
    end: int = 0

    def attr(self, name: str) -> str | None:
        """Return the value of the first (spec-visible) attribute ``name``."""
        for attribute in self.attributes:
            if attribute.name == name and not attribute.duplicate:
                return attribute.value
        return None

    def has_attr(self, name: str) -> bool:
        return self.attr(name) is not None

    def visible_attributes(self) -> list[Attribute]:
        """Attributes the DOM will keep (duplicates removed, per spec)."""
        return [a for a in self.attributes if not a.duplicate]


@dataclass(slots=True)
class EndTag(Token):
    name: str = ""
    attributes: list[Attribute] = field(default_factory=list)
    self_closing: bool = False
    #: source offset one past the closing '>' (0 when synthesized)
    end: int = 0


@dataclass(slots=True)
class Comment(Token):
    data: str = ""


@dataclass(slots=True)
class Character(Token):
    """A run of character data (the spec emits one char at a time; we batch)."""

    data: str = ""

    def is_whitespace(self) -> bool:
        return not self.data.strip("\t\n\f\r ")


@dataclass(slots=True)
class EOF(Token):
    pass
