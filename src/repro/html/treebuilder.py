"""HTML tree construction (HTML Living Standard section 13.2.6).

A from-scratch implementation of the WHATWG tree-construction stage: the
insertion-mode state machine, the stack of open elements, the list of active
formatting elements (with the Noah's Ark clause and the adoption agency
algorithm), foster parenting for misplaced table content, head/body
inference, the form element pointer, and foreign (SVG/MathML) content with
integration points.

Beyond building the DOM, the builder is *instrumented*: every error-tolerant
fix-up the spec performs is recorded as a :class:`TreeEvent`.  The paper's
"Definition Violations" (DE1/DE2/DE4, DM1/DM2, HF1–HF5) are precisely these
fix-ups, so the violation rules in :mod:`repro.core.rules` read this event
stream rather than re-deriving parser behaviour.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from .arena import KIND_ELEMENT, DomArena
from .dom import (
    HTML_NAMESPACE,
    MATHML_NAMESPACE,
    SVG_NAMESPACE,
    CommentNode,
    Document,
    DocumentFragment,
    DocumentType,
    Element,
    Node,
    Text,
)
from .errors import ErrorCode, ParseError
from .bytes_tokenizer import BytesTokenizer
from .preprocessor import preprocess
from .quirks import quirks_mode_for
from .tokenizer import (
    DATA,
    PLAINTEXT,
    RAWTEXT,
    RCDATA,
    SCRIPT_DATA,
    Tokenizer,
)
from .tokens import (
    EOF,
    Character,
    Comment,
    Doctype,
    EndTag,
    StartTag,
    Token,
)

_WS = "\t\n\f\r "

#: raw allocator for the inlined element construction in insert_element
_new_element = object.__new__

# --------------------------------------------------------------- element sets

#: "Special" elements (spec 13.2.4.2) — abridged to HTML-namespace names plus
#: the foreign integration-point elements, which are checked by namespace.
SPECIAL_ELEMENTS = frozenset(
    {
        "address", "applet", "area", "article", "aside", "base", "basefont",
        "bgsound", "blockquote", "body", "br", "button", "caption", "center",
        "col", "colgroup", "dd", "details", "dir", "div", "dl", "dt", "embed",
        "fieldset", "figcaption", "figure", "footer", "form", "frame",
        "frameset", "h1", "h2", "h3", "h4", "h5", "h6", "head", "header",
        "hgroup", "hr", "html", "iframe", "img", "input", "keygen", "li",
        "link", "listing", "main", "marquee", "menu", "meta", "nav",
        "noembed", "noframes", "noscript", "object", "ol", "p", "param",
        "plaintext", "pre", "script", "section", "select", "source", "style",
        "summary", "table", "tbody", "td", "template", "textarea", "tfoot",
        "th", "thead", "title", "tr", "track", "ul", "wbr", "xmp",
    }
)

FORMATTING_ELEMENTS = frozenset(
    {"a", "b", "big", "code", "em", "font", "i", "nobr", "s", "small",
     "strike", "strong", "tt", "u"}
)

HEADING_ELEMENTS = frozenset({"h1", "h2", "h3", "h4", "h5", "h6"})

IMPLIED_END_TAGS = frozenset(
    {"dd", "dt", "li", "optgroup", "option", "p", "rb", "rp", "rt", "rtc"}
)

#: Elements allowed as children of ``head`` per the content model (4.2.1).
HEAD_ALLOWED = frozenset(
    {"base", "basefont", "bgsound", "link", "meta", "noscript", "script",
     "style", "template", "title", "noframes"}
)

#: Tags at EOF that do NOT constitute an unclosed-element parse error
#: (spec: the "in body" EOF step 1 list).
EOF_TOLERATED_OPEN = frozenset(
    {"dd", "dt", "li", "optgroup", "option", "p", "rb", "rp", "rt", "rtc",
     "tbody", "td", "tfoot", "th", "thead", "tr", "body", "html"}
)

#: HTML elements that break out of foreign content (spec 13.2.6.5).
FOREIGN_BREAKOUT = frozenset(
    {"b", "big", "blockquote", "body", "br", "center", "code", "dd", "div",
     "dl", "dt", "em", "embed", "h1", "h2", "h3", "h4", "h5", "h6", "head",
     "hr", "i", "img", "li", "listing", "menu", "meta", "nobr", "ol", "p",
     "pre", "ruby", "s", "small", "span", "strong", "strike", "sub", "sup",
     "table", "tt", "u", "ul", "var"}
)

#: MathML text integration point elements.
MATHML_TEXT_INTEGRATION = frozenset({"mi", "mo", "mn", "ms", "mtext"})

#: SVG elements that are HTML integration points.
SVG_HTML_INTEGRATION = frozenset({"foreignObject", "desc", "title"})

#: SVG tag-name case fix-ups (spec 13.2.6.5 table, abridged to common names).
SVG_TAG_ADJUSTMENTS = {
    "altglyph": "altGlyph", "altglyphdef": "altGlyphDef",
    "altglyphitem": "altGlyphItem", "animatecolor": "animateColor",
    "animatemotion": "animateMotion", "animatetransform": "animateTransform",
    "clippath": "clipPath", "feblend": "feBlend",
    "fecolormatrix": "feColorMatrix", "fecomponenttransfer": "feComponentTransfer",
    "fecomposite": "feComposite", "feconvolvematrix": "feConvolveMatrix",
    "fediffuselighting": "feDiffuseLighting",
    "fedisplacementmap": "feDisplacementMap", "fedistantlight": "feDistantLight",
    "fedropshadow": "feDropShadow", "feflood": "feFlood",
    "fefunca": "feFuncA", "fefuncb": "feFuncB", "fefuncg": "feFuncG",
    "fefuncr": "feFuncR", "fegaussianblur": "feGaussianBlur",
    "feimage": "feImage", "femerge": "feMerge", "femergenode": "feMergeNode",
    "femorphology": "feMorphology", "feoffset": "feOffset",
    "fepointlight": "fePointLight", "fespecularlighting": "feSpecularLighting",
    "fespotlight": "feSpotLight", "fetile": "feTile",
    "feturbulence": "feTurbulence", "foreignobject": "foreignObject",
    "glyphref": "glyphRef", "lineargradient": "linearGradient",
    "radialgradient": "radialGradient", "textpath": "textPath",
}

#: Attributes adjusted in foreign content (xlink:href etc. kept verbatim —
#: we store the adjusted names as plain strings since our DOM is flat).
FOREIGN_ATTR_ADJUSTMENTS = {
    "xlink:actuate", "xlink:arcrole", "xlink:href", "xlink:role",
    "xlink:show", "xlink:title", "xlink:type", "xml:lang", "xml:space",
    "xmlns", "xmlns:xlink",
}

SCOPE_DEFAULT = frozenset(
    {"applet", "caption", "html", "table", "td", "th", "marquee", "object",
     "template"}
)
SCOPE_LIST_ITEM = SCOPE_DEFAULT | {"ol", "ul"}
SCOPE_BUTTON = SCOPE_DEFAULT | {"button"}
SCOPE_TABLE = frozenset({"html", "table", "template"})

_FOREIGN_SCOPE_EXTRAS = {
    (MATHML_NAMESPACE, name) for name in
    ("mi", "mo", "mn", "ms", "mtext", "annotation-xml")
} | {(SVG_NAMESPACE, name) for name in ("foreignObject", "desc", "title")}


# ------------------------------------------------------------------- events

@dataclass(frozen=True, slots=True)
class TreeEvent:
    """One error-tolerant fix-up performed by the tree builder.

    ``kind`` values (each maps onto one or more violation rules):

    - ``head-start-implied`` — no ``<head>`` tag in the source (HF1)
    - ``head-end-implied`` — head closed by a token other than ``</head>``;
      ``detail`` names the trigger (HF1)
    - ``disallowed-in-head`` — a non-head element appeared inside head (HF1)
    - ``head-element-after-head`` — base/link/meta/... seen after the head
      was closed and re-routed into it (HF1)
    - ``body-start-implied`` — body opened by a non-``<body>`` token (HF2);
      ``detail`` names the trigger
    - ``second-body-merged`` — a second ``<body>`` start tag merged (HF3)
    - ``second-html-merged`` — a second ``<html>`` start tag merged
    - ``foster-parented`` — content moved in front of a table (HF4)
    - ``foreign-breakout`` — an HTML element forced foreign content closed
      (HF5); ``namespace`` is the namespace broken out of
    - ``nested-form-ignored`` — form inside form dropped (DE4)
    - ``element-open-at-eof`` — an element requiring an end tag was still
      open at EOF (DE1, DE2)
    - ``rcdata-closed-at-eof`` — textarea/title closed by EOF (DE1)
    - ``doctype-misplaced`` — DOCTYPE token ignored outside initial mode
    """

    kind: str
    tag: str = ""
    namespace: str = HTML_NAMESPACE
    offset: int = -1
    detail: str = ""


class ParseResult:
    """Everything a violation rule might want from one parse.

    ``source`` is lazy: the bytes-domain parse hands a
    :class:`~repro.html.tokens.ByteSource` here, and the document text is
    decoded only when a rule (or the fused engine's offset slicing) first
    reads it — str-domain parses store the text eagerly as before.

    ``stream_elements`` is ``None`` for ordinary parses; a stream-mode
    parse (:class:`StreamTreeBuilder`) fills it with ``(element, in_head)``
    pairs in document pre-order, and the fused engine dispatches its tree
    rules over that flat list instead of walking ``document``.
    """

    __slots__ = (
        "document", "errors", "events", "tokens", "_source", "stream_elements"
    )

    def __init__(
        self,
        document: Document,
        errors: list[ParseError],
        events: list[TreeEvent],
        tokens: list[Token],
        source,
        stream_elements: "list | None" = None,
    ) -> None:
        self.document = document
        self.errors = errors
        self.events = events
        self.tokens = tokens
        self._source = source
        self.stream_elements = stream_elements

    @property
    def source(self) -> str:
        source = self._source
        if source.__class__ is not str:
            source = self._source = source.materialize_all()
        return source

    def events_of(self, kind: str) -> list[TreeEvent]:
        return [event for event in self.events if event.kind == kind]

    def errors_of(self, code: ErrorCode) -> list[ParseError]:
        return [error for error in self.errors if error.code == code]

    def start_tags(self, name: str | None = None) -> list[StartTag]:
        return [
            token
            for token in self.tokens
            if isinstance(token, StartTag) and (name is None or token.name == name)
        ]


# --------------------------------------------------------------- tree builder

class TreeBuilder:
    """The tree-construction state machine.

    Simplifications relative to the full standard, none of which affect the
    violation checks (documented in DESIGN.md):

    - ``<template>`` children are appended to the template element itself
      rather than to a separate content DocumentFragment (the "in
      template" insertion-mode machinery is implemented; keeping the
      children in-tree lets the violation rules see template markup,
      which is what a measurement checker wants);
    - ``<isindex>`` and other long-obsolete token rewrites are omitted.

    Quirks-mode selection (full public-identifier tables, see
    :mod:`repro.html.quirks`), the "in template" and "in head noscript"
    insertion modes, and the adoption agency algorithm are implemented in
    full.
    """

    def __init__(self, *, collect_tokens: bool = True, fragment_context: Element | None = None) -> None:
        #: one arena backs every node this builder creates (DESIGN.md §3.14)
        self.arena = DomArena()
        self.document = Document(arena=self.arena)
        self.errors: list[ParseError] = []
        self.events: list[TreeEvent] = []
        self.tokens: list[Token] = [] if collect_tokens else None  # type: ignore[assignment]
        self._collect_tokens = collect_tokens
        self.open_elements: list[Element] = []
        self.active_formatting: list[Element | None] = []  # None is a marker
        self._formatting_tokens: dict[int, StartTag] = {}
        self.head_element: Element | None = None
        self.form_element: Element | None = None
        self.frameset_ok = True
        self.foster_parenting = False
        self.ignore_next_lf = False
        self.mode = self._mode_initial
        self.original_mode = None
        #: stack of template insertion modes (spec 13.2.4.1)
        self.template_modes: list = []
        self._pending_table_text: list[Character] = []
        self.tokenizer: Tokenizer | None = None
        self.fragment_context = fragment_context
        self.scripting_enabled = False
        self._saw_explicit_head = False
        self._saw_explicit_body = False
        self._head_closed = False
        self._stopped = False
        #: mirror of "adjusted current node is in a foreign namespace";
        #: maintained by push/pop so token dispatch can skip the full
        #: ``_dispatch_mode`` integration-point analysis for the (vastly
        #: dominant) HTML-content case
        self._current_foreign = False
        #: filled by :class:`StreamTreeBuilder`; ``None`` for normal parses
        self._stream_elements: list | None = None
        #: open ``<head>`` count (maintained by StreamTreeBuilder push/pop;
        #: always 0 here) — read by the emission sites in insert_element
        self._head_depth = 0

    # ------------------------------------------------------- stream hooks
    #
    # No-op hooks on the cold paths whose tree mutations would break the
    # stream-mode pre-order emission invariant.  ``StreamTreeBuilder``
    # overrides them to raise :class:`StreamTaint`; keeping the call sites
    # in this class (rather than overriding whole insertion-mode methods)
    # matters because the in-body dispatch tables bind this class's
    # handler functions directly, bypassing virtual dispatch.

    def _stream_taint(self, reason: str) -> None:
        """A tree-reordering mutation is about to happen (cold paths only)."""

    def _stream_foster_check(self) -> None:
        """Fostering is active at an element insertion (cold path only)."""

    def _stream_emit_root(self, element: Element) -> None:
        """The root <html> element was appended outside insert_element."""

    # ------------------------------------------------------------- plumbing

    def parse_error(self, code: ErrorCode, token: Token | None = None, detail: str = "") -> None:
        offset = token.offset if token is not None else -1
        self.errors.append(ParseError(code, offset, detail))

    def event(
        self,
        kind: str,
        tag: str = "",
        namespace: str = HTML_NAMESPACE,
        offset: int = -1,
        detail: str = "",
    ) -> None:
        self.events.append(TreeEvent(kind, tag, namespace, offset, detail))

    @property
    def current_node(self) -> Element | None:
        return self.open_elements[-1] if self.open_elements else None

    @property
    def adjusted_current_node(self) -> Element | None:
        if (
            self.fragment_context is not None
            and len(self.open_elements) == 1
        ):
            return self.fragment_context
        return self.current_node

    def _update_foreign_flag(self) -> None:
        stack = self.open_elements
        if self.fragment_context is not None and len(stack) == 1:
            node = self.fragment_context
        else:
            node = stack[-1] if stack else None
        foreign = node is not None and node.namespace != HTML_NAMESPACE
        self._current_foreign = foreign
        tokenizer = self.tokenizer
        if tokenizer is not None:
            tokenizer.in_foreign_content = foreign

    # ------------------------------------------------------ stack and scopes

    def push(self, element: Element) -> None:
        self.open_elements.append(element)
        # name-only on purpose: the fused walk's head-region flag
        # propagates on ``node.name == "head"`` without a namespace
        # check, and the stream emission must reproduce it bit-for-bit
        if element.name == "head":
            self._head_depth += 1
        # pushing an HTML element while already in HTML content cannot
        # change the foreign flag, which covers almost every push
        if element.namespace != HTML_NAMESPACE or self._current_foreign:
            self._update_foreign_flag()

    def pop(self) -> Element:
        stack = self.open_elements
        element = stack.pop()
        if element.name == "head":
            self._head_depth -= 1
        # the flag can only change if we were in foreign content, the new
        # top is foreign, or the pop just exposed the fragment context
        if (
            self._current_foreign
            or not stack
            or stack[-1].namespace != HTML_NAMESPACE
            or (self.fragment_context is not None and len(stack) == 1)
        ):
            self._update_foreign_flag()
        return element

    def pop_until(self, *names: str) -> Element:
        while self.open_elements:
            element = self.pop()
            if element.name in names and element.is_html():
                return element
        raise AssertionError(f"pop_until missed {names}")  # pragma: no cover

    def element_in_scope(self, target: str, scope: frozenset[str] = SCOPE_DEFAULT) -> bool:
        # hot path: open_elements is nearly always all-HTML, so the
        # namespace test is hoisted and ``_is_scope_boundary`` inlined
        for element in reversed(self.open_elements):
            if element.namespace == HTML_NAMESPACE:
                name = element.name
                if name == target:
                    return True
                if name in scope:
                    return False
            elif scope is not SCOPE_TABLE and (
                element.namespace, element.name
            ) in _FOREIGN_SCOPE_EXTRAS:
                return False
        return False

    def _is_scope_boundary(self, element: Element, scope: frozenset[str]) -> bool:
        if scope is SCOPE_TABLE:
            return element.is_html() and element.name in scope
        if element.is_html():
            return element.name in scope
        return (element.namespace, element.name) in _FOREIGN_SCOPE_EXTRAS

    def element_in_select_scope(self, target: str) -> bool:
        for element in reversed(self.open_elements):
            if element.name == target and element.is_html():
                return True
            if not (element.is_html() and element.name in ("optgroup", "option")):
                return False
        return False

    def generate_implied_end_tags(self, exclude: str | None = None) -> None:
        stack = self.open_elements
        while stack:
            node = stack[-1]
            if (
                node.namespace != HTML_NAMESPACE
                or node.name not in IMPLIED_END_TAGS
                or node.name == exclude
            ):
                return
            self.pop()

    # -------------------------------------------------------------- insertion

    def appropriate_insertion_place(
        self, override: Element | None = None
    ) -> tuple[Node, Node | None]:
        target = override or self.current_node
        assert target is not None
        if self.foster_parenting and target.is_html() and target.name in (
            "table", "tbody", "tfoot", "thead", "tr"
        ):
            last_table: Element | None = None
            for element in reversed(self.open_elements):
                if element.name == "table" and element.is_html():
                    last_table = element
                    break
            if last_table is None:
                return self.open_elements[0], None
            if last_table.parent is not None:
                return last_table.parent, last_table
            index = self.open_elements.index(last_table)
            return self.open_elements[index - 1], None
        return target, None

    def create_element(self, token: StartTag, namespace: str = HTML_NAMESPACE) -> Element:
        # the attribute dict is deferred: the token rides in the view's
        # ``_attrs`` slot and ``Element.attributes`` builds the dict only
        # if something (a rule, the serializer, Noah's Ark) ever reads it
        # — most elements never have their attributes looked at
        element = Element(
            token.name, namespace=namespace,
            source_offset=token.offset,
            arena=self.arena,
        )
        if token._lazy is not None or token._attributes:
            element._attrs = token
        return element

    def insert_element(self, token: StartTag, namespace: str = HTML_NAMESPACE) -> Element:
        if not self.foster_parenting:
            # hot path, fully inlined: element allocation (object.__new__
            # plus direct slot/column writes — this is the single hottest
            # allocation site in the parser), the plain append at the
            # current node, and the push.  The attribute dict is deferred:
            # the token rides in the view's ``_attrs`` slot and
            # ``Element.attributes`` builds the dict only on first read.
            arena = self.arena
            element = _new_element(Element)
            element._arena = arena
            kinds = arena.kinds
            element._idx = idx = len(kinds)
            parent = self.open_elements[-1]
            kinds.append(KIND_ELEMENT)
            arena.names.append(token.name)
            arena.parents.append(parent)
            arena.children.append(None)
            element.name = token.name
            element.namespace = namespace
            element._attrs = (
                token if token._lazy is not None or token._attributes
                else None
            )
            element.source_offset = token.offset
            pidx = parent._idx
            lst = arena.children[pidx]
            if lst is None:
                arena.children[pidx] = [element]
            else:
                lst.append(element)
            # stream emission rides here (not in a subclass override) so
            # tag handlers bound into the dispatch tables still feed it;
            # in_head is parent-derived — captured before this push
            stream = self._stream_elements
            if stream is not None:
                stream.append((element, self._head_depth > 0))
            # inlined self.push(element)
            self.open_elements.append(element)
            if element.name == "head":
                self._head_depth += 1
            if namespace is not HTML_NAMESPACE or self._current_foreign:
                self._update_foreign_flag()
            return element
        element = self.create_element(token, namespace)
        self._stream_foster_check()
        parent, before = self.appropriate_insertion_place()
        parent.insert_before(element, before)
        stream = self._stream_elements
        if stream is not None:
            stream.append((element, self._head_depth > 0))
        self.push(element)
        return element

    def insert_html_element(self, token: StartTag) -> Element:
        return self.insert_element(token, HTML_NAMESPACE)

    def insert_phantom(self, name: str) -> Element:
        """Insert an element with no corresponding source tag."""
        element = Element(name, source_offset=-1, arena=self.arena)
        if self.foster_parenting:
            self._stream_foster_check()
        parent, before = self.appropriate_insertion_place()
        parent.insert_before(element, before)
        stream = self._stream_elements
        if stream is not None:
            stream.append((element, self._head_depth > 0))
        self.push(element)
        return element

    def insert_text(self, data: str) -> None:
        if not self.foster_parenting:
            # hot path: append-or-merge at the current node, skipping the
            # insertion-place analysis that only matters under fostering;
            # merges push a part onto the previous text node (the joined
            # string is materialized lazily on first read) and the links
            # are written straight into the arena columns
            arena = self.arena
            parent = self.open_elements[-1]
            pidx = parent._idx
            children = arena.children[pidx]
            if children:
                previous = children[-1]
                if type(previous) is Text:
                    previous.append_data(data)
                    return
                node = Text(data, arena=arena)
                arena.parents[node._idx] = parent
                children.append(node)
            else:
                node = Text(data, arena=arena)
                arena.parents[node._idx] = parent
                arena.children[pidx] = [node]
            return
        parent, before = self.appropriate_insertion_place()
        if before is not None:
            index = parent.children.index(before)
            previous = parent.children[index - 1] if index > 0 else None
        else:
            previous = parent.children[-1] if parent.children else None
        if isinstance(previous, Text):
            previous.append_data(data)
        else:
            parent.insert_before(Text(data, arena=self.arena), before)

    def insert_comment(self, token: Comment, parent: Node | None = None) -> None:
        node = CommentNode(token.data, arena=self.arena)
        if parent is not None:
            parent.append(node)
        else:
            where, before = self.appropriate_insertion_place()
            where.insert_before(node, before)

    # ------------------------------------------------- active formatting list

    def push_formatting(self, element: Element, token: StartTag) -> None:
        # Noah's Ark clause: at most three matching entries since the last
        # marker.
        matches = 0
        for index in range(len(self.active_formatting) - 1, -1, -1):
            entry = self.active_formatting[index]
            if entry is None:
                break
            if (
                entry.name == element.name
                and entry.namespace == element.namespace
                and entry.attributes == element.attributes
            ):
                matches += 1
                if matches == 3:
                    self.active_formatting.pop(index)
                    break
        self.active_formatting.append(element)
        self._formatting_tokens[id(element)] = token

    def insert_formatting_marker(self) -> None:
        self.active_formatting.append(None)

    def clear_formatting_to_marker(self) -> None:
        while self.active_formatting:
            entry = self.active_formatting.pop()
            if entry is None:
                break

    def reconstruct_active_formatting(self) -> None:
        if not self.active_formatting:
            return
        entry = self.active_formatting[-1]
        if entry is None or entry in self.open_elements:
            return
        index = len(self.active_formatting) - 1
        while index > 0:
            index -= 1
            entry = self.active_formatting[index]
            if entry is None or entry in self.open_elements:
                index += 1
                break
        while index < len(self.active_formatting):
            stale = self.active_formatting[index]
            assert stale is not None
            token = self._formatting_tokens.get(id(stale))
            clone_token = token if token is not None else StartTag(name=stale.name)
            element = self.insert_element(clone_token)
            self.active_formatting[index] = element
            if token is not None:
                self._formatting_tokens[id(element)] = token
            index += 1

    # ------------------------------------------------------------ public API

    def parse(self, text: str) -> ParseResult:
        pre = preprocess(text)
        return self._run(Tokenizer(pre.text), pre.text)

    def parse_bytes(self, data: bytes) -> ParseResult:
        """Parse raw UTF-8 bytes through the decode-free tokenizer.

        Raises :class:`UnicodeDecodeError` on non-UTF-8 input (the paper's
        section 4.1 filter, discovered during the scan instead of upfront);
        for valid input the result is char-offset identical to
        ``parse(decode_bytes(data))``, with ``result.source`` decoded only
        on first access.
        """
        tokenizer = BytesTokenizer(data)
        return self._run(tokenizer, tokenizer._src)

    def _run(self, tokenizer: Tokenizer, source) -> ParseResult:
        self.tokenizer = tokenizer
        # drain the tokenizer queue directly rather than through its
        # generator __iter__ — same visit order, no generator resumption
        # per token on the hottest loop in the parser
        queue = tokenizer._queue
        popleft = queue.popleft
        tokens = self.tokens
        collect = self._collect_tokens
        dispatch_mode = self._dispatch_mode
        while True:
            if queue:
                token = popleft()
            elif tokenizer._done:
                break
            else:
                tokenizer._state()
                continue
            if collect:
                tokens.append(token)
            # inlined process_token: one frame per token on the hot loop
            mode = dispatch_mode(token) if self._current_foreign else self.mode
            while mode(token):
                mode = (
                    dispatch_mode(token)
                    if self._current_foreign else self.mode
                )
            if self._stopped:
                break
        self.errors.extend(tokenizer.errors)
        self.errors.sort(key=lambda error: error.offset)
        return ParseResult(
            document=self.document,
            errors=self.errors,
            events=self.events,
            tokens=self.tokens if self._collect_tokens else [],
            source=source,
            stream_elements=self._stream_elements,
        )

    # --------------------------------------------------------- token dispatch

    def process_token(self, token: Token) -> None:
        # _dispatch_mode only ever diverges from the insertion mode while
        # the adjusted current node is foreign (SVG/MathML); push/pop keep
        # _current_foreign tracking exactly that
        mode = self._dispatch_mode(token) if self._current_foreign else self.mode
        reprocess = True
        while reprocess:
            reprocess = mode(token)
            if reprocess:
                mode = (
                    self._dispatch_mode(token)
                    if self._current_foreign else self.mode
                )

    def _dispatch_mode(self, token: Token):
        node = self.adjusted_current_node
        if node is None or node.namespace == HTML_NAMESPACE:
            return self.mode
        if self._is_html_integration_point(node) and isinstance(
            token, (StartTag, Character)
        ):
            return self.mode
        if (
            node.namespace == MATHML_NAMESPACE
            and node.name in MATHML_TEXT_INTEGRATION
            and isinstance(token, (Character, StartTag))
            and (not isinstance(token, StartTag) or token.name not in ("mglyph", "malignmark"))
        ):
            return self.mode
        if (
            node.namespace == MATHML_NAMESPACE
            and node.name == "annotation-xml"
            and isinstance(token, StartTag)
            and token.name == "svg"
        ):
            return self.mode
        if isinstance(token, EOF):
            return self.mode
        return self._mode_foreign_content

    @staticmethod
    def _is_html_integration_point(element: Element) -> bool:
        if element.namespace == SVG_NAMESPACE and element.name in SVG_HTML_INTEGRATION:
            return True
        if element.namespace == MATHML_NAMESPACE and element.name == "annotation-xml":
            encoding = element.get("encoding", "")
            return encoding is not None and encoding.lower() in (
                "text/html", "application/xhtml+xml"
            )
        return False

    # ------------------------------------------------------- insertion modes

    def _mode_initial(self, token: Token) -> bool:
        if isinstance(token, Character):
            stripped = token.data.lstrip(_WS)
            if not stripped:
                return False
            token.data = stripped
            self.document.quirks_mode = True
            self.parse_error(ErrorCode.UNEXPECTED_TOKEN_IN_INITIAL_MODE, token)
            self.mode = self._mode_before_html
            return True
        if isinstance(token, Comment):
            self.insert_comment(token, self.document)
            return False
        if isinstance(token, Doctype):
            doctype = DocumentType(
                token.name, token.public_id or "", token.system_id or "",
                arena=self.arena,
            )
            self.document.append(doctype)
            self.document.doctype = doctype
            self.document.mode = quirks_mode_for(token)
            self.mode = self._mode_before_html
            return False
        self.document.quirks_mode = True
        self.parse_error(ErrorCode.UNEXPECTED_TOKEN_IN_INITIAL_MODE, token)
        self.mode = self._mode_before_html
        return True

    def _mode_before_html(self, token: Token) -> bool:
        if isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            self.event("doctype-misplaced", offset=token.offset)
            return False
        if isinstance(token, Comment):
            self.insert_comment(token, self.document)
            return False
        if isinstance(token, Character):
            stripped = token.data.lstrip(_WS)
            if not stripped:
                return False
            token.data = stripped
        elif isinstance(token, StartTag) and token.name == "html":
            element = self.create_element(token)
            self.document.append(element)
            self._stream_emit_root(element)
            self.push(element)
            self.mode = self._mode_before_head
            return False
        elif isinstance(token, EndTag) and token.name not in (
            "head", "body", "html", "br"
        ):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        root = Element("html", source_offset=-1, arena=self.arena)
        self.document.append(root)
        self._stream_emit_root(root)
        self.push(root)
        self.mode = self._mode_before_head
        return True

    def _mode_before_head(self, token: Token) -> bool:
        if isinstance(token, Character):
            stripped = token.data.lstrip(_WS)
            if not stripped:
                return False
            token.data = stripped
        elif isinstance(token, Comment):
            self.insert_comment(token)
            return False
        elif isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            self.event("doctype-misplaced", offset=token.offset)
            return False
        elif isinstance(token, StartTag):
            if token.name == "html":
                return self._mode_in_body(token)
            if token.name == "head":
                self.head_element = self.insert_element(token)
                self._saw_explicit_head = True
                self.mode = self._mode_in_head
                return False
        elif isinstance(token, EndTag) and token.name not in (
            "head", "body", "html", "br"
        ):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        self.head_element = self.insert_phantom("head")
        self.event("head-start-implied", offset=getattr(token, "offset", -1))
        self.mode = self._mode_in_head
        return True

    def _mode_in_head(self, token: Token) -> bool:
        cls = token.__class__
        if cls is Character:
            prefix, rest = _split_leading_ws(token.data)
            if prefix:
                self.insert_text(prefix)
            if not rest:
                return False
            token.data = rest
        elif cls is Comment:
            self.insert_comment(token)
            return False
        elif cls is Doctype:
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            self.event("doctype-misplaced", offset=token.offset)
            return False
        elif cls is StartTag:
            name = token.name
            if name == "html":
                return self._mode_in_body(token)
            if name in ("base", "basefont", "bgsound", "link", "meta"):
                self.insert_element(token)
                self.pop()
                return False
            if name == "title":
                return self._parse_rcdata(token)
            if name in ("noframes", "style") or (
                name == "noscript" and self.scripting_enabled
            ):
                return self._parse_rawtext(token)
            if name == "noscript":
                self.insert_element(token)
                self.mode = self._mode_in_head_noscript
                return False
            if name == "script":
                return self._parse_script(token)
            if name == "template":
                self.insert_element(token)
                self.insert_formatting_marker()
                self.frameset_ok = False
                self.mode = self._mode_in_template
                self.template_modes.append(self._mode_in_template)
                return False
            if name == "head":
                self.parse_error(ErrorCode.SECOND_HEAD_START_TAG, token)
                return False
            # Anything else: the error-tolerant head break-out (HF1).
            self._close_head_implicitly(trigger=name, offset=token.offset)
            if name not in ("body", "frameset"):
                self.event(
                    "disallowed-in-head", tag=name, offset=token.offset
                )
            return True
        elif cls is EndTag:
            name = token.name
            if name == "head":
                popped = self.pop()
                assert popped.name == "head"
                self._head_closed = True
                self.mode = self._mode_after_head
                return False
            if name == "template":
                if any(
                    element.name == "template" for element in self.open_elements
                ):
                    self.generate_implied_end_tags()
                    if (
                        self.current_node is not None
                        and self.current_node.name != "template"
                    ):
                        self.parse_error(
                            ErrorCode.UNEXPECTED_END_TAG, token, name
                        )
                    self.pop_until("template")
                    self.clear_formatting_to_marker()
                    if self.template_modes:
                        self.template_modes.pop()
                    self.reset_insertion_mode()
                else:
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                return False
            if name == "noscript":
                if self.current_node is not None and self.current_node.name == "noscript":
                    self.pop()
                return False
            if name not in ("body", "html", "br"):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                return False
        # "Anything else": pop head, reprocess in after-head.
        self._close_head_implicitly(
            trigger=_describe_token(token), offset=getattr(token, "offset", -1)
        )
        return True

    def _mode_in_head_noscript(self, token: Token) -> bool:
        """The "in head noscript" insertion mode (spec 13.2.6.4.5)."""
        if isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            return False
        if isinstance(token, Comment):
            return self._mode_in_head(token)
        if isinstance(token, Character):
            prefix, rest = _split_leading_ws(token.data)
            if prefix:
                self.insert_text(prefix)
            if not rest:
                return False
            token.data = rest
        elif isinstance(token, StartTag):
            name = token.name
            if name == "html":
                return self._mode_in_body(token)
            if name in ("basefont", "bgsound", "link", "meta", "noframes",
                        "style"):
                return self._mode_in_head(token)
            if name in ("head", "noscript"):
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                return False
        elif isinstance(token, EndTag):
            if token.name == "noscript":
                self.pop()
                self.mode = self._mode_in_head
                return False
            if token.name != "br":
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
        # Anything else: parse error, pop noscript, reprocess in head.
        self.parse_error(
            ErrorCode.UNEXPECTED_START_TAG
            if isinstance(token, StartTag)
            else ErrorCode.UNEXPECTED_END_TAG,
            token if isinstance(token, (StartTag, EndTag)) else None,
        )
        self.pop()
        self.mode = self._mode_in_head
        return True

    def _close_head_implicitly(self, trigger: str, offset: int) -> None:
        while self.current_node is not None and self.current_node.name != "head":
            self.pop()
        if self.open_elements:
            self.pop()
        self._head_closed = True
        self.event("head-end-implied", detail=trigger, offset=offset)
        self.mode = self._mode_after_head

    def _mode_after_head(self, token: Token) -> bool:
        if isinstance(token, Character):
            prefix, rest = _split_leading_ws(token.data)
            if prefix:
                self.insert_text(prefix)
            if not rest:
                return False
            token.data = rest
        elif isinstance(token, Comment):
            self.insert_comment(token)
            return False
        elif isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            self.event("doctype-misplaced", offset=token.offset)
            return False
        elif isinstance(token, StartTag):
            name = token.name
            if name == "html":
                return self._mode_in_body(token)
            if name == "body":
                self.insert_element(token)
                self._saw_explicit_body = True
                self.frameset_ok = False
                self.mode = self._mode_in_body
                return False
            if name == "frameset":
                self.insert_element(token)
                self.mode = self._mode_in_frameset
                return False
            if name in HEAD_ALLOWED and name != "noscript":
                # Head element after the head: re-route into head (HF1).
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                self.event(
                    "head-element-after-head", tag=name, offset=token.offset
                )
                assert self.head_element is not None
                # inserting back into the closed <head> breaks pre-order
                self._stream_taint("head-element-after-head")
                self.push(self.head_element)
                self._mode_in_head(token)
                if self.head_element in self.open_elements:
                    self.open_elements.remove(self.head_element)
                    self._update_foreign_flag()
                return False
            if name == "head":
                self.parse_error(ErrorCode.SECOND_HEAD_START_TAG, token)
                return False
        elif isinstance(token, EndTag) and token.name not in (
            "body", "html", "br"
        ):
            if token.name == "template":
                return self._mode_in_head(token)
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        # Anything else: implied <body> (HF2).
        self.insert_phantom("body")
        self.event(
            "body-start-implied",
            detail=_describe_token(token),
            offset=getattr(token, "offset", -1),
        )
        self.mode = self._mode_in_body
        return True

    # ------------------------------------------------------------- in body

    def _mode_in_body(self, token: Token) -> bool:
        # ordered by token frequency: characters and tags dominate real
        # documents, comments/doctypes/EOF are rare.  Token classes are
        # leaves (nothing subclasses them), so exact-class checks replace
        # isinstance, and the start/end tag table dispatch is inlined to
        # drop one frame per tag token.
        cls = token.__class__
        if cls is Character:
            return self._in_body_character(token)
        if cls is StartTag:
            handler = _IN_BODY_START.get(token.name)
            if handler is None:
                return self._ibs_any(token)
            return handler(self, token)
        if cls is EndTag:
            handler = _IN_BODY_END.get(token.name)
            if handler is None:
                return self._any_other_end_tag(token)
            return handler(self, token)
        if cls is Comment:
            self.insert_comment(token)
            return False
        if cls is Doctype:
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            self.event("doctype-misplaced", offset=token.offset)
            return False
        assert cls is EOF
        return self._in_body_eof(token)

    def _in_body_character(self, token: Character) -> bool:
        # fast path: no pending-newline suppression and no NUL in the run
        # (checked decode-free on the byte spans) — the token itself is
        # handed to insert_text, so clean text never materializes here
        if not self.ignore_next_lf and not token.has_nul():
            if self.active_formatting:
                self.reconstruct_active_formatting()
            self.insert_text(token)
            if self.frameset_ok and not token.is_whitespace():
                self.frameset_ok = False
            return False
        data = token.data
        if self.ignore_next_lf:
            self.ignore_next_lf = False
            if data.startswith("\n"):
                data = data[1:]
                if not data:
                    return False
        if "\x00" in data:
            data = data.replace("\x00", "")
            if not data:
                return False
        self.reconstruct_active_formatting()
        self.insert_text(data)
        if data.strip(_WS):
            self.frameset_ok = False
        return False

    def _in_body_eof(self, token: EOF) -> bool:
        if self.template_modes:
            return self._mode_in_template(token)
        for element in self.open_elements:
            if element.is_html() and element.name not in EOF_TOLERATED_OPEN:
                self.parse_error(
                    ErrorCode.EOF_WITH_UNCLOSED_ELEMENTS, token, element.name
                )
            if element.is_html() and element.name not in ("body", "html"):
                self.event(
                    "element-open-at-eof",
                    tag=element.name,
                    offset=element.source_offset,
                )
        self._stopped = True
        return False

    # ----------------------------------------------- in-body start tags
    #
    # The "in body" start-tag rules dispatch through the module-level
    # ``_IN_BODY_START`` table (tag name -> handler) built after the class
    # body: one dict hit replaces the spec's ~30-branch comparison chain,
    # which profiling showed as the hottest dispatch site in the tree
    # machine.  Each handler transcribes one spec branch verbatim.

    def _in_body_start_tag(self, token: StartTag) -> bool:
        handler = _IN_BODY_START.get(token.name)
        if handler is None:
            return self._ibs_any(token)
        return handler(self, token)

    def _ibs_html(self, token: StartTag) -> bool:
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, "html")
        self.event("second-html-merged", offset=token.offset)
        if self.open_elements:
            root = self.open_elements[0]
            for attr in token.visible_attributes():
                root.attributes.setdefault(attr.name, attr.value)
        return False

    def _ibs_in_head(self, token: StartTag) -> bool:
        return self._mode_in_head(token)

    def _ibs_body(self, token: StartTag) -> bool:
        self.parse_error(ErrorCode.SECOND_BODY_START_TAG, token)
        self.event("second-body-merged", offset=token.offset)
        if len(self.open_elements) > 1:
            body = self.open_elements[1]
            if body.name == "body":
                self.frameset_ok = False
                for attr in token.visible_attributes():
                    body.attributes.setdefault(attr.name, attr.value)
        return False

    def _ibs_frameset(self, token: StartTag) -> bool:
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
        if self.frameset_ok and len(self.open_elements) > 1:
            # the already-emitted <body> is about to leave the tree, so a
            # stream parse can no longer mirror the final DOM walk
            self._stream_taint("frameset-takeover")
            body = self.open_elements[1]
            if body.parent is not None:
                body.parent.remove(body)
            while len(self.open_elements) > 1:
                self.pop()
            self.insert_element(token)
            self.mode = self._mode_in_frameset
        return False

    def _ibs_block(self, token: StartTag) -> bool:
        self._close_p_if_in_button_scope()
        self.insert_element(token)
        return False

    def _ibs_heading(self, token: StartTag) -> bool:
        self._close_p_if_in_button_scope()
        if (
            self.current_node is not None
            and self.current_node.name in HEADING_ELEMENTS
        ):
            self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
            self.pop()
        self.insert_element(token)
        return False

    def _ibs_pre(self, token: StartTag) -> bool:
        self._close_p_if_in_button_scope()
        self.insert_element(token)
        self.ignore_next_lf = True
        self.frameset_ok = False
        return False

    def _ibs_form(self, token: StartTag) -> bool:
        if self.form_element is not None:
            self.parse_error(ErrorCode.UNEXPECTED_FORM_IN_FORM, token)
            self.event("nested-form-ignored", offset=token.offset)
            return False
        self._close_p_if_in_button_scope()
        element = self.insert_element(token)
        self.form_element = element
        return False

    def _ibs_li(self, token: StartTag) -> bool:
        self.frameset_ok = False
        for element in reversed(self.open_elements):
            if element.name == "li" and element.is_html():
                self.generate_implied_end_tags(exclude="li")
                self.pop_until("li")
                break
            if (
                element.is_html()
                and element.name in SPECIAL_ELEMENTS
                and element.name not in ("address", "div", "p")
            ):
                break
        self._close_p_if_in_button_scope()
        self.insert_element(token)
        return False

    def _ibs_dd_dt(self, token: StartTag) -> bool:
        self.frameset_ok = False
        for element in reversed(self.open_elements):
            if element.name in ("dd", "dt") and element.is_html():
                self.generate_implied_end_tags(exclude=element.name)
                self.pop_until("dd", "dt")
                break
            if (
                element.is_html()
                and element.name in SPECIAL_ELEMENTS
                and element.name not in ("address", "div", "p")
            ):
                break
        self._close_p_if_in_button_scope()
        self.insert_element(token)
        return False

    def _ibs_plaintext(self, token: StartTag) -> bool:
        self._close_p_if_in_button_scope()
        self.insert_element(token)
        assert self.tokenizer is not None
        self.tokenizer.switch_to(PLAINTEXT)
        return False

    def _ibs_button(self, token: StartTag) -> bool:
        if self.element_in_scope("button"):
            self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
            self.generate_implied_end_tags()
            self.pop_until("button")
        self.reconstruct_active_formatting()
        self.insert_element(token)
        self.frameset_ok = False
        return False

    def _ibs_a(self, token: StartTag) -> bool:
        for entry in reversed(self.active_formatting):
            if entry is None:
                break
            if entry.name == "a":
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, "a")
                self.adoption_agency(EndTag(name="a", offset=token.offset))
                if entry in self.active_formatting:
                    self.active_formatting.remove(entry)
                if entry in self.open_elements:
                    self.open_elements.remove(entry)
                    self._update_foreign_flag()
                break
        self.reconstruct_active_formatting()
        element = self.insert_element(token)
        self.push_formatting(element, token)
        return False

    def _ibs_formatting(self, token: StartTag) -> bool:
        if token.name == "nobr" and self.element_in_scope("nobr"):
            self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
            self.adoption_agency(EndTag(name="nobr", offset=token.offset))
            self.reconstruct_active_formatting()
        else:
            self.reconstruct_active_formatting()
        element = self.insert_element(token)
        self.push_formatting(element, token)
        return False

    def _ibs_applet(self, token: StartTag) -> bool:
        self.reconstruct_active_formatting()
        self.insert_element(token)
        self.insert_formatting_marker()
        self.frameset_ok = False
        return False

    def _ibs_table(self, token: StartTag) -> bool:
        if not self.document.quirks_mode:
            self._close_p_if_in_button_scope()
        self.insert_element(token)
        self.frameset_ok = False
        self.mode = self._mode_in_table
        return False

    def _ibs_void(self, token: StartTag) -> bool:
        self.reconstruct_active_formatting()
        self.insert_element(token)
        self.pop()
        self.frameset_ok = False
        return False

    def _ibs_input(self, token: StartTag) -> bool:
        self.reconstruct_active_formatting()
        self.insert_element(token)
        self.pop()
        input_type = token.attr("type") or ""
        if input_type.lower() != "hidden":
            self.frameset_ok = False
        return False

    def _ibs_param(self, token: StartTag) -> bool:
        self.insert_element(token)
        self.pop()
        return False

    def _ibs_hr(self, token: StartTag) -> bool:
        self._close_p_if_in_button_scope()
        self.insert_element(token)
        self.pop()
        self.frameset_ok = False
        return False

    def _ibs_image(self, token: StartTag) -> bool:
        # Spec: change it to "img" and reprocess ("don't ask").
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, "image")
        token.name = "img"
        return True

    def _ibs_textarea(self, token: StartTag) -> bool:
        self.insert_element(token)
        self.ignore_next_lf = True
        assert self.tokenizer is not None
        self.tokenizer.switch_to(RCDATA)
        self.original_mode = self.mode
        self.frameset_ok = False
        self.mode = self._mode_text
        return False

    def _ibs_xmp(self, token: StartTag) -> bool:
        self._close_p_if_in_button_scope()
        self.reconstruct_active_formatting()
        self.frameset_ok = False
        return self._parse_rawtext(token)

    def _ibs_iframe(self, token: StartTag) -> bool:
        self.frameset_ok = False
        return self._parse_rawtext(token)

    def _ibs_noembed(self, token: StartTag) -> bool:
        return self._parse_rawtext(token)

    def _ibs_noscript(self, token: StartTag) -> bool:
        if self.scripting_enabled:
            return self._parse_rawtext(token)
        return self._ibs_any(token)

    def _ibs_select(self, token: StartTag) -> bool:
        self.reconstruct_active_formatting()
        self.insert_element(token)
        self.frameset_ok = False
        if self.mode in (
            self._mode_in_table, self._mode_in_caption,
            self._mode_in_table_body, self._mode_in_row, self._mode_in_cell,
        ):
            self.mode = self._mode_in_select_in_table
        else:
            self.mode = self._mode_in_select
        return False

    def _ibs_option(self, token: StartTag) -> bool:
        if self.current_node is not None and self.current_node.name == "option":
            self.pop()
        self.reconstruct_active_formatting()
        self.insert_element(token)
        return False

    def _ibs_rb(self, token: StartTag) -> bool:
        if self.element_in_scope("ruby"):
            self.generate_implied_end_tags()
        self.insert_element(token)
        return False

    def _ibs_rp(self, token: StartTag) -> bool:
        if self.element_in_scope("ruby"):
            self.generate_implied_end_tags(exclude="rtc")
        self.insert_element(token)
        return False

    def _ibs_math(self, token: StartTag) -> bool:
        self.reconstruct_active_formatting()
        self._adjust_foreign_attributes(token)
        self.insert_element(token, MATHML_NAMESPACE)
        if token.self_closing:
            self.pop()
        return False

    def _ibs_svg(self, token: StartTag) -> bool:
        self.reconstruct_active_formatting()
        self._adjust_foreign_attributes(token)
        self.insert_element(token, SVG_NAMESPACE)
        if token.self_closing:
            self.pop()
        return False

    def _ibs_table_misplaced(self, token: StartTag) -> bool:
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
        return False

    def _ibs_any(self, token: StartTag) -> bool:
        if self.active_formatting:
            self.reconstruct_active_formatting()
        self.insert_element(token)
        if token.self_closing:
            self.parse_error(
                ErrorCode.NON_VOID_ELEMENT_START_TAG_WITH_TRAILING_SOLIDUS,
                token,
                token.name,
            )
        return False

    # ------------------------------------------------- in-body end tags
    #
    # Same table-dispatch scheme as the start tags: ``_IN_BODY_END`` maps
    # tag name -> handler, the default falls through to the spec's "any
    # other end tag" loop (shared with the foreign-content path).

    def _in_body_end_tag(self, token: EndTag) -> bool:
        handler = _IN_BODY_END.get(token.name)
        if handler is None:
            self._any_other_end_tag(token)
            return False
        return handler(self, token)

    def _ibe_body(self, token: EndTag) -> bool:
        if not self.element_in_scope("body"):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        self.mode = self._mode_after_body
        return False

    def _ibe_html(self, token: EndTag) -> bool:
        if not self.element_in_scope("body"):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        self.mode = self._mode_after_body
        return True

    def _ibe_block(self, token: EndTag) -> bool:
        name = token.name
        if not self.element_in_scope(name):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        self.generate_implied_end_tags()
        if self.current_node is not None and self.current_node.name != name:
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
        self.pop_until(name)
        return False

    def _ibe_form(self, token: EndTag) -> bool:
        name = token.name
        node = self.form_element
        self.form_element = None
        if node is None or not self.element_in_scope("form"):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        self.generate_implied_end_tags()
        if self.current_node is not node:
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
        if node in self.open_elements:
            self.open_elements.remove(node)
            self._update_foreign_flag()
        return False

    def _ibe_p(self, token: EndTag) -> bool:
        if not self.element_in_scope("p", SCOPE_BUTTON):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            self.insert_phantom("p")
        self._close_p_element()
        return False

    def _ibe_li(self, token: EndTag) -> bool:
        name = token.name
        if not self.element_in_scope("li", SCOPE_LIST_ITEM):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        self.generate_implied_end_tags(exclude="li")
        if self.current_node is not None and self.current_node.name != "li":
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
        self.pop_until("li")
        return False

    def _ibe_dd_dt(self, token: EndTag) -> bool:
        name = token.name
        if not self.element_in_scope(name):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        self.generate_implied_end_tags(exclude=name)
        if self.current_node is not None and self.current_node.name != name:
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
        self.pop_until(name)
        return False

    def _ibe_heading(self, token: EndTag) -> bool:
        name = token.name
        if not any(
            self.element_in_scope(heading) for heading in HEADING_ELEMENTS
        ):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        self.generate_implied_end_tags()
        if self.current_node is not None and self.current_node.name != name:
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
        self.pop_until(*HEADING_ELEMENTS)
        return False

    def _ibe_formatting(self, token: EndTag) -> bool:
        self.adoption_agency(token)
        return False

    def _ibe_applet(self, token: EndTag) -> bool:
        name = token.name
        if not self.element_in_scope(name):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        self.generate_implied_end_tags()
        if self.current_node is not None and self.current_node.name != name:
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
        self.pop_until(name)
        self.clear_formatting_to_marker()
        return False

    def _ibe_br(self, token: EndTag) -> bool:
        self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
        self._in_body_start_tag(StartTag(name="br", offset=token.offset))
        return False

    def _ibe_template(self, token: EndTag) -> bool:
        return self._mode_in_head(token)

    def _close_p_if_in_button_scope(self) -> None:
        if self.element_in_scope("p", SCOPE_BUTTON):
            self._close_p_element()

    def _close_p_element(self) -> None:
        self.generate_implied_end_tags(exclude="p")
        if self.current_node is not None and self.current_node.name != "p":
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, None, "p")
        if self.element_in_scope("p", SCOPE_BUTTON):
            self.pop_until("p")

    # --------------------------------------------------- adoption agency

    def adoption_agency(self, token: EndTag) -> None:
        """The adoption agency algorithm (spec 13.2.6.4.7, 'in body')."""
        subject = token.name
        current = self.current_node
        if (
            current is not None
            and current.is_html()
            and current.name == subject
            and current not in self.active_formatting
        ):
            self.pop()
            return
        for _ in range(8):  # outer loop
            formatting_element = None
            for entry in reversed(self.active_formatting):
                if entry is None:
                    break
                if entry.name == subject:
                    formatting_element = entry
                    break
            if formatting_element is None:
                # Act as "any other end tag".
                self._any_other_end_tag(token)
                return
            if formatting_element not in self.open_elements:
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, subject)
                self.active_formatting.remove(formatting_element)
                return
            if not self._element_in_scope_element(formatting_element):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, subject)
                return
            if formatting_element is not self.current_node:
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, subject)
            # Find the furthest block.
            stack_index = self.open_elements.index(formatting_element)
            furthest_block = None
            for element in self.open_elements[stack_index + 1 :]:
                if element.is_html() and element.name in SPECIAL_ELEMENTS:
                    furthest_block = element
                    break
            if furthest_block is None:
                while self.open_elements[-1] is not formatting_element:
                    self.pop()
                self.pop()
                self.active_formatting.remove(formatting_element)
                return
            # the furthest-block path re-parents already-emitted subtrees
            self._stream_taint("adoption-agency")
            common_ancestor = self.open_elements[stack_index - 1]
            bookmark = self.active_formatting.index(formatting_element)
            node = furthest_block
            last_node = furthest_block
            node_index = self.open_elements.index(node)
            inner_counter = 0
            while True:  # inner loop
                inner_counter += 1
                node_index -= 1
                node = self.open_elements[node_index]
                if node is formatting_element:
                    break
                if inner_counter > 3 and node in self.active_formatting:
                    self.active_formatting.remove(node)
                if node not in self.active_formatting:
                    # Removing index i leaves the element that was above node
                    # at i-1, which the next `node_index -= 1` lands on.
                    self.open_elements.pop(node_index)
                    continue
                clone = Element(
                    node.name, node.namespace, dict(node.attributes),
                    source_offset=node.source_offset, arena=self.arena,
                )
                formatting_index = self.active_formatting.index(node)
                self.active_formatting[formatting_index] = clone
                open_index = self.open_elements.index(node)
                self.open_elements[open_index] = clone
                node = clone
                if last_node is furthest_block:
                    bookmark = formatting_index + 1
                node.append(last_node)
                last_node = node
                node_index = open_index
            if last_node.parent is not None:
                last_node.parent.remove(last_node)
            if common_ancestor.is_html() and common_ancestor.name in (
                "table", "tbody", "tfoot", "thead", "tr"
            ):
                saved = self.foster_parenting
                self.foster_parenting = True
                parent, before = self.appropriate_insertion_place(common_ancestor)
                self.foster_parenting = saved
                parent.insert_before(last_node, before)
            else:
                common_ancestor.append(last_node)
            clone = Element(
                formatting_element.name,
                formatting_element.namespace,
                dict(formatting_element.attributes),
                source_offset=formatting_element.source_offset,
                arena=self.arena,
            )
            for child in list(furthest_block.children):
                clone.append(child)
            furthest_block.append(clone)
            self.active_formatting.remove(formatting_element)
            bookmark = min(bookmark, len(self.active_formatting))
            self.active_formatting.insert(bookmark, clone)
            self.open_elements.remove(formatting_element)
            self.open_elements.insert(
                self.open_elements.index(furthest_block) + 1, clone
            )
            self._update_foreign_flag()

    def _any_other_end_tag(self, token: EndTag) -> None:
        name = token.name
        for element in reversed(self.open_elements):
            if element.name == name and element.is_html():
                self.generate_implied_end_tags(exclude=name)
                if self.current_node is not element:
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                while True:
                    popped = self.pop()
                    if popped is element:
                        break
                return
            if element.is_html() and element.name in SPECIAL_ELEMENTS:
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                return

    def _element_in_scope_element(self, target: Element) -> bool:
        for element in reversed(self.open_elements):
            if element is target:
                return True
            if self._is_scope_boundary(element, SCOPE_DEFAULT):
                return False
        return False

    # ------------------------------------------------------------ text mode

    def _parse_rcdata(self, token: StartTag) -> bool:
        self.insert_element(token)
        assert self.tokenizer is not None
        self.tokenizer.switch_to(RCDATA)
        self.original_mode = self.mode
        self.mode = self._mode_text
        return False

    def _parse_rawtext(self, token: StartTag) -> bool:
        self.insert_element(token)
        assert self.tokenizer is not None
        self.tokenizer.switch_to(RAWTEXT)
        self.original_mode = self.mode
        self.mode = self._mode_text
        return False

    def _parse_script(self, token: StartTag) -> bool:
        self.insert_element(token)
        assert self.tokenizer is not None
        self.tokenizer.switch_to(SCRIPT_DATA)
        self.original_mode = self.mode
        self.mode = self._mode_text
        return False

    def _mode_text(self, token: Token) -> bool:
        if isinstance(token, Character):
            if not self.ignore_next_lf:
                # raw text runs (scripts, styles) are the largest character
                # tokens in real pages; hand the lazy token through so they
                # are never decoded unless something reads the DOM text
                self.insert_text(token)
                return False
            data = token.data
            self.ignore_next_lf = False
            if data.startswith("\n"):
                data = data[1:]
            if data:
                self.insert_text(data)
            return False
        if isinstance(token, EOF):
            element = self.current_node
            if element is not None:
                self.parse_error(
                    ErrorCode.EOF_WITH_UNCLOSED_ELEMENTS, token, element.name
                )
                self.event(
                    "rcdata-closed-at-eof",
                    tag=element.name,
                    offset=element.source_offset,
                )
                self.pop()
            assert self.original_mode is not None
            self.mode = self.original_mode
            return True
        assert isinstance(token, EndTag)
        self.pop()
        assert self.original_mode is not None
        self.mode = self.original_mode
        return False

    # ----------------------------------------------------------- table modes

    def _mode_in_table(self, token: Token) -> bool:
        if isinstance(token, Character):
            current = self.current_node
            if current is not None and current.is_html() and current.name in (
                "table", "tbody", "tfoot", "thead", "tr"
            ):
                self._pending_table_text = []
                self.original_mode = self.mode
                self.mode = self._mode_in_table_text
                return True
        elif isinstance(token, Comment):
            self.insert_comment(token)
            return False
        elif isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            self.event("doctype-misplaced", offset=token.offset)
            return False
        elif isinstance(token, StartTag):
            name = token.name
            if name == "caption":
                self._clear_table_stack_to(("table",))
                self.insert_formatting_marker()
                self.insert_element(token)
                self.mode = self._mode_in_caption
                return False
            if name == "colgroup":
                self._clear_table_stack_to(("table",))
                self.insert_element(token)
                self.mode = self._mode_in_column_group
                return False
            if name == "col":
                self._clear_table_stack_to(("table",))
                self.insert_phantom("colgroup")
                self.mode = self._mode_in_column_group
                return True
            if name in ("tbody", "tfoot", "thead"):
                self._clear_table_stack_to(("table",))
                self.insert_element(token)
                self.mode = self._mode_in_table_body
                return False
            if name in ("td", "th", "tr"):
                self._clear_table_stack_to(("table",))
                self.insert_phantom("tbody")
                self.mode = self._mode_in_table_body
                return True
            if name == "table":
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                if self.element_in_scope("table", SCOPE_TABLE):
                    self.pop_until("table")
                    self.reset_insertion_mode()
                    return True
                return False
            if name in ("style", "script", "template"):
                return self._mode_in_head(token)
            if name == "input":
                input_type = (token.attr("type") or "").lower()
                if input_type == "hidden":
                    self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                    self.insert_element(token)
                    self.pop()
                    return False
            if name == "form":
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                if self.form_element is None:
                    element = self.insert_element(token)
                    self.form_element = element
                    self.pop()
                else:
                    self.event("nested-form-ignored", offset=token.offset)
                return False
        elif isinstance(token, EndTag):
            name = token.name
            if name == "table":
                if not self.element_in_scope("table", SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                    return False
                self.pop_until("table")
                self.reset_insertion_mode()
                return False
            if name in ("body", "caption", "col", "colgroup", "html", "tbody",
                        "td", "tfoot", "th", "thead", "tr"):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                return False
            if name == "template":
                return self._mode_in_head(token)
        elif isinstance(token, EOF):
            return self._mode_in_body(token)
        # Anything else: foster parenting (HF4).
        self.parse_error(ErrorCode.FOSTER_PARENTED_CONTENT, token)
        self.event(
            "foster-parented",
            tag=_describe_token(token),
            offset=getattr(token, "offset", -1),
        )
        self.foster_parenting = True
        result = self._mode_in_body(token)
        self.foster_parenting = False
        return result

    def _clear_table_stack_to(self, names: tuple[str, ...]) -> None:
        stop = set(names) | {"html", "template"}
        while (
            self.current_node is not None
            and not (
                self.current_node.is_html() and self.current_node.name in stop
            )
        ):
            self.pop()

    def _mode_in_table_text(self, token: Token) -> bool:
        if isinstance(token, Character):
            if not token.has_nul():
                # common case: buffer the lazy token itself, decode-free
                self._pending_table_text.append(token)
                return False
            data = token.data.replace("\x00", "")
            if data:
                self._pending_table_text.append(Character(token.offset, data))
            return False
        pending = self._pending_table_text
        self._pending_table_text = []
        all_ws = all(chunk.is_whitespace() for chunk in pending)
        assert self.original_mode is not None
        self.mode = self.original_mode
        if pending:
            if all_ws:
                for chunk in pending:
                    self.insert_text(chunk)
            else:
                for chunk in pending:
                    self.parse_error(ErrorCode.FOSTER_PARENTED_CONTENT, chunk)
                    self.event(
                        "foster-parented", tag="#text", offset=chunk.offset,
                        detail=chunk.data[:40],
                    )
                    self.foster_parenting = True
                    self._in_body_character(chunk)
                    self.foster_parenting = False
        return True

    def _mode_in_caption(self, token: Token) -> bool:
        if isinstance(token, EndTag) and token.name == "caption":
            if not self.element_in_scope("caption", SCOPE_TABLE):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
            self.generate_implied_end_tags()
            self.pop_until("caption")
            self.clear_formatting_to_marker()
            self.mode = self._mode_in_table
            return False
        if (
            isinstance(token, StartTag)
            and token.name in ("caption", "col", "colgroup", "tbody", "td",
                               "tfoot", "th", "thead", "tr")
        ) or (isinstance(token, EndTag) and token.name == "table"):
            self.parse_error(
                ErrorCode.UNEXPECTED_CELL_OR_ROW, token, token.name
            )
            if self.element_in_scope("caption", SCOPE_TABLE):
                self.generate_implied_end_tags()
                self.pop_until("caption")
                self.clear_formatting_to_marker()
                self.mode = self._mode_in_table
                return True
            return False
        if isinstance(token, EndTag) and token.name in (
            "body", "col", "colgroup", "html", "tbody", "td", "tfoot", "th",
            "thead", "tr",
        ):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        return self._mode_in_body(token)

    def _mode_in_column_group(self, token: Token) -> bool:
        if isinstance(token, Character):
            prefix, rest = _split_leading_ws(token.data)
            if prefix:
                self.insert_text(prefix)
            if not rest:
                return False
            token.data = rest
        elif isinstance(token, Comment):
            self.insert_comment(token)
            return False
        elif isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            return False
        elif isinstance(token, StartTag):
            if token.name == "html":
                return self._mode_in_body(token)
            if token.name == "col":
                self.insert_element(token)
                self.pop()
                return False
            if token.name == "template":
                return self._mode_in_head(token)
        elif isinstance(token, EndTag):
            if token.name == "colgroup":
                if self.current_node is not None and self.current_node.name == "colgroup":
                    self.pop()
                    self.mode = self._mode_in_table
                else:
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
            if token.name == "col":
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
            if token.name == "template":
                return self._mode_in_head(token)
        elif isinstance(token, EOF):
            return self._mode_in_body(token)
        if self.current_node is not None and self.current_node.name == "colgroup":
            self.pop()
            self.mode = self._mode_in_table
            return True
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token)
        return False

    def _mode_in_table_body(self, token: Token) -> bool:
        if isinstance(token, StartTag):
            if token.name == "tr":
                self._clear_table_stack_to(("tbody", "tfoot", "thead"))
                self.insert_element(token)
                self.mode = self._mode_in_row
                return False
            if token.name in ("th", "td"):
                self.parse_error(ErrorCode.UNEXPECTED_CELL_OR_ROW, token, token.name)
                self._clear_table_stack_to(("tbody", "tfoot", "thead"))
                self.insert_phantom("tr")
                self.mode = self._mode_in_row
                return True
            if token.name in ("caption", "col", "colgroup", "tbody", "tfoot",
                              "thead"):
                if not self._table_body_context_in_scope():
                    self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
                    return False
                self._clear_table_stack_to(("tbody", "tfoot", "thead"))
                self.pop()
                self.mode = self._mode_in_table
                return True
        elif isinstance(token, EndTag):
            if token.name in ("tbody", "tfoot", "thead"):
                if not self.element_in_scope(token.name, SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                self._clear_table_stack_to(("tbody", "tfoot", "thead"))
                self.pop()
                self.mode = self._mode_in_table
                return False
            if token.name == "table":
                if not self._table_body_context_in_scope():
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                self._clear_table_stack_to(("tbody", "tfoot", "thead"))
                self.pop()
                self.mode = self._mode_in_table
                return True
            if token.name in ("body", "caption", "col", "colgroup", "html",
                              "td", "th", "tr"):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
        return self._mode_in_table(token)

    def _table_body_context_in_scope(self) -> bool:
        return any(
            self.element_in_scope(name, SCOPE_TABLE)
            for name in ("tbody", "thead", "tfoot")
        )

    def _mode_in_row(self, token: Token) -> bool:
        if isinstance(token, StartTag):
            if token.name in ("th", "td"):
                self._clear_table_stack_to(("tr",))
                self.insert_element(token)
                self.mode = self._mode_in_cell
                self.insert_formatting_marker()
                return False
            if token.name in ("caption", "col", "colgroup", "tbody", "tfoot",
                              "thead", "tr"):
                if not self.element_in_scope("tr", SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
                    return False
                self._clear_table_stack_to(("tr",))
                self.pop()
                self.mode = self._mode_in_table_body
                return True
        elif isinstance(token, EndTag):
            if token.name == "tr":
                if not self.element_in_scope("tr", SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                self._clear_table_stack_to(("tr",))
                self.pop()
                self.mode = self._mode_in_table_body
                return False
            if token.name == "table":
                if not self.element_in_scope("tr", SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                self._clear_table_stack_to(("tr",))
                self.pop()
                self.mode = self._mode_in_table_body
                return True
            if token.name in ("tbody", "tfoot", "thead"):
                if not self.element_in_scope(token.name, SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                if not self.element_in_scope("tr", SCOPE_TABLE):
                    return False
                self._clear_table_stack_to(("tr",))
                self.pop()
                self.mode = self._mode_in_table_body
                return True
            if token.name in ("body", "caption", "col", "colgroup", "html",
                              "td", "th"):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
        return self._mode_in_table(token)

    def _mode_in_cell(self, token: Token) -> bool:
        if isinstance(token, EndTag):
            if token.name in ("td", "th"):
                if not self.element_in_scope(token.name, SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                self.generate_implied_end_tags()
                if self.current_node is not None and self.current_node.name != token.name:
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                self.pop_until(token.name)
                self.clear_formatting_to_marker()
                self.mode = self._mode_in_row
                return False
            if token.name in ("body", "caption", "col", "colgroup", "html"):
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                return False
            if token.name in ("table", "tbody", "tfoot", "thead", "tr"):
                if not self.element_in_scope(token.name, SCOPE_TABLE):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
                    return False
                self._close_cell()
                return True
        elif isinstance(token, StartTag) and token.name in (
            "caption", "col", "colgroup", "tbody", "td", "tfoot", "th",
            "thead", "tr",
        ):
            if not (
                self.element_in_scope("td", SCOPE_TABLE)
                or self.element_in_scope("th", SCOPE_TABLE)
            ):
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
                return False
            self._close_cell()
            return True
        return self._mode_in_body(token)

    def _close_cell(self) -> None:
        self.generate_implied_end_tags()
        if self.current_node is not None and self.current_node.name not in ("td", "th"):
            self.parse_error(ErrorCode.UNEXPECTED_CELL_OR_ROW, None)
        self.pop_until("td", "th")
        self.clear_formatting_to_marker()
        self.mode = self._mode_in_row

    # ----------------------------------------------------------- select modes

    def _mode_in_select(self, token: Token) -> bool:
        if isinstance(token, Character):
            data = token.data.replace("\x00", "")
            if data:
                self.insert_text(data)
            return False
        if isinstance(token, Comment):
            self.insert_comment(token)
            return False
        if isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            return False
        if isinstance(token, StartTag):
            name = token.name
            if name == "html":
                return self._mode_in_body(token)
            if name == "option":
                if self.current_node is not None and self.current_node.name == "option":
                    self.pop()
                self.insert_element(token)
                return False
            if name == "optgroup":
                if self.current_node is not None and self.current_node.name == "option":
                    self.pop()
                if self.current_node is not None and self.current_node.name == "optgroup":
                    self.pop()
                self.insert_element(token)
                return False
            if name == "select":
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                if self.element_in_select_scope("select"):
                    self.pop_until("select")
                    self.reset_insertion_mode()
                return False
            if name in ("input", "keygen", "textarea"):
                self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
                if self.element_in_select_scope("select"):
                    self.pop_until("select")
                    self.reset_insertion_mode()
                    return True
                return False
            if name in ("script", "template"):
                return self._mode_in_head(token)
            self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, name)
            return False
        if isinstance(token, EndTag):
            name = token.name
            if name == "optgroup":
                if (
                    self.current_node is not None
                    and self.current_node.name == "option"
                    and len(self.open_elements) >= 2
                    and self.open_elements[-2].name == "optgroup"
                ):
                    self.pop()
                if self.current_node is not None and self.current_node.name == "optgroup":
                    self.pop()
                else:
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                return False
            if name == "option":
                if self.current_node is not None and self.current_node.name == "option":
                    self.pop()
                else:
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                return False
            if name == "select":
                if not self.element_in_select_scope("select"):
                    self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
                    return False
                self.pop_until("select")
                self.reset_insertion_mode()
                return False
            if name == "template":
                return self._mode_in_head(token)
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            return False
        if isinstance(token, EOF):
            return self._mode_in_body(token)
        return False

    def _mode_in_template(self, token: Token) -> bool:
        """The "in template" insertion mode (spec 13.2.6.4.22)."""
        if isinstance(token, (Character, Comment, Doctype)):
            return self._mode_in_body(token)
        if isinstance(token, StartTag):
            name = token.name
            if name in ("base", "basefont", "bgsound", "link", "meta",
                        "noframes", "script", "style", "template", "title"):
                return self._mode_in_head(token)
            redirect = {
                "caption": self._mode_in_table,
                "colgroup": self._mode_in_table,
                "tbody": self._mode_in_table,
                "tfoot": self._mode_in_table,
                "thead": self._mode_in_table,
                "col": self._mode_in_column_group,
                "tr": self._mode_in_table_body,
                "td": self._mode_in_row,
                "th": self._mode_in_row,
            }
            target = redirect.get(name, self._mode_in_body)
            self.template_modes.pop()
            self.template_modes.append(target)
            self.mode = target
            return True
        if isinstance(token, EndTag):
            if token.name == "template":
                return self._mode_in_head(token)
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            return False
        assert isinstance(token, EOF)
        if not any(
            element.name == "template" and element.is_html()
            for element in self.open_elements
        ):
            self._stopped = True
            return False
        self.parse_error(ErrorCode.EOF_WITH_UNCLOSED_ELEMENTS, token, "template")
        self.event("element-open-at-eof", tag="template")
        self.pop_until("template")
        self.clear_formatting_to_marker()
        if self.template_modes:
            self.template_modes.pop()
        self.reset_insertion_mode()
        return True

    def _mode_in_select_in_table(self, token: Token) -> bool:
        if isinstance(token, StartTag) and token.name in (
            "caption", "table", "tbody", "tfoot", "thead", "tr", "td", "th"
        ):
            self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token, token.name)
            self.pop_until("select")
            self.reset_insertion_mode()
            return True
        if isinstance(token, EndTag) and token.name in (
            "caption", "table", "tbody", "tfoot", "thead", "tr", "td", "th"
        ):
            self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, token.name)
            if self.element_in_scope(token.name, SCOPE_TABLE):
                self.pop_until("select")
                self.reset_insertion_mode()
                return True
            return False
        return self._mode_in_select(token)

    # ------------------------------------------------------- after body etc.

    def _mode_after_body(self, token: Token) -> bool:
        if isinstance(token, Character) and not token.data.strip(_WS):
            return self._mode_in_body(token)
        if isinstance(token, Comment):
            root = self.open_elements[0] if self.open_elements else self.document
            self.insert_comment(token, root)
            return False
        if isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            return False
        if isinstance(token, StartTag) and token.name == "html":
            return self._mode_in_body(token)
        if isinstance(token, EndTag) and token.name == "html":
            self.mode = self._mode_after_after_body
            return False
        if isinstance(token, EOF):
            self._stopped = True
            return False
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token)
        self.mode = self._mode_in_body
        return True

    def _mode_after_after_body(self, token: Token) -> bool:
        if isinstance(token, Comment):
            self.insert_comment(token, self.document)
            return False
        if isinstance(token, Doctype) or (
            isinstance(token, Character) and not token.data.strip(_WS)
        ):
            return self._mode_in_body(token)
        if isinstance(token, StartTag) and token.name == "html":
            return self._mode_in_body(token)
        if isinstance(token, EOF):
            self._stopped = True
            return False
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token)
        self.mode = self._mode_in_body
        return True

    def _mode_in_frameset(self, token: Token) -> bool:
        if isinstance(token, Character):
            kept = "".join(char for char in token.data if char in _WS)
            if kept:
                self.insert_text(kept)
            return False
        if isinstance(token, Comment):
            self.insert_comment(token)
            return False
        if isinstance(token, StartTag):
            if token.name == "html":
                return self._mode_in_body(token)
            if token.name == "frameset":
                self.insert_element(token)
                return False
            if token.name == "frame":
                self.insert_element(token)
                self.pop()
                return False
            if token.name == "noframes":
                return self._mode_in_head(token)
        if isinstance(token, EndTag) and token.name == "frameset":
            if self.current_node is not None and self.current_node.name != "html":
                self.pop()
            if self.current_node is not None and self.current_node.name != "frameset":
                self.mode = self._mode_after_frameset
            return False
        if isinstance(token, EOF):
            self._stopped = True
            return False
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token)
        return False

    def _mode_after_frameset(self, token: Token) -> bool:
        if isinstance(token, Character):
            kept = "".join(char for char in token.data if char in _WS)
            if kept:
                self.insert_text(kept)
            return False
        if isinstance(token, Comment):
            self.insert_comment(token)
            return False
        if isinstance(token, StartTag) and token.name == "html":
            return self._mode_in_body(token)
        if isinstance(token, StartTag) and token.name == "noframes":
            return self._mode_in_head(token)
        if isinstance(token, EndTag) and token.name == "html":
            self.mode = self._mode_after_after_frameset
            return False
        if isinstance(token, EOF):
            self._stopped = True
            return False
        self.parse_error(ErrorCode.UNEXPECTED_START_TAG, token)
        return False

    def _mode_after_after_frameset(self, token: Token) -> bool:
        if isinstance(token, Comment):
            self.insert_comment(token, self.document)
            return False
        if isinstance(token, StartTag) and token.name == "html":
            return self._mode_in_body(token)
        if isinstance(token, StartTag) and token.name == "noframes":
            return self._mode_in_head(token)
        if isinstance(token, EOF):
            self._stopped = True
            return False
        return False

    # -------------------------------------------------------- foreign content

    def _mode_foreign_content(self, token: Token) -> bool:
        if isinstance(token, Character):
            data = token.data.replace("\x00", "�")
            self.insert_text(data)
            if data.strip(_WS):
                self.frameset_ok = False
            return False
        if isinstance(token, Comment):
            self.insert_comment(token)
            return False
        if isinstance(token, Doctype):
            self.parse_error(ErrorCode.UNEXPECTED_DOCTYPE, token)
            return False
        if isinstance(token, StartTag):
            name = token.name
            is_breakout = name in FOREIGN_BREAKOUT or (
                name == "font"
                and any(
                    token.has_attr(attr) for attr in ("color", "face", "size")
                )
            )
            if is_breakout:
                current = self.adjusted_current_node
                namespace = current.namespace if current is not None else HTML_NAMESPACE
                self.parse_error(
                    ErrorCode.UNEXPECTED_HTML_ELEMENT_IN_FOREIGN_CONTENT,
                    token,
                    name,
                )
                self.event(
                    "foreign-breakout", tag=name, namespace=namespace,
                    offset=token.offset,
                )
                while True:
                    node = self.current_node
                    if node is None:
                        break
                    if node.is_html() or self._is_mathml_text_integration(node) or \
                            self._is_html_integration_point(node):
                        break
                    self.pop()
                return True
            current = self.adjusted_current_node
            assert current is not None
            if current.namespace == SVG_NAMESPACE:
                token.name = SVG_TAG_ADJUSTMENTS.get(name, name)
            element = self.insert_element(token, current.namespace)
            if token.self_closing:
                self.pop()
            return False
        if isinstance(token, EndTag):
            name = token.name
            node = self.current_node
            if node is not None and node.name.lower() != name:
                self.parse_error(ErrorCode.UNEXPECTED_END_TAG, token, name)
            index = len(self.open_elements) - 1
            while index > 0:
                node = self.open_elements[index]
                if node.name.lower() == name:
                    while self.open_elements[-1] is not node:
                        self.pop()
                    self.pop()
                    return False
                index -= 1
                if self.open_elements[index].is_html():
                    return self.mode(token)
            return False
        return False

    @staticmethod
    def _is_mathml_text_integration(element: Element) -> bool:
        return (
            element.namespace == MATHML_NAMESPACE
            and element.name in MATHML_TEXT_INTEGRATION
        )

    def _adjust_foreign_attributes(self, token: StartTag) -> None:
        # Our DOM stores attribute names as flat strings; nothing to rewrite,
        # but 'definitionurl' gets its canonical MathML casing.
        for attr in token.attributes:
            if attr.name == "definitionurl":
                attr.name = "definitionURL"

    # ------------------------------------------------------------------ reset

    def reset_insertion_mode(self) -> None:
        for index in range(len(self.open_elements) - 1, -1, -1):
            node = self.open_elements[index]
            last = index == 0
            if last and self.fragment_context is not None:
                node = self.fragment_context
            if not node.is_html():
                continue
            name = node.name
            if name == "template" and self.template_modes:
                self.mode = self.template_modes[-1]
                return
            if name == "select":
                self.mode = self._mode_in_select
                return
            if name in ("td", "th") and not last:
                self.mode = self._mode_in_cell
                return
            if name == "tr":
                self.mode = self._mode_in_row
                return
            if name in ("tbody", "thead", "tfoot"):
                self.mode = self._mode_in_table_body
                return
            if name == "caption":
                self.mode = self._mode_in_caption
                return
            if name == "colgroup":
                self.mode = self._mode_in_column_group
                return
            if name == "table":
                self.mode = self._mode_in_table
                return
            if name == "head" and not last:
                self.mode = self._mode_in_head
                return
            if name == "body":
                self.mode = self._mode_in_body
                return
            if name == "frameset":
                self.mode = self._mode_in_frameset
                return
            if name == "html":
                if self.head_element is None:
                    self.mode = self._mode_before_head
                else:
                    self.mode = self._mode_after_head
                return
            if last:
                self.mode = self._mode_in_body
                return


class StreamTaint(Exception):
    """A stream-mode parse hit a mutation the flat emission cannot mirror.

    Only raised by :func:`parse_bytes_stream` with ``taint="raise"``
    (equivalence tooling); the production path records the taint and keeps
    parsing — see :class:`StreamTreeBuilder`.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class StreamTreeBuilder(TreeBuilder):
    """A tree builder that emits elements for DOM-free checking.

    Runs the full tree-construction state machine (the stack, formatting
    list and insertion modes all behave identically) but:

    * every inserted element is appended to ``_stream_elements`` together
      with its walk-equivalent ``in_head`` flag, maintained as a counter
      of open ``head``-named elements — captured *before* the push, which
      matches the fused walk handing each element its parent-derived flag;
    * text and comment nodes are never constructed or linked (no rule
      reads them from the tree — the fused walk dispatches elements only
      and no footprint reaches ``text_content``), which skips the text
      coalescing and node allocation entirely;
    * any mutation that would make emission order diverge from the final
      tree's pre-order *taints* the parse: the builder keeps going, the
      finished :class:`ParseResult` carries ``stream_elements = None``,
      and the checker dispatches via the ordinary DOM walk over the
      (element-complete, text-free) tree — no re-parse, findings
      bit-identical by construction.

    Emission order equals final-tree pre-order because every non-tainted
    insertion appends to the element on top of the open-elements stack,
    whose earlier children are already complete.  Post-emission attribute
    merges (second ``<html>``/``<body>`` tags) are safe: dispatch over the
    buffered list happens after the parse, on the same element objects.

    The four taint sites: foster-parented element insertion into an open
    table, the adoption agency's furthest-block path, the frameset body
    takeover, and a head element re-routed into the closed ``<head>``.
    """

    _FOSTER_TARGETS = frozenset({"table", "tbody", "tfoot", "thead", "tr"})

    def __init__(
        self, *, collect_tokens: bool = True, taint: str = "fallback"
    ) -> None:
        super().__init__(collect_tokens=collect_tokens)
        self._stream_elements = []
        self._head_depth = 0
        self.tainted: str | None = None
        #: "fallback" records the taint and keeps parsing; "raise" aborts
        #: with :class:`StreamTaint` (used by parity tooling to find the
        #: first divergence point)
        self._taint_policy = taint

    def _stream_taint(self, reason: str) -> None:
        if self._taint_policy == "raise":
            raise StreamTaint(reason)
        if self.tainted is None:
            self.tainted = reason
            # the flat emission is now unusable; stop paying for it
            self._stream_elements = None

    def _stream_emit_root(self, element: Element) -> None:
        elements = self._stream_elements
        if elements is not None:
            elements.append((element, False))

    def _stream_foster_check(self) -> None:
        # called from the base insertion sites only while fostering is
        # active: inserting at a table-section target reorders the tree
        target = self.open_elements[-1]
        if target.is_html() and target.name in self._FOSTER_TARGETS:
            self._stream_taint("foster-parented element")

    def insert_text(self, data) -> None:
        """Text nodes are invisible to every tree rule: skip them."""

    def insert_comment(self, token: Comment, parent: Node | None = None) -> None:
        """Comment nodes are invisible to every tree rule: skip them."""


def _build_dispatch(entries: dict) -> dict:
    """Expand {name-or-name-tuple: handler} into a flat name -> handler map."""
    table: dict = {}
    for key, handler in entries.items():
        if isinstance(key, tuple):
            for name in key:
                table[name] = handler
        else:
            table[key] = handler
    return table


#: "in body" start-tag dispatch: one dict hit replaces the spec's ordered
#: comparison chain.  Tags absent from the table take the "any other start
#: tag" path.  ``a`` overrides the generic formatting handler; ``noscript``
#: resolves the scripting flag inside its handler.
_IN_BODY_START = _build_dispatch({
    "html": TreeBuilder._ibs_html,
    ("base", "basefont", "bgsound", "link", "meta", "noframes", "style",
     "script", "template", "title"): TreeBuilder._ibs_in_head,
    "body": TreeBuilder._ibs_body,
    "frameset": TreeBuilder._ibs_frameset,
    ("address", "article", "aside", "blockquote", "center", "details",
     "dialog", "dir", "div", "dl", "fieldset", "figcaption", "figure",
     "footer", "header", "hgroup", "main", "menu", "nav", "ol", "p",
     "section", "summary", "ul"): TreeBuilder._ibs_block,
    tuple(HEADING_ELEMENTS): TreeBuilder._ibs_heading,
    ("pre", "listing"): TreeBuilder._ibs_pre,
    "form": TreeBuilder._ibs_form,
    "li": TreeBuilder._ibs_li,
    ("dd", "dt"): TreeBuilder._ibs_dd_dt,
    "plaintext": TreeBuilder._ibs_plaintext,
    "button": TreeBuilder._ibs_button,
    tuple(FORMATTING_ELEMENTS - {"a"}): TreeBuilder._ibs_formatting,
    "a": TreeBuilder._ibs_a,
    ("applet", "marquee", "object"): TreeBuilder._ibs_applet,
    "table": TreeBuilder._ibs_table,
    ("area", "br", "embed", "img", "keygen", "wbr"): TreeBuilder._ibs_void,
    "input": TreeBuilder._ibs_input,
    ("param", "source", "track"): TreeBuilder._ibs_param,
    "hr": TreeBuilder._ibs_hr,
    "image": TreeBuilder._ibs_image,
    "textarea": TreeBuilder._ibs_textarea,
    "xmp": TreeBuilder._ibs_xmp,
    "iframe": TreeBuilder._ibs_iframe,
    "noembed": TreeBuilder._ibs_noembed,
    "noscript": TreeBuilder._ibs_noscript,
    "select": TreeBuilder._ibs_select,
    ("optgroup", "option"): TreeBuilder._ibs_option,
    ("rb", "rtc"): TreeBuilder._ibs_rb,
    ("rp", "rt"): TreeBuilder._ibs_rp,
    "math": TreeBuilder._ibs_math,
    "svg": TreeBuilder._ibs_svg,
    ("caption", "col", "colgroup", "frame", "head", "tbody", "td", "tfoot",
     "th", "thead", "tr"): TreeBuilder._ibs_table_misplaced,
})

#: "in body" end-tag dispatch; absent tags take ``_any_other_end_tag``.
_IN_BODY_END = _build_dispatch({
    "body": TreeBuilder._ibe_body,
    "html": TreeBuilder._ibe_html,
    ("address", "article", "aside", "blockquote", "button", "center",
     "details", "dialog", "dir", "div", "dl", "fieldset", "figcaption",
     "figure", "footer", "header", "hgroup", "listing", "main", "menu",
     "nav", "ol", "pre", "section", "summary", "ul"): TreeBuilder._ibe_block,
    "form": TreeBuilder._ibe_form,
    "p": TreeBuilder._ibe_p,
    "li": TreeBuilder._ibe_li,
    ("dd", "dt"): TreeBuilder._ibe_dd_dt,
    tuple(HEADING_ELEMENTS): TreeBuilder._ibe_heading,
    tuple(FORMATTING_ELEMENTS): TreeBuilder._ibe_formatting,
    ("applet", "marquee", "object"): TreeBuilder._ibe_applet,
    "br": TreeBuilder._ibe_br,
    "template": TreeBuilder._ibe_template,
})


def _split_leading_ws(data: str) -> tuple[str, str]:
    rest = data.lstrip(_WS)
    return data[: len(data) - len(rest)], rest


def _describe_token(token: Token) -> str:
    if isinstance(token, StartTag):
        return token.name
    if isinstance(token, EndTag):
        return f"/{token.name}"
    if isinstance(token, Character):
        return "#text"
    if isinstance(token, Comment):
        return "#comment"
    if isinstance(token, EOF):
        return "#eof"
    return "#doctype"


# ------------------------------------------------------------------ frontends

def parse(text: str, *, collect_tokens: bool = True) -> ParseResult:
    """Parse a full HTML document with the error-tolerant algorithm."""
    return TreeBuilder(collect_tokens=collect_tokens).parse(text)


def parse_bytes(data: bytes, *, collect_tokens: bool = True) -> ParseResult:
    """Parse raw UTF-8 bytes decode-free (the pipeline hot path).

    Equivalent to ``parse(preprocess(decode_bytes(data)).text)`` for valid
    UTF-8 input but without the upfront decode and normalization copies;
    raises :class:`UnicodeDecodeError` for input the section 4.1 encoding
    filter would reject.
    """
    return TreeBuilder(collect_tokens=collect_tokens).parse_bytes(data)


def parse_bytes_stream(
    data: bytes, *, collect_tokens: bool = True, taint: str = "fallback"
) -> ParseResult:
    """Parse raw UTF-8 bytes in DOM-free stream mode.

    For untainted pages the returned result carries ``stream_elements`` —
    the element pre-order as ``(element, in_head)`` pairs; tainted pages
    come back with ``stream_elements = None`` and are checked through the
    ordinary DOM walk instead.  Either way the document tree contains
    elements only (no text or comment nodes), so it must not be fed to
    the serializer or text-reading consumers.  ``taint="raise"`` aborts
    with :class:`StreamTaint` at the first divergence instead (parity
    tooling).
    """
    return StreamTreeBuilder(
        collect_tokens=collect_tokens, taint=taint
    ).parse_bytes(data)


def parse_fragment(
    text: str, context: str = "div", *, collect_tokens: bool = True
) -> tuple[list[Node], ParseResult]:
    """Parse an HTML fragment in ``context`` (the innerHTML algorithm).

    Returns the list of parsed top-level nodes plus the full parse result.
    This is what HTML sanitizers effectively do, and what the mXSS example
    uses to reproduce the Figure 1 DOMPurify bypass.
    """
    context_element = Element(context)
    builder = TreeBuilder(
        collect_tokens=collect_tokens, fragment_context=context_element
    )
    root = Element("html", source_offset=-1, arena=builder.arena)
    builder.document.append(root)
    builder.push(root)
    if context in ("title", "textarea"):
        initial_state = RCDATA
    elif context in ("style", "xmp", "iframe", "noembed", "noframes"):
        initial_state = RAWTEXT
    elif context == "script":
        initial_state = SCRIPT_DATA
    elif context == "plaintext":
        initial_state = PLAINTEXT
    else:
        initial_state = DATA
    builder.reset_insertion_mode()
    if builder.mode == builder._mode_before_head:  # context was html-ish
        builder.mode = builder._mode_in_body
    pre = preprocess(text)
    builder.tokenizer = Tokenizer(pre.text)
    builder.tokenizer.switch_to(initial_state)
    builder._update_foreign_flag()
    for token in builder.tokenizer:
        if builder._collect_tokens:
            builder.tokens.append(token)
        builder.process_token(token)
        if builder._stopped:
            break
    builder.errors.extend(builder.tokenizer.errors)
    builder.errors.sort(key=lambda error: error.offset)
    result = ParseResult(
        document=builder.document,
        errors=builder.errors,
        events=builder.events,
        tokens=builder.tokens if builder._collect_tokens else [],
        source=pre.text,
    )
    return list(root.children), result
