"""Tree dumps in the html5lib-tests format.

Used by the conformance tests and handy for debugging: each node on its
own line, two-space indentation per depth, attributes sorted and printed
on their own lines, foreign elements prefixed with their namespace.
"""
from __future__ import annotations

from .dom import (
    MATHML_NAMESPACE,
    SVG_NAMESPACE,
    CommentNode,
    Document,
    DocumentType,
    Element,
    Node,
    Text,
)

_PREFIX = {SVG_NAMESPACE: "svg ", MATHML_NAMESPACE: "math "}


def dump_tree(document: Document) -> str:
    """Serialize a document in the html5lib tree-construction test format."""
    # Iterative (explicit stack of (node, depth)) — dumping must work on
    # arbitrarily deep parsed trees, e.g. when debugging fuzz findings.
    lines: list[str] = []
    stack = [(child, 0) for child in reversed(document.children)]
    while stack:
        node, depth = stack.pop()
        _dump_node(node, depth, lines)
        if isinstance(node, Element):
            stack.extend(
                (child, depth + 1) for child in reversed(node.children)
            )
    return "\n".join(lines)


def _dump_node(node: Node, depth: int, lines: list[str]) -> None:
    indent = "| " + "  " * depth
    if isinstance(node, DocumentType):
        name = node.name
        if node.public_id or node.system_id:
            lines.append(
                f'{indent}<!DOCTYPE {name} "{node.public_id}" "{node.system_id}">'
            )
        else:
            lines.append(f"{indent}<!DOCTYPE {name}>")
        return
    if isinstance(node, CommentNode):
        lines.append(f"{indent}<!-- {node.data} -->")
        return
    if isinstance(node, Text):
        lines.append(f'{indent}"{node.data}"')
        return
    if isinstance(node, Element):
        prefix = _PREFIX.get(node.namespace, "")
        lines.append(f"{indent}<{prefix}{node.name}>")
        for name in sorted(node.attributes):
            lines.append(f'{indent}  {name}="{node.attributes[name]}"')
