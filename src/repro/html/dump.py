"""Tree dumps in the html5lib-tests format.

Used by the conformance tests and handy for debugging: each node on its
own line, two-space indentation per depth, attributes sorted and printed
on their own lines, foreign elements prefixed with their namespace.
"""
from __future__ import annotations

from .dom import (
    MATHML_NAMESPACE,
    SVG_NAMESPACE,
    CommentNode,
    Document,
    DocumentType,
    Element,
    Node,
    Text,
)

_PREFIX = {SVG_NAMESPACE: "svg ", MATHML_NAMESPACE: "math "}


def dump_tree(document: Document) -> str:
    """Serialize a document in the html5lib tree-construction test format."""
    lines: list[str] = []
    for child in document.children:
        _dump(child, 0, lines)
    return "\n".join(lines)


def _dump(node: Node, depth: int, lines: list[str]) -> None:
    indent = "| " + "  " * depth
    if isinstance(node, DocumentType):
        name = node.name
        if node.public_id or node.system_id:
            lines.append(
                f'{indent}<!DOCTYPE {name} "{node.public_id}" "{node.system_id}">'
            )
        else:
            lines.append(f"{indent}<!DOCTYPE {name}>")
        return
    if isinstance(node, CommentNode):
        lines.append(f"{indent}<!-- {node.data} -->")
        return
    if isinstance(node, Text):
        lines.append(f'{indent}"{node.data}"')
        return
    if isinstance(node, Element):
        prefix = _PREFIX.get(node.namespace, "")
        lines.append(f"{indent}<{prefix}{node.name}>")
        for name in sorted(node.attributes):
            lines.append(f'{indent}  {name}="{node.attributes[name]}"')
        for child in node.children:
            _dump(child, depth + 1, lines)
