"""A minimal DOM for the tree-construction stage (HTML spec section 13.2.6).

Only what the parser, the violation rules and the serializer need: a node
tree with namespaces, ordered attributes, and traversal helpers.  The DOM is
deliberately small — it is a measurement substrate, not a rendering engine.

Storage is arena-slotted (see :mod:`repro.html.arena` and DESIGN.md §3.14):
node linkage (kind, parent, batched child list) lives in flat parallel
columns of a :class:`~repro.html.arena.DomArena`, and the classes here are
thin views ``(arena, index)`` over those columns.  Hot immutable fields —
element name, namespace — are mirrored into view slots so the tree
builder's state machine keeps slot-speed reads.  The view-layer contract:

* ``parent`` / ``children`` are properties over the arena columns;
  ``children`` materializes the batched child list on first access (leaves
  never allocate one) and returns the *real* mutable list.
* ``Element.attributes`` materializes its dict on first access; elements
  parsed without attributes never allocate one.
* ``Text.data`` coalesces appended runs lazily: the parser appends parts,
  the joined string is built once on first read.
* Links are plain object references, so nodes from different arenas can be
  mixed freely; standalone constructions get a private arena.
"""
from __future__ import annotations

from typing import Iterator

from .arena import (
    KIND_COMMENT,
    KIND_DOCTYPE,
    KIND_DOCUMENT,
    KIND_ELEMENT,
    KIND_FRAGMENT,
    KIND_TEXT,
    DomArena,
)

HTML_NAMESPACE = "http://www.w3.org/1999/xhtml"
SVG_NAMESPACE = "http://www.w3.org/2000/svg"
MATHML_NAMESPACE = "http://www.w3.org/1998/Math/MathML"

_NAMESPACE_SHORT = {
    HTML_NAMESPACE: "html",
    SVG_NAMESPACE: "svg",
    MATHML_NAMESPACE: "math",
}


class Node:
    """Base tree node: a view over one arena slot."""

    __slots__ = ("_arena", "_idx")

    #: arena kind allocated by the default constructor
    _kind = KIND_FRAGMENT

    def __init__(self, arena: DomArena | None = None) -> None:
        if arena is None:
            arena = DomArena()
        self._arena = arena
        self._idx = arena.alloc(self._kind)

    # ------------------------------------------------------------- linkage

    @property
    def parent(self) -> "Node | None":
        return self._arena.parents[self._idx]

    @parent.setter
    def parent(self, value: "Node | None") -> None:
        self._arena.parents[self._idx] = value

    @property
    def children(self) -> list:
        arena = self._arena
        idx = self._idx
        lst = arena.children[idx]
        if lst is None:
            lst = arena.children[idx] = []
        return lst

    # ------------------------------------------------------------- mutation

    def append(self, child: "Node") -> "Node":
        child_arena = child._arena
        child_idx = child._idx
        old_parent = child_arena.parents[child_idx]
        if old_parent is not None:
            # fast path for fresh nodes: skip the O(n) list.remove dance
            old_parent.remove(child)
        child_arena.parents[child_idx] = self
        arena = self._arena
        idx = self._idx
        lst = arena.children[idx]
        if lst is None:
            arena.children[idx] = [child]
        else:
            lst.append(child)
        return child

    def insert_before(self, child: "Node", reference: "Node | None") -> "Node":
        if reference is None:
            return self.append(child)
        old_parent = child._arena.parents[child._idx]
        if old_parent is not None:
            old_parent.remove(child)
        children = self.children
        index = children.index(reference)
        child._arena.parents[child._idx] = self
        children.insert(index, child)
        return child

    def remove(self, child: "Node") -> None:
        self.children.remove(child)
        child._arena.parents[child._idx] = None

    # ------------------------------------------------------------ traversal

    def iter(self) -> Iterator["Node"]:
        """Depth-first pre-order traversal including self.

        Iterative: the parser happily builds trees thousands of elements
        deep (e.g. unclosed-tag repetition), which a recursive walk would
        turn into a RecursionError.  Reads the children column directly so
        leaves never materialize a child list.
        """
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            lst = node._arena.children[node._idx]
            if lst:
                stack.extend(reversed(lst))

    def iter_elements(self) -> Iterator["Element"]:
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    def find(self, tag: str, namespace: str | None = None) -> "Element | None":
        """First descendant element named ``tag`` (excluding self)."""
        for element in self.iter_elements():
            if (
                element is not self
                and element.name == tag
                and (namespace is None or element.namespace == namespace)
            ):
                return element
        return None

    def find_all(self, tag: str, namespace: str | None = None) -> list["Element"]:
        """All descendant elements named ``tag`` (excluding self)."""
        return [
            element
            for element in self.iter_elements()
            if element is not self
            and element.name == tag
            and (namespace is None or element.namespace == namespace)
        ]

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def text_content(self) -> str:
        parts = [node.data for node in self.iter() if isinstance(node, Text)]
        return "".join(parts)


class Document(Node):
    __slots__ = ("doctype", "mode")

    _kind = KIND_DOCUMENT

    def __init__(self, arena: DomArena | None = None) -> None:
        super().__init__(arena)
        from .quirks import QuirksMode  # local import avoids a cycle

        self.doctype: DocumentType | None = None
        #: document mode per spec 13.2.6.4.1 (no-quirks until determined)
        self.mode = QuirksMode.NO_QUIRKS

    @property
    def quirks_mode(self) -> bool:
        from .quirks import QuirksMode

        return self.mode is QuirksMode.QUIRKS

    @quirks_mode.setter
    def quirks_mode(self, value: bool) -> None:
        from .quirks import QuirksMode

        self.mode = QuirksMode.QUIRKS if value else QuirksMode.NO_QUIRKS

    @property
    def document_element(self) -> "Element | None":
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def head(self) -> "Element | None":
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if isinstance(child, Element) and child.name == "head":
                return child
        return None

    @property
    def body(self) -> "Element | None":
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if isinstance(child, Element) and child.name in ("body", "frameset"):
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document children={len(self.children)}>"


class DocumentFragment(Node):
    __slots__ = ()

    _kind = KIND_FRAGMENT


class DocumentType(Node):
    __slots__ = ("name", "public_id", "system_id")

    _kind = KIND_DOCTYPE

    def __init__(
        self,
        name: str,
        public_id: str = "",
        system_id: str = "",
        arena: DomArena | None = None,
    ) -> None:
        if arena is None:
            arena = DomArena()
        self._arena = arena
        self._idx = arena.alloc(KIND_DOCTYPE, name)
        self.name = name
        self.public_id = public_id
        self.system_id = system_id


class Element(Node):
    __slots__ = ("name", "namespace", "_attrs", "source_offset")

    _kind = KIND_ELEMENT

    def __init__(
        self,
        name: str,
        namespace: str = HTML_NAMESPACE,
        attributes: dict[str, str] | None = None,
        source_offset: int = -1,
        arena: DomArena | None = None,
    ) -> None:
        if arena is None:
            arena = DomArena()
        # allocation is inlined (rather than arena.alloc) because element
        # construction is the single hottest allocation site in the parser
        self._arena = arena
        kinds = arena.kinds
        self._idx = len(kinds)
        kinds.append(KIND_ELEMENT)
        arena.names.append(name)
        arena.parents.append(None)
        arena.children.append(None)
        self.name = name
        self.namespace = namespace
        # the attribute dict materializes on first access: most elements in
        # real pages carry no attributes, so the common case allocates none
        self._attrs = dict(attributes) if attributes else None
        #: offset of the ``<`` of the start tag in the source, -1 if implied
        self.source_offset = source_offset

    # -------------------------------------------------------------- helpers

    @property
    def attributes(self) -> dict[str, str]:
        attrs = self._attrs
        if attrs.__class__ is dict:
            return attrs
        if attrs is None:
            attrs = self._attrs = {}
            return attrs
        # deferred form: the tree builder stashed the StartTag token here
        # instead of building the dict eagerly (most elements never have
        # their attributes read).  First occurrence wins — the tokenizer
        # flags repeated names as duplicate.
        attrs = self._attrs = {
            a.name: a.value for a in attrs.attributes if not a.duplicate
        }
        return attrs

    def get(self, name: str, default: str | None = None) -> str | None:
        attrs = self._attrs
        if attrs is None:
            return default
        if attrs.__class__ is not dict:
            attrs = self.attributes
        return attrs.get(name, default)

    def __contains__(self, name: str) -> bool:
        attrs = self._attrs
        if attrs is None:
            return False
        if attrs.__class__ is not dict:
            attrs = self.attributes
        return name in attrs

    @property
    def implied(self) -> bool:
        """True when the parser inserted this element without a source tag."""
        return self.source_offset < 0

    @property
    def namespace_short(self) -> str:
        return _NAMESPACE_SHORT.get(self.namespace, self.namespace)

    def is_html(self) -> bool:
        return self.namespace == HTML_NAMESPACE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prefix = "" if self.is_html() else f"{self.namespace_short} "
        return f"<Element {prefix}{self.name} attrs={len(self.attributes)}>"


class Text(Node):
    """A text node.

    ``data`` is coalescing-lazy: the parser appends adjacent character runs
    with :meth:`append_data` (a list push), and the joined string is built
    once on first read instead of re-materializing on every append.  Parts
    may be plain strings or lazy :class:`~repro.html.tokens.Character`
    tokens (byte spans that decode on first read), so clean parses never
    decode text content at all until something reads it.
    """

    __slots__ = ("_parts",)

    _kind = KIND_TEXT

    def __init__(self, data="", arena: DomArena | None = None) -> None:
        if arena is None:
            arena = DomArena()
        self._arena = arena
        kinds = arena.kinds
        self._idx = len(kinds)
        kinds.append(KIND_TEXT)
        arena.names.append(None)
        arena.parents.append(None)
        arena.children.append(None)
        #: str | lazy Character | list of either
        self._parts = data

    @property
    def data(self) -> str:
        parts = self._parts
        cls = parts.__class__
        if cls is str:
            return parts
        if cls is list:
            joined = "".join(
                part if part.__class__ is str else part.data for part in parts
            )
        else:  # a single lazy Character token
            joined = parts.data
        self._parts = joined
        return joined

    @data.setter
    def data(self, value: str) -> None:
        self._parts = value

    def append_data(self, more) -> None:
        """Push one more adjacent run (str or lazy Character token)."""
        parts = self._parts
        if parts.__class__ is list:
            parts.append(more)
        else:
            self._parts = [parts, more]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Text {self.data[:30]!r}>"


class CommentNode(Node):
    __slots__ = ("data",)

    _kind = KIND_COMMENT

    def __init__(self, data: str = "", arena: DomArena | None = None) -> None:
        if arena is None:
            arena = DomArena()
        self._arena = arena
        self._idx = arena.alloc(KIND_COMMENT)
        self.data = data
