"""A minimal DOM for the tree-construction stage (HTML spec section 13.2.6).

Only what the parser, the violation rules and the serializer need: a node
tree with namespaces, ordered attributes, and traversal helpers.  The DOM is
deliberately small — it is a measurement substrate, not a rendering engine.
"""
from __future__ import annotations

from typing import Iterator

HTML_NAMESPACE = "http://www.w3.org/1999/xhtml"
SVG_NAMESPACE = "http://www.w3.org/2000/svg"
MATHML_NAMESPACE = "http://www.w3.org/1998/Math/MathML"

_NAMESPACE_SHORT = {
    HTML_NAMESPACE: "html",
    SVG_NAMESPACE: "svg",
    MATHML_NAMESPACE: "math",
}


class Node:
    """Base tree node."""

    __slots__ = ("parent", "children")

    def __init__(self) -> None:
        self.parent: Node | None = None
        self.children: list[Node] = []

    # ------------------------------------------------------------- mutation

    def append(self, child: "Node") -> "Node":
        if child.parent is not None:
            child.parent.remove(child)
        child.parent = self
        self.children.append(child)
        return child

    def insert_before(self, child: "Node", reference: "Node | None") -> "Node":
        if reference is None:
            return self.append(child)
        if child.parent is not None:
            child.parent.remove(child)
        index = self.children.index(reference)
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: "Node") -> None:
        self.children.remove(child)
        child.parent = None

    # ------------------------------------------------------------ traversal

    def iter(self) -> Iterator["Node"]:
        """Depth-first pre-order traversal including self.

        Iterative: the parser happily builds trees thousands of elements
        deep (e.g. unclosed-tag repetition), which a recursive walk would
        turn into a RecursionError.
        """
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["Element"]:
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    def find(self, tag: str, namespace: str | None = None) -> "Element | None":
        """First descendant element named ``tag`` (excluding self)."""
        for element in self.iter_elements():
            if (
                element is not self
                and element.name == tag
                and (namespace is None or element.namespace == namespace)
            ):
                return element
        return None

    def find_all(self, tag: str, namespace: str | None = None) -> list["Element"]:
        """All descendant elements named ``tag`` (excluding self)."""
        return [
            element
            for element in self.iter_elements()
            if element is not self
            and element.name == tag
            and (namespace is None or element.namespace == namespace)
        ]

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def text_content(self) -> str:
        parts = [node.data for node in self.iter() if isinstance(node, Text)]
        return "".join(parts)


class Document(Node):
    __slots__ = ("doctype", "mode")

    def __init__(self) -> None:
        super().__init__()
        from .quirks import QuirksMode  # local import avoids a cycle

        self.doctype: DocumentType | None = None
        #: document mode per spec 13.2.6.4.1 (no-quirks until determined)
        self.mode = QuirksMode.NO_QUIRKS

    @property
    def quirks_mode(self) -> bool:
        from .quirks import QuirksMode

        return self.mode is QuirksMode.QUIRKS

    @quirks_mode.setter
    def quirks_mode(self, value: bool) -> None:
        from .quirks import QuirksMode

        self.mode = QuirksMode.QUIRKS if value else QuirksMode.NO_QUIRKS

    @property
    def document_element(self) -> "Element | None":
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def head(self) -> "Element | None":
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if isinstance(child, Element) and child.name == "head":
                return child
        return None

    @property
    def body(self) -> "Element | None":
        root = self.document_element
        if root is None:
            return None
        for child in root.children:
            if isinstance(child, Element) and child.name in ("body", "frameset"):
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document children={len(self.children)}>"


class DocumentFragment(Node):
    __slots__ = ()


class DocumentType(Node):
    __slots__ = ("name", "public_id", "system_id")

    def __init__(self, name: str, public_id: str = "", system_id: str = "") -> None:
        super().__init__()
        self.name = name
        self.public_id = public_id
        self.system_id = system_id


class Element(Node):
    __slots__ = ("name", "namespace", "attributes", "source_offset")

    def __init__(
        self,
        name: str,
        namespace: str = HTML_NAMESPACE,
        attributes: dict[str, str] | None = None,
        source_offset: int = -1,
    ) -> None:
        super().__init__()
        self.name = name
        self.namespace = namespace
        self.attributes: dict[str, str] = dict(attributes or {})
        #: offset of the ``<`` of the start tag in the source, -1 if implied
        self.source_offset = source_offset

    # -------------------------------------------------------------- helpers

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attributes.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    @property
    def implied(self) -> bool:
        """True when the parser inserted this element without a source tag."""
        return self.source_offset < 0

    @property
    def namespace_short(self) -> str:
        return _NAMESPACE_SHORT.get(self.namespace, self.namespace)

    def is_html(self) -> bool:
        return self.namespace == HTML_NAMESPACE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prefix = "" if self.is_html() else f"{self.namespace_short} "
        return f"<Element {prefix}{self.name} attrs={len(self.attributes)}>"


class Text(Node):
    __slots__ = ("data",)

    def __init__(self, data: str = "") -> None:
        super().__init__()
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Text {self.data[:30]!r}>"


class CommentNode(Node):
    __slots__ = ("data",)

    def __init__(self, data: str = "") -> None:
        super().__init__()
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comment {self.data[:30]!r}>"
