"""Quirks-mode determination from the DOCTYPE (HTML spec 13.2.6.4.1).

The only tree-construction behaviour that depends on quirks mode is
whether ``<table>`` closes an open ``<p>`` element, but real-world
longitudinal data is full of legacy doctypes, so the detection is
implemented in full: the spec's public-identifier prefix lists for quirks
and limited-quirks modes.
"""
from __future__ import annotations

import enum

from .tokens import Doctype


class QuirksMode(enum.Enum):
    NO_QUIRKS = "no-quirks"
    LIMITED_QUIRKS = "limited-quirks"
    QUIRKS = "quirks"


#: Public-ID prefixes forcing full quirks mode (spec list, verbatim).
_QUIRKS_PUBLIC_PREFIXES = (
    "+//silmaril//dtd html pro v0r11 19970101//",
    "-//as//dtd html 3.0 aswedit + extensions//",
    "-//advasoft ltd//dtd html 3.0 aswedit + extensions//",
    "-//ietf//dtd html 2.0 level 1//",
    "-//ietf//dtd html 2.0 level 2//",
    "-//ietf//dtd html 2.0 strict level 1//",
    "-//ietf//dtd html 2.0 strict level 2//",
    "-//ietf//dtd html 2.0 strict//",
    "-//ietf//dtd html 2.0//",
    "-//ietf//dtd html 2.1e//",
    "-//ietf//dtd html 3.0//",
    "-//ietf//dtd html 3.2 final//",
    "-//ietf//dtd html 3.2//",
    "-//ietf//dtd html 3//",
    "-//ietf//dtd html level 0//",
    "-//ietf//dtd html level 1//",
    "-//ietf//dtd html level 2//",
    "-//ietf//dtd html level 3//",
    "-//ietf//dtd html strict level 0//",
    "-//ietf//dtd html strict level 1//",
    "-//ietf//dtd html strict level 2//",
    "-//ietf//dtd html strict level 3//",
    "-//ietf//dtd html strict//",
    "-//ietf//dtd html//",
    "-//metrius//dtd metrius presentational//",
    "-//microsoft//dtd internet explorer 2.0 html strict//",
    "-//microsoft//dtd internet explorer 2.0 html//",
    "-//microsoft//dtd internet explorer 2.0 tables//",
    "-//microsoft//dtd internet explorer 3.0 html strict//",
    "-//microsoft//dtd internet explorer 3.0 html//",
    "-//microsoft//dtd internet explorer 3.0 tables//",
    "-//netscape comm. corp.//dtd html//",
    "-//netscape comm. corp.//dtd strict html//",
    "-//o'reilly and associates//dtd html 2.0//",
    "-//o'reilly and associates//dtd html extended 1.0//",
    "-//o'reilly and associates//dtd html extended relaxed 1.0//",
    "-//sq//dtd html 2.0 hotmetal + extensions//",
    "-//softquad software//dtd hotmetal pro 6.0::19990601::extensions to html 4.0//",
    "-//softquad//dtd hotmetal pro 4.0::19971010::extensions to html 4.0//",
    "-//spyglass//dtd html 2.0 extended//",
    "-//sun microsystems corp.//dtd hotjava html//",
    "-//sun microsystems corp.//dtd hotjava strict html//",
    "-//w3c//dtd html 3 1995-03-24//",
    "-//w3c//dtd html 3.2 draft//",
    "-//w3c//dtd html 3.2 final//",
    "-//w3c//dtd html 3.2//",
    "-//w3c//dtd html 3.2s draft//",
    "-//w3c//dtd html 4.0 frameset//",
    "-//w3c//dtd html 4.0 transitional//",
    "-//w3c//dtd html experimental 19960712//",
    "-//w3c//dtd html experimental 970421//",
    "-//w3c//dtd w3 html//",
    "-//w3o//dtd w3 html 3.0//",
    "-//webtechs//dtd mozilla html 2.0//",
    "-//webtechs//dtd mozilla html//",
)

_QUIRKS_PUBLIC_EXACT = (
    "-//w3o//dtd w3 html strict 3.0//en//",
    "-/w3c/dtd html 4.0 transitional/en",
    "html",
)

_QUIRKS_SYSTEM_EXACT = (
    "http://www.ibm.com/data/dtd/v11/ibmxhtml1-transitional.dtd",
)

#: prefixes that force quirks only when NO system identifier is present
_QUIRKS_PUBLIC_PREFIXES_NO_SYSTEM = (
    "-//w3c//dtd html 4.01 frameset//",
    "-//w3c//dtd html 4.01 transitional//",
)

_LIMITED_PUBLIC_PREFIXES = (
    "-//w3c//dtd xhtml 1.0 frameset//",
    "-//w3c//dtd xhtml 1.0 transitional//",
)

#: prefixes that give limited quirks only when a system id IS present
_LIMITED_PUBLIC_PREFIXES_WITH_SYSTEM = (
    "-//w3c//dtd html 4.01 frameset//",
    "-//w3c//dtd html 4.01 transitional//",
)


def quirks_mode_for(token: Doctype | None) -> QuirksMode:
    """Determine the document mode from a DOCTYPE token (None = missing)."""
    if token is None or token.force_quirks or token.name != "html":
        return QuirksMode.QUIRKS
    if token.public_id is None and token.system_id is None:
        # the modern ``<!DOCTYPE html>`` — by far the most common case,
        # and every prefix table below needs a public/system id to match
        return QuirksMode.NO_QUIRKS
    public = (token.public_id or "").lower()
    system = (token.system_id or "").lower()
    has_system = token.system_id is not None

    if public in _QUIRKS_PUBLIC_EXACT:
        return QuirksMode.QUIRKS
    if system in _QUIRKS_SYSTEM_EXACT:
        return QuirksMode.QUIRKS
    if any(public.startswith(prefix) for prefix in _QUIRKS_PUBLIC_PREFIXES):
        return QuirksMode.QUIRKS
    if not has_system and any(
        public.startswith(prefix)
        for prefix in _QUIRKS_PUBLIC_PREFIXES_NO_SYSTEM
    ):
        return QuirksMode.QUIRKS

    if any(public.startswith(prefix) for prefix in _LIMITED_PUBLIC_PREFIXES):
        return QuirksMode.LIMITED_QUIRKS
    if has_system and any(
        public.startswith(prefix)
        for prefix in _LIMITED_PUBLIC_PREFIXES_WITH_SYSTEM
    ):
        return QuirksMode.LIMITED_QUIRKS

    return QuirksMode.NO_QUIRKS
