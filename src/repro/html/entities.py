"""Character-reference decoding (HTML spec sections 13.2.5.72 to 13.2.5.80).

Implements the spec's character-reference state machine as a single function
that the tokenizer calls when it encounters ``&``.  Named references come
from the stdlib ``html.entities.html5`` table, which is the spec's own
reference list; matching is longest-prefix, and references without a
trailing semicolon are only honoured for legacy names (those present in the
table without a semicolon), with the attribute-value special case applied.
"""
from __future__ import annotations

import re
from dataclasses import dataclass
from html.entities import html5 as _HTML5_ENTITIES

from .errors import ErrorCode, ParseError

#: Numeric-reference replacements for the C1 controls range (spec table).
_NUMERIC_REPLACEMENTS = {
    0x00: "�", 0x80: "€", 0x82: "‚", 0x83: "ƒ",
    0x84: "„", 0x85: "…", 0x86: "†", 0x87: "‡",
    0x88: "ˆ", 0x89: "‰", 0x8A: "Š", 0x8B: "‹",
    0x8C: "Œ", 0x8E: "Ž", 0x91: "‘", 0x92: "’",
    0x93: "“", 0x94: "”", 0x95: "•", 0x96: "–",
    0x97: "—", 0x98: "˜", 0x99: "™", 0x9A: "š",
    0x9B: "›", 0x9C: "œ", 0x9E: "ž", 0x9F: "Ÿ",
}

#: Longest entity name in the table (used to bound the lookahead).
_MAX_ENTITY_LENGTH = max(len(name) for name in _HTML5_ENTITIES)

#: Names grouped by first character for fast prefix search.
_ENTITY_NAMES_BY_LENGTH = sorted(_HTML5_ENTITIES, key=len, reverse=True)


@dataclass(slots=True)
class CharRefResult:
    """Outcome of attempting to consume a character reference.

    ``text`` is the replacement text (or the raw consumed characters when no
    reference matched), ``consumed`` the number of input characters eaten
    *after* the ampersand, and ``errors`` any parse errors produced.
    """

    text: str
    consumed: int
    errors: list[ParseError]
    matched: bool


_ASCII_ALNUM = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
)
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_DIGITS = frozenset("0123456789")

# Run patterns matching the frozensets above: the maximal digit/name run is
# consumed with one C-level scan instead of a per-character loop (the same
# chunked-scanning discipline as the tokenizer's CHUNK_BREAK_SETS states).
_RE_ALNUM_RUN = re.compile(r"[0-9A-Za-z]+")
_RE_HEX_RUN = re.compile(r"[0-9A-Fa-f]+")
_RE_DIGIT_RUN = re.compile(r"[0-9]+")


def consume_character_reference(
    text: str, position: int, *, in_attribute: bool
) -> CharRefResult:
    """Consume a character reference starting just after ``&`` at ``position``.

    ``position`` indexes the character *after* the ampersand.  Returns the
    replacement text, how many characters were consumed, and parse errors.
    When nothing matches, returns ``text="&"`` with zero consumed, letting
    the caller treat the ampersand as data.
    """
    if position >= len(text):
        return CharRefResult("&", 0, [], False)
    char = text[position]
    if char == "#":
        return _consume_numeric(text, position)
    if char in _ASCII_ALNUM:
        return _consume_named(text, position, in_attribute=in_attribute)
    return CharRefResult("&", 0, [], False)


# Character-reference grammar is pure ASCII: every char a reference can
# consume after "&" is in [#0-9A-Za-z].  The bytes-domain front end exploits
# that by prescanning the maximal candidate run *in bytes*, decoding only a
# tiny latin-1 window (the run plus two lookahead bytes — enough for the
# ";"/next-char checks of both the numeric and named branches), and
# delegating to the str implementation above.  latin-1 maps every byte to a
# codepoint, so a multi-byte UTF-8 sequence in the lookahead simply shows up
# as some non-alnum, non-";" character — the same branch decisions fall out
# and the window is never re-encoded.
_RE_REF_RUN_B = re.compile(rb"[#0-9A-Za-zxX]*")

#: ``&name;`` expansions keyed by the *bytes* name without "&"/";" — the
#: bytes tokenizer's batch loop resolves well-formed named references with
#: one dict hit instead of the prefix search in :func:`_consume_named`.
NAMED_ENTITY_BYTES: dict[bytes, str] = {
    name[:-1].encode("ascii"): value
    for name, value in _HTML5_ENTITIES.items()
    if name.endswith(";")
}


def consume_character_reference_bytes(
    data: bytes, position: int, *, in_attribute: bool
) -> CharRefResult:
    """Bytes twin of :func:`consume_character_reference`.

    ``position`` indexes the byte *after* the ampersand.  ``consumed`` counts
    bytes, which equals characters because the consumed region is ASCII by
    construction.  Error offsets are **relative to** ``position`` (the str
    function reports offsets into the text it was handed, and here that text
    is a window starting at ``position``); the caller rebases them.
    """
    run = _RE_REF_RUN_B.match(data, position)
    window = data[position : run.end() + 2].decode("latin-1")
    return consume_character_reference(window, 0, in_attribute=in_attribute)


def _consume_numeric(text: str, position: int) -> CharRefResult:
    # position points at '#'
    errors: list[ParseError] = []
    index = position + 1
    hexadecimal = index < len(text) and text[index] in ("x", "X")
    if hexadecimal:
        index += 1
        run = _RE_HEX_RUN
        base = 16
    else:
        run = _RE_DIGIT_RUN
        base = 10
    start_digits = index
    digits_match = run.match(text, index)
    if digits_match is not None:
        index = digits_match.end()
    if index == start_digits:
        errors.append(
            ParseError(
                ErrorCode.ABSENCE_OF_DIGITS_IN_NUMERIC_CHARACTER_REFERENCE, position
            )
        )
        # Nothing consumed: the '&#' (and maybe 'x') are flushed as data.
        return CharRefResult("&" + text[position:index], index - position, errors, False)
    value = int(text[start_digits:index], base)
    if index < len(text) and text[index] == ";":
        index += 1
    else:
        errors.append(
            ParseError(ErrorCode.MISSING_SEMICOLON_AFTER_CHARACTER_REFERENCE, index)
        )
    replacement, value_errors = _numeric_to_char(value, position)
    errors.extend(value_errors)
    return CharRefResult(replacement, index - position, errors, True)


def _numeric_to_char(value: int, offset: int) -> tuple[str, list[ParseError]]:
    errors: list[ParseError] = []
    if value in _NUMERIC_REPLACEMENTS:
        if value == 0x00:
            errors.append(ParseError(ErrorCode.NULL_CHARACTER_REFERENCE, offset))
        else:
            errors.append(ParseError(ErrorCode.CONTROL_CHARACTER_REFERENCE, offset))
        return _NUMERIC_REPLACEMENTS[value], errors
    if value > 0x10FFFF:
        errors.append(
            ParseError(ErrorCode.CHARACTER_REFERENCE_OUTSIDE_UNICODE_RANGE, offset)
        )
        return "�", errors
    if 0xD800 <= value <= 0xDFFF:
        errors.append(ParseError(ErrorCode.SURROGATE_CHARACTER_REFERENCE, offset))
        return "�", errors
    if _is_noncharacter_code(value):
        errors.append(
            ParseError(ErrorCode.NONCHARACTER_CHARACTER_REFERENCE, offset)
        )
        return chr(value), errors
    if value != 0x20 and (value < 0x20 or value == 0x7F) and value not in (0x09, 0x0A, 0x0C):
        errors.append(ParseError(ErrorCode.CONTROL_CHARACTER_REFERENCE, offset))
    return chr(value), errors


def _is_noncharacter_code(code: int) -> bool:
    if 0xFDD0 <= code <= 0xFDEF:
        return True
    return (code & 0xFFFE) == 0xFFFE


def _consume_named(text: str, position: int, *, in_attribute: bool) -> CharRefResult:
    # Gather the maximal alphanumeric run (plus one optional ';').
    limit = min(len(text), position + _MAX_ENTITY_LENGTH)
    run_match = _RE_ALNUM_RUN.match(text, position, limit)
    end = run_match.end() if run_match is not None else position
    has_semicolon = end < len(text) and text[end] == ";"
    candidate_with_semi = text[position:end] + ";" if has_semicolon else None

    # Longest match wins.  Try the run with the semicolon first, then every
    # prefix (the table contains legacy semicolon-less names like "amp").
    if candidate_with_semi and candidate_with_semi in _HTML5_ENTITIES:
        return CharRefResult(
            _HTML5_ENTITIES[candidate_with_semi], end + 1 - position, [], True
        )
    for length in range(end - position, 0, -1):
        name = text[position : position + length]
        if (
            position + length < len(text)
            and text[position + length] == ";"
            and name + ";" in _HTML5_ENTITIES
        ):
            return CharRefResult(_HTML5_ENTITIES[name + ";"], length + 1, [], True)
        if name in _HTML5_ENTITIES:
            # Legacy semicolon-less match.
            next_index = position + length
            next_char = text[next_index] if next_index < len(text) else ""
            if in_attribute and (next_char == "=" or next_char in _ASCII_ALNUM):
                # Historical-compat carve-out: leave as literal text.
                return CharRefResult("&", 0, [], False)
            errors = [
                ParseError(
                    ErrorCode.MISSING_SEMICOLON_AFTER_CHARACTER_REFERENCE, next_index
                )
            ]
            return CharRefResult(_HTML5_ENTITIES[name], length, errors, True)

    errors = []
    if has_semicolon:
        errors.append(
            ParseError(ErrorCode.UNKNOWN_NAMED_CHARACTER_REFERENCE, position)
        )
    return CharRefResult("&", 0, errors, False)


def decode_entities(text: str, *, in_attribute: bool = False) -> str:
    """Decode every character reference in ``text`` (convenience helper)."""
    if "&" not in text:
        return text
    out: list[str] = []
    index = 0
    while True:
        amp = text.find("&", index)
        if amp == -1:
            out.append(text[index:])
            break
        out.append(text[index:amp])
        result = consume_character_reference(text, amp + 1, in_attribute=in_attribute)
        if result.matched:
            out.append(result.text)
            index = amp + 1 + result.consumed
        else:
            out.append("&")
            index = amp + 1
    return "".join(out)
