"""The retained per-character reference scanner.

:class:`~repro.html.tokenizer.Tokenizer` bulk-scans its text-ish states to
the next significant delimiter (see ``CHUNK_BREAK_SETS`` there) — the classic
html5lib-style optimisation.  This module retains the *spec-literal*
one-character-at-a-time scanning loops for every state the fast path chunks,
so that a second, independent scanning implementation exists to diff against:
the ``fastpath`` fuzz oracle and the tier-1 equivalence test assert that both
produce the **identical token stream and identical spec-named parse-error
sequence** over fuzzed inputs, the regression corpus and every synthetic
template page.  The parse errors *are* the paper's violation signal (FB1,
FB2, DM3, parts of DE3), so scanning equivalence is what keeps the perf work
from silently changing the study's measurements.

Only the scanning loops are duplicated.  Delimiter handling, token plumbing
(`_emit`/`_flush_chars`/offsets), character references, and every
single-character state (tag-open, comment dashes, DOCTYPE keywords, ...) are
shared with the base class by design: the fast path falls back to those very
handlers at delimiters, so they are exercised identically by both scanners
and are covered by the conformance suites instead.

This class is the oracle for the **bytes-domain** fast path too:
:class:`~repro.html.bytes_tokenizer.BytesTokenizer` chunk-scans raw bytes
with lazy text materialization, and the ``bytes_parity`` fuzz oracle plus
``tests/html/test_bytes_tokenizer.py`` diff all three scanners —
reference (per-character str), chunked str, chunked bytes — pairwise on
every input.  ``BYTES_OVERRIDES == REFERENCE_OVERRIDES ==
set(CHUNK_BREAK_SETS)`` is asserted by tier-1 tests *and* statically by
the ``state_machine`` lint pass, so a state chunked in any domain without
a reference twin cannot land.

This class is for differential testing; it is deliberately slow.  Use
:class:`~repro.html.tokenizer.Tokenizer` everywhere else.
"""
from __future__ import annotations

from .errors import ErrorCode
from .tokenizer import (
    _REPLACEMENT,
    _TO_ASCII_LOWER,
    _WHITESPACE,
    CHUNK_BREAK_SETS,
    Tokenizer,
)


class ReferenceTokenizer(Tokenizer):
    """Per-character twin of :class:`Tokenizer`.

    Every method here overrides a chunked fast-path state with the direct
    transcription of the spec's consume-one-character loop.  The set of
    overridden states is asserted (in the tier-1 equivalence test) to equal
    ``CHUNK_BREAK_SETS`` exactly, so a newly chunked state cannot ship
    without its per-character twin.
    """

    # --------------------------------------------------------- data states

    def _data_state(self) -> None:
        char = self._next()
        if char is None:
            self._emit_eof()
        elif char == "&":
            self._consume_char_ref(self._data_state)
        elif char == "<":
            self._tag_start_offset = self.pos - 1
            self._state = self._tag_open_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(char)
        else:
            self._emit_char(char)

    def _rcdata_state(self) -> None:
        char = self._next()
        if char is None:
            self._emit_eof()
        elif char == "&":
            self._consume_char_ref(self._rcdata_state)
        elif char == "<":
            self._state = self._rcdata_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
        else:
            self._emit_char(char)

    def _rawtext_state(self) -> None:
        char = self._next()
        if char is None:
            self._emit_eof()
        elif char == "<":
            self._state = self._rawtext_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
        else:
            self._emit_char(char)

    def _script_data_state(self) -> None:
        char = self._next()
        if char is None:
            self._emit_eof()
        elif char == "<":
            self._state = self._script_data_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
        else:
            self._emit_char(char)

    def _plaintext_state(self) -> None:
        char = self._next()
        if char is None:
            self._emit_eof()
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
        else:
            self._emit_char(char)

    # ---------------------------------------------------------- tag states

    def _tag_name_state(self) -> None:
        tag = self._current_tag
        assert tag is not None
        while True:
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char in _WHITESPACE:
                self._state = self._before_attribute_name_state
                return
            if char == "/":
                self._state = self._self_closing_start_tag_state
                return
            if char == ">":
                self._emit_current_tag()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                tag.name += _REPLACEMENT
            else:
                tag.name += char.translate(_TO_ASCII_LOWER)

    def _attribute_name_state(self) -> None:
        attr = self._current_attr
        assert attr is not None
        while True:
            char = self._next()
            if char is None or char in "/>" or char in _WHITESPACE:
                self._reconsume()
                self._state = self._after_attribute_name_state
                return
            if char == "=":
                self._state = self._before_attribute_value_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.name += _REPLACEMENT
            elif char in "\"'<":
                self._error(
                    ErrorCode.UNEXPECTED_CHARACTER_IN_ATTRIBUTE_NAME, detail=char
                )
                attr.name += char
            else:
                attr.name += char.translate(_TO_ASCII_LOWER)

    def _attribute_value_double_state(self) -> None:
        self._reference_quoted_value('"', self._attribute_value_double_state)

    def _attribute_value_single_state(self) -> None:
        self._reference_quoted_value("'", self._attribute_value_single_state)

    def _reference_quoted_value(self, quote: str, state) -> None:
        """Per-character quoted attribute value (spec 13.2.5.36/37)."""
        attr = self._current_attr
        assert attr is not None
        while True:
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char == quote:
                self._state = self._after_attribute_value_quoted_state
                return
            if char == "&":
                self._consume_char_ref(state)
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.value += _REPLACEMENT
            else:
                attr.value += char

    def _attribute_value_unquoted_state(self) -> None:
        attr = self._current_attr
        assert attr is not None
        while True:
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_TAG)
                self._emit_eof()
                return
            if char in _WHITESPACE:
                self._state = self._before_attribute_name_state
                return
            if char == "&":
                self._consume_char_ref(self._attribute_value_unquoted_state)
                return
            if char == ">":
                self._emit_current_tag()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                attr.value += _REPLACEMENT
            elif char in "\"'<=`":
                self._error(
                    ErrorCode.UNEXPECTED_CHARACTER_IN_UNQUOTED_ATTRIBUTE_VALUE,
                    detail=char,
                )
                attr.value += char
            else:
                attr.value += char

    # ------------------------------------------------------------ script data

    def _script_data_escaped_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_escaped_dash_state
        elif char == "<":
            self._state = self._script_data_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
        else:
            self._emit_char(char)

    def _script_data_double_escaped_state(self) -> None:
        char = self._next()
        if char is None:
            self._error(ErrorCode.EOF_IN_SCRIPT_HTML_COMMENT_LIKE_TEXT)
            self._emit_eof()
        elif char == "-":
            self._emit_char("-")
            self._state = self._script_data_double_escaped_dash_state
        elif char == "<":
            self._emit_char("<")
            self._state = self._script_data_double_escaped_less_than_state
        elif char == "\x00":
            self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
            self._emit_char(_REPLACEMENT)
        else:
            self._emit_char(char)

    # --------------------------------------------------------------- comments

    def _comment_state(self) -> None:
        comment = self._current_comment
        assert comment is not None
        while True:
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_COMMENT)
                self._emit_comment()
                self._emit_eof()
                return
            if char == "<":
                comment.data += char
                self._state = self._comment_less_than_state
                return
            if char == "-":
                self._state = self._comment_end_dash_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                comment.data += _REPLACEMENT
            else:
                comment.data += char

    def _bogus_comment_state(self) -> None:
        comment = self._current_comment
        assert comment is not None
        while True:
            char = self._next()
            if char is None:
                self._emit(comment)
                self._current_comment = None
                self._emit_eof()
                return
            if char == ">":
                self._emit(comment)
                self._current_comment = None
                self._state = self._data_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                comment.data += _REPLACEMENT
            else:
                comment.data += char

    # ---------------------------------------------------------------- doctype

    def _doctype_name_state(self) -> None:
        doctype = self._current_doctype
        assert doctype is not None
        while True:
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_DOCTYPE)
                doctype.force_quirks = True
                self._emit(doctype)
                self._current_doctype = None
                self._emit_eof()
                return
            if char in _WHITESPACE:
                self._state = self._after_doctype_name_state
                return
            if char == ">":
                self._emit(doctype)
                self._current_doctype = None
                self._state = self._data_state
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)
                doctype.name += _REPLACEMENT
            else:
                doctype.name += char.translate(_TO_ASCII_LOWER)

    def _bogus_doctype_state(self) -> None:
        while True:
            char = self._next()
            if char is None:
                self._emit_doctype(at_eof=True)
                return
            if char == ">":
                self._emit_doctype()
                return
            if char == "\x00":
                self._error(ErrorCode.UNEXPECTED_NULL_CHARACTER)

    # ------------------------------------------------------------------ CDATA

    def _cdata_section_state(self) -> None:
        while True:
            char = self._next()
            if char is None:
                self._error(ErrorCode.EOF_IN_CDATA)
                self._emit_eof()
                return
            if char == "]":
                if self._peek(2) == "]>":
                    self.pos += 2
                    self._state = self._data_state
                    return
                self._emit_char("]")
            else:
                self._emit_char(char)


#: the fast-path states this class re-implements per character; compared
#: against ``CHUNK_BREAK_SETS`` by the tier-1 equivalence test so the two
#: stay in lock-step.
REFERENCE_OVERRIDES: frozenset[str] = frozenset(
    name
    for name in vars(ReferenceTokenizer)
    if name.endswith("_state") and not name.startswith("__")
)


def reference_tokenize(text: str) -> tuple[list, list]:
    """Tokenize ``text`` with the per-character reference scanner."""
    tokenizer = ReferenceTokenizer(text)
    tokens = list(tokenizer)
    return tokens, tokenizer.errors


__all__ = [
    "ReferenceTokenizer",
    "REFERENCE_OVERRIDES",
    "reference_tokenize",
    "CHUNK_BREAK_SETS",
]
