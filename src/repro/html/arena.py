"""Arena-slotted node storage for the tree-construction stage.

The DOM in :mod:`repro.html.dom` used to be a classic object graph: every
node owned a ``parent`` pointer, an eagerly-allocated ``children`` list and
(for elements) an eagerly-allocated attribute dict.  At crawl scale those
three allocations per node dominate tree-construction cost — most text
nodes are leaves and most elements carry no attributes, so the lists and
dicts are allocated only to stay empty.

This module provides the storage half of the arena refactor:

``AtomTable``
    Interns tag and attribute names so every ``<div>`` across every
    document shares one ``str`` object.  The bytes tokenizer feeds raw
    tag-name bytes straight into the table (``intern_bytes``), which both
    dedupes the decode+lower work per distinct spelling and makes
    name comparisons in the tree builder pointer-compare fast.

``DomArena``
    Flat parallel columns — ``kinds``, ``names``, ``parents``,
    ``children`` — indexed by node id.  Node objects in ``dom`` are thin
    views ``(arena, index)`` over these columns; hot immutable fields
    (element name, namespace) are mirrored into view slots so the tree
    builder's state machine keeps slot-speed reads, while linkage lives
    only in the columns.  Child lists are batched: the column holds
    ``None`` until a node acquires its first child, so leaves never
    allocate a list.

The arena is an *allocator*, not a closed graph: parents and child lists
store view references, so nodes from different arenas can be linked
freely (standalone ``Element(...)`` constructions get a small private
arena).  See DESIGN.md §3.14 for the layout diagram and the view-layer
contract.
"""
from __future__ import annotations

#: node kinds stored in the ``kinds`` column
KIND_DOCUMENT = 0
KIND_FRAGMENT = 1
KIND_DOCTYPE = 2
KIND_ELEMENT = 3
KIND_TEXT = 4
KIND_COMMENT = 5


class AtomTable:
    """Interning table for tag/attribute names, shared across documents.

    ``intern`` maps a ``str`` to its canonical instance.  ``tag_bytes``
    and ``attr_bytes`` are the bytes-domain decode caches (raw source
    name bytes -> canonical lowercased ``str``): the bytes tokenizer
    binds them directly in its hot loops, so every tag name it emits is
    already the canonical atom and the arena's ``names`` column across
    *all* documents shares one ``str`` per distinct spelling.  All caches
    are capped: fuzzed input can mint unbounded distinct names, and an
    unbounded table would be a cross-document memory leak.
    """

    __slots__ = ("_atoms", "tag_bytes", "attr_bytes", "_cap")

    def __init__(self, cap: int = 8192) -> None:
        self._atoms: dict[str, str] = {}
        self.tag_bytes: dict[bytes, str] = {}
        self.attr_bytes: dict[bytes, str] = {}
        self._cap = cap

    def intern(self, name: str) -> str:
        atoms = self._atoms
        atom = atoms.get(name)
        if atom is None:
            if len(atoms) >= self._cap:
                atoms.clear()
            atoms[name] = atom = name
        return atom

    def intern_bytes(self, raw: bytes) -> str:
        """Canonical lowercased name for raw ASCII tag-name bytes."""
        cache = self.tag_bytes
        atom = cache.get(raw)
        if atom is None:
            if len(cache) >= self._cap:
                cache.clear()
            atom = self.intern(raw.decode("utf-8", "replace").lower())
            cache[raw] = atom
        return atom

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, name: str) -> bool:
        return name in self._atoms


#: the process-wide atom table: tag names are a small closed-ish set, so
#: sharing one table across documents is what makes ``is``-comparisons and
#: the bytes-domain decode cache pay off
GLOBAL_ATOMS = AtomTable()


class DomArena:
    """Columnar storage for DOM nodes.

    One arena typically backs one parsed document (the tree builder
    allocates every node it creates from the document's arena); standalone
    node constructions fall back to a private arena per node.  Columns:

    ``kinds``     ``KIND_*`` int per node — isinstance-free flat scans
    ``names``     interned tag name (elements/doctypes) or ``None``
    ``parents``   parent *view reference* or ``None``
    ``children``  batched child list (list of view references) or ``None``
                  — allocated lazily on first child
    """

    __slots__ = ("kinds", "names", "parents", "children", "atoms")

    def __init__(self, atoms: AtomTable | None = None) -> None:
        self.kinds: list[int] = []
        self.names: list[str | None] = []
        self.parents: list[object | None] = []
        self.children: list[list | None] = []
        self.atoms = atoms if atoms is not None else GLOBAL_ATOMS

    def alloc(self, kind: int, name: str | None = None) -> int:
        """Reserve one node slot; returns its index."""
        idx = len(self.kinds)
        self.kinds.append(kind)
        self.names.append(name)
        self.parents.append(None)
        self.children.append(None)
        return idx

    def __len__(self) -> int:
        return len(self.kinds)
