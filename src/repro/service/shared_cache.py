"""Cross-process shared content-hash LRU cache.

:class:`~repro.service.cache.ResultCache` is private to one process, so a
pre-forked service (``repro-study serve --procs N``) would pay each cache
miss up to N times — the kernel's accept load-balancing sends the same
hot page to whichever acceptor is free.  This module keeps the *exact*
LRU semantics of ``ResultCache`` (get refreshes recency, put of an
existing key refreshes recency, eviction pops the oldest) but moves the
state into an mmap-backed file any process can attach by path, so a fill
by one worker serves hits to all of them.

Design:

* **storage** — one plain file, ``mmap``-ed by every attached process:
  a 64-byte header (capacity, slot size, LRU list heads, counters),
  a digest directory (32-byte sha256 per slot, scanned with C-speed
  ``mmap.find``), a slot-metadata table (doubly-linked LRU list), and a
  fixed-size value heap.  Fixed slots mean no allocator and no
  fragmentation; a value larger than ``slot_size`` is simply not cached
  (counted in ``skipped_oversize`` — the cache is an optimization, a
  skip is a future miss, never a wrong answer).
* **locking** — ``fcntl.flock`` on the backing file, taken exclusively
  around every operation.  flock is keyed to the open file description,
  and every attach opens its own descriptor, so mutual exclusion works
  between arbitrary unrelated processes — including children that must
  re-attach by path after ``fork`` (an inherited descriptor would share
  the lock owner and exclude nothing).
* **parity** — ``tests/service/test_shared_cache.py`` machine-checks
  this implementation against ``ResultCache`` as the reference: same
  randomized op sequence, same hits/misses/evictions, same LRU order.

The value heap stores the response's ``(status, body)`` exactly as the
local cache does; 200/422-only cacheability is the *caller's* contract
(``ServiceApp`` never puts any other status) and is unchanged here.
"""
from __future__ import annotations

import fcntl
import hashlib
import mmap
import os
import struct
import tempfile

from .cache import CacheStats

MAGIC = b"RPRSHC1\0"
HEADER = struct.Struct("<8sIIIiiiQQQQ")  # magic, capacity, slot_size, count,
                                         # head, tail, free_head,
                                         # hits, misses, evictions, oversize
META = struct.Struct("<iiHIBx")          # prev, next, status, value_len,
                                         # occupied
HEADER_SIZE = 64
DIGEST_SIZE = 32
NIL = -1

#: default per-entry value budget; a serialized check response for a
#: template page is a few KiB, so 32 KiB covers the realistic tail
DEFAULT_SLOT_SIZE = 32 * 1024


def _digest(key: str) -> bytes:
    return hashlib.sha256(key.encode("utf-8")).digest()


class SharedResultCache:
    """An exact-LRU result cache shared between processes via mmap.

    Create once with :meth:`create` (the owner; unlinks the backing file
    on :meth:`close`), attach from any other process with :meth:`attach`
    using the same ``path``.  The public surface mirrors
    :class:`~repro.service.cache.ResultCache`: ``get``/``put``/``clear``/
    ``__len__``/``stats``.
    """

    def __init__(self, path: str, *, _owner: bool) -> None:
        self.path = path
        self._owner = _owner
        self._file = open(path, "r+b")
        self._mm = mmap.mmap(self._file.fileno(), 0)
        magic, capacity, slot_size = struct.unpack_from("<8sII", self._mm, 0)
        if magic != MAGIC:
            self._mm.close()
            self._file.close()
            raise ValueError(f"{path} is not a shared cache segment")
        self.max_entries = capacity
        self.slot_size = slot_size
        self._digest_off = HEADER_SIZE
        self._meta_off = self._digest_off + capacity * DIGEST_SIZE
        self._value_off = self._meta_off + capacity * META.size
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(
        cls,
        max_entries: int,
        *,
        slot_size: int = DEFAULT_SLOT_SIZE,
        path: str | None = None,
    ) -> "SharedResultCache":
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if slot_size < 1:
            raise ValueError(f"slot_size must be >= 1, got {slot_size}")
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-shared-cache-")
        else:
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o600)
        total = (
            HEADER_SIZE
            + max_entries * (DIGEST_SIZE + META.size + slot_size)
        )
        try:
            os.ftruncate(fd, total)
            header = HEADER.pack(
                MAGIC, max_entries, slot_size, 0, NIL, NIL, 0, 0, 0, 0, 0
            )
            os.pwrite(fd, header, 0)
            # free list: slot i links to i+1 via the meta "next" field
            for slot in range(max_entries):
                nxt = slot + 1 if slot + 1 < max_entries else NIL
                meta = META.pack(NIL, nxt, 0, 0, 0)
                os.pwrite(
                    fd,
                    meta,
                    HEADER_SIZE + max_entries * DIGEST_SIZE + slot * META.size,
                )
        finally:
            os.close(fd)
        return cls(path, _owner=True)

    @classmethod
    def attach(cls, path: str) -> "SharedResultCache":
        return cls(path, _owner=False)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._mm.close()
        self._file.close()
        if self._owner:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass  # a concurrent owner close already removed it

    def __enter__(self) -> "SharedResultCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- locking

    def _lock(self) -> None:
        fcntl.flock(self._file.fileno(), fcntl.LOCK_EX)

    def _unlock(self) -> None:
        fcntl.flock(self._file.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------- header accessors

    def _read_header(self) -> tuple:
        return HEADER.unpack_from(self._mm, 0)

    def _write_header(
        self, count, head, tail, free_head, hits, misses, evictions, oversize
    ) -> None:
        HEADER.pack_into(
            self._mm, 0, MAGIC, self.max_entries, self.slot_size,
            count, head, tail, free_head, hits, misses, evictions, oversize,
        )

    # --------------------------------------------------------- slot accessors

    def _meta(self, slot: int) -> tuple[int, int, int, int, int]:
        return META.unpack_from(self._mm, self._meta_off + slot * META.size)

    def _set_meta(
        self, slot: int, prev: int, nxt: int, status: int,
        value_len: int, occupied: int,
    ) -> None:
        META.pack_into(
            self._mm, self._meta_off + slot * META.size,
            prev, nxt, status, value_len, occupied,
        )

    def _find_slot(self, digest: bytes) -> int:
        """Index of the occupied slot holding ``digest``, or ``NIL``.

        ``mmap.find`` scans the digest directory at C speed; a match is
        only real when it lands on a 32-byte slot boundary and the slot
        is occupied (value bytes never live in this region, so stale
        digests are the only false-positive source and are zeroed on
        free).
        """
        start = self._digest_off
        end = self._meta_off
        pos = self._mm.find(digest, start, end)
        while pos != -1:
            offset = pos - start
            if offset % DIGEST_SIZE == 0:
                slot = offset // DIGEST_SIZE
                if self._meta(slot)[4]:
                    return slot
            pos = self._mm.find(digest, pos + 1, end)
        return NIL

    # ------------------------------------------------------- LRU list helpers

    def _unlink(self, slot: int, head: int, tail: int) -> tuple[int, int]:
        prev, nxt, status, length, occupied = self._meta(slot)
        if prev != NIL:
            p = self._meta(prev)
            self._set_meta(prev, p[0], nxt, p[2], p[3], p[4])
        else:
            head = nxt
        if nxt != NIL:
            n = self._meta(nxt)
            self._set_meta(nxt, prev, n[1], n[2], n[3], n[4])
        else:
            tail = prev
        self._set_meta(slot, NIL, NIL, status, length, occupied)
        return head, tail

    def _append(self, slot: int, head: int, tail: int) -> tuple[int, int]:
        _prev, _nxt, status, length, occupied = self._meta(slot)
        self._set_meta(slot, tail, NIL, status, length, occupied)
        if tail != NIL:
            t = self._meta(tail)
            self._set_meta(tail, t[0], slot, t[2], t[3], t[4])
        else:
            head = slot
        return head, slot

    # ------------------------------------------------------------- operations

    def __len__(self) -> int:
        self._lock()
        try:
            return self._read_header()[3]
        finally:
            self._unlock()

    @property
    def stats(self) -> CacheStats:
        """A point-in-time snapshot of the shared counters."""
        self._lock()
        try:
            (_m, _c, _s, _count, _h, _t, _f,
             hits, misses, evictions, _oversize) = self._read_header()
        finally:
            self._unlock()
        return CacheStats(hits=hits, misses=misses, evictions=evictions)

    @property
    def skipped_oversize(self) -> int:
        self._lock()
        try:
            return self._read_header()[10]
        finally:
            self._unlock()

    def get(self, key: str) -> tuple[int, bytes] | None:
        digest = _digest(key)
        self._lock()
        try:
            (_m, _c, _s, count, head, tail, free_head,
             hits, misses, evictions, oversize) = self._read_header()
            slot = self._find_slot(digest)
            if slot == NIL:
                self._write_header(
                    count, head, tail, free_head,
                    hits, misses + 1, evictions, oversize,
                )
                return None
            head, tail = self._unlink(slot, head, tail)
            head, tail = self._append(slot, head, tail)
            _prev, _nxt, status, length, _occ = self._meta(slot)
            value_at = self._value_off + slot * self.slot_size
            body = bytes(self._mm[value_at:value_at + length])
            self._write_header(
                count, head, tail, free_head,
                hits + 1, misses, evictions, oversize,
            )
            return (status, body)
        finally:
            self._unlock()

    def put(self, key: str, entry: tuple[int, bytes]) -> None:
        status, body = entry
        digest = _digest(key)
        self._lock()
        try:
            (_m, _c, _s, count, head, tail, free_head,
             hits, misses, evictions, oversize) = self._read_header()
            slot = self._find_slot(digest)
            if len(body) > self.slot_size:
                # can't store it; drop any stale entry under the same key
                # so a hit can never serve an outdated body
                if slot != NIL:
                    head, tail = self._unlink(slot, head, tail)
                    self._zero_slot(slot)
                    self._set_meta(slot, NIL, free_head, 0, 0, 0)
                    free_head = slot
                    count -= 1
                self._write_header(
                    count, head, tail, free_head,
                    hits, misses, evictions, oversize + 1,
                )
                return
            if slot != NIL:
                head, tail = self._unlink(slot, head, tail)
            else:
                if free_head != NIL:
                    slot = free_head
                    free_head = self._meta(slot)[1]
                else:
                    slot = head  # evict the LRU entry, reuse its slot
                    head, tail = self._unlink(slot, head, tail)
                    self._zero_slot(slot)
                    evictions += 1
                    count -= 1
                self._mm[
                    self._digest_off + slot * DIGEST_SIZE:
                    self._digest_off + (slot + 1) * DIGEST_SIZE
                ] = digest
                count += 1
            value_at = self._value_off + slot * self.slot_size
            self._mm[value_at:value_at + len(body)] = body
            self._set_meta(slot, NIL, NIL, status, len(body), 1)
            head, tail = self._append(slot, head, tail)
            self._write_header(
                count, head, tail, free_head,
                hits, misses, evictions, oversize,
            )
        finally:
            self._unlock()

    def clear(self) -> None:
        """Drop every entry (counters survive, matching ``ResultCache``)."""
        self._lock()
        try:
            (_m, _c, _s, _count, _head, _tail, _free,
             hits, misses, evictions, oversize) = self._read_header()
            zero = b"\x00" * DIGEST_SIZE
            for slot in range(self.max_entries):
                self._mm[
                    self._digest_off + slot * DIGEST_SIZE:
                    self._digest_off + (slot + 1) * DIGEST_SIZE
                ] = zero
                nxt = slot + 1 if slot + 1 < self.max_entries else NIL
                self._set_meta(slot, NIL, nxt, 0, 0, 0)
            self._write_header(
                0, NIL, NIL, 0, hits, misses, evictions, oversize
            )
        finally:
            self._unlock()

    def _zero_slot(self, slot: int) -> None:
        self._mm[
            self._digest_off + slot * DIGEST_SIZE:
            self._digest_off + (slot + 1) * DIGEST_SIZE
        ] = b"\x00" * DIGEST_SIZE

    # ------------------------------------------------------------- diagnostics

    def lru_digests(self) -> list[bytes]:
        """Stored digests oldest→newest (LRU-parity tests; no stat side
        effects)."""
        self._lock()
        try:
            (_m, _c, _s, _count, head, _tail, _free,
             _h, _mi, _e, _o) = self._read_header()
            order = []
            slot = head
            while slot != NIL:
                order.append(
                    bytes(self._mm[
                        self._digest_off + slot * DIGEST_SIZE:
                        self._digest_off + (slot + 1) * DIGEST_SIZE
                    ])
                )
                slot = self._meta(slot)[1]
            return order
        finally:
            self._unlock()

    @staticmethod
    def digest_of(key: str) -> bytes:
        """The directory digest for ``key`` (parity-test helper)."""
        return _digest(key)
