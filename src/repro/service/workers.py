"""Worker-side entry points for the checker service.

Everything here must be picklable module-level code: the functions are
submitted to a ``ProcessPoolExecutor`` and the results travel back as
plain dicts (the exact JSON the endpoint returns).  Keeping the worker
payloads primitive also means the in-process *inline* mode — used by the
``service_parity`` fuzz oracle and the unit tests — executes literally
the same code path as a pooled worker, so the differential oracle covers
what production runs.

Workers are forked warm: :func:`warm_worker` runs as the pool
initializer, importing the rule registry and doing one tiny parse+check
so the first real request does not pay import/compile cost.
"""
from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..core import Checker, DecodeFailure, autofix
from ..core.checker import CheckReport
from ..html import decode_bytes, sniff_encoding

#: per-process checker, built once by :func:`warm_worker` (or lazily on
#: first use when the function runs inline)
_CHECKER: Checker | None = None


def _checker() -> Checker:
    global _CHECKER
    if _CHECKER is None:
        _CHECKER = Checker()
    return _CHECKER


def warm_worker() -> None:
    """Pool initializer: import, instantiate, and prime the hot path."""
    checker = _checker()
    checker.check_html("<!doctype html><p>warm")


def create_pool(workers: int) -> ProcessPoolExecutor:
    """A worker pool whose processes pre-import the rule registry."""
    return ProcessPoolExecutor(max_workers=workers, initializer=warm_worker)


# ----------------------------------------------------------------- payloads


def report_payload(report: CheckReport) -> dict:
    """The canonical JSON shape for one check result.

    This is the contract the ``service_parity`` fuzz oracle diffs against
    a direct :meth:`Checker.check_html` call — change it only in lockstep
    with the oracle.
    """
    return {
        "url": report.url,
        "findings": [
            {
                "violation": finding.violation,
                "offset": finding.offset,
                "message": finding.message,
                "evidence": finding.evidence,
            }
            for finding in report.findings
        ],
        "counts": {k: v for k, v in sorted(report.counts.items())},
        "violated": sorted(report.violated),
        "total": len(report.findings),
    }


def decode_failure_payload(failure: DecodeFailure) -> dict:
    return {
        "error": "undecodable-body",
        "reason": failure.reason,
        "declared_encoding": failure.declared_encoding,
        "url": failure.url,
    }


# ------------------------------------------------------------ entry points
# Each returns {"status": <http status>, "payload": <json dict>} so the
# event-loop side maps outcomes without unpickling exceptions.


def run_check(body: bytes, url: str) -> dict:
    """``POST /check``: full-document decode + parse + all rules."""
    report = _checker().check_bytes(body, url=url)
    if isinstance(report, DecodeFailure):
        return {"status": 422, "payload": decode_failure_payload(report)}
    return {"status": 200, "payload": report_payload(report)}


def run_check_fragment(body: bytes, context: str, url: str) -> dict:
    """``POST /check-fragment``: the innerHTML algorithm (section 5.1)."""
    text = decode_bytes(body)
    if text is None:
        return _decode_failure(body, url)
    report = _checker().check_fragment(text, context=context or "div", url=url)
    return {"status": 200, "payload": report_payload(report)}


def run_fix(body: bytes, url: str) -> dict:
    """``POST /fix``: the section 4.4 automatic repair."""
    text = decode_bytes(body)
    if text is None:
        return _decode_failure(body, url)
    result = autofix(text, checker=_checker())
    return {
        "status": 200,
        "payload": {
            "url": url,
            "fixed": result.fixed,
            "changed": result.changed,
            "repaired": sorted({f.violation for f in result.repaired}),
            "remaining": sorted({f.violation for f in result.remaining}),
            "repaired_count": len(result.repaired),
            "remaining_count": len(result.remaining),
        },
    }


def _decode_failure(body: bytes, url: str) -> dict:
    """The 422 outcome shared by the fragment and fix endpoints."""
    failure = DecodeFailure(
        url=url, declared_encoding=sniff_encoding(body).encoding or ""
    )
    return {"status": 422, "payload": decode_failure_payload(failure)}
