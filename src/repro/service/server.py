"""The asyncio acceptor: sockets in, :class:`ServiceApp` responses out.

``asyncio.start_server`` gives us the event loop and stream plumbing; this
module adds what a long-lived checker service needs on top:

* a per-connection request loop with keep-alive, an idle timeout, and a
  request cap, so one stalled client cannot pin a connection task forever
  and one immortal connection cannot monopolize an acceptor;
* protocol errors (:class:`~repro.service.http.HTTPError`) answered with
  their mapped status — a malformed request is a *response*, never a
  traceback, and poisons at most its own connection;
* streamed responses (the NDJSON batch endpoint) written as chunked
  frames under HTTP/1.1 so keep-alive survives a batch, close-delimited
  under HTTP/1.0;
* structured JSON access logs per request;
* graceful shutdown: stop accepting, let in-flight requests finish
  (bounded by ``drain_timeout``), then tear down the worker pool.  The
  ci.sh serve-smoke stage asserts this drain behaviour end-to-end,
  including over a keep-alive connection with a request mid-flight;
* a pre-fork mode (``repro-study serve --procs N``): N acceptor
  processes share one listening socket (the kernel load-balances
  ``accept``) and one cross-process result cache, the classic
  production front-end shape.

The process exposes exactly one stdout line on startup::

    repro.service listening on 127.0.0.1:8645

so scripted callers (CI, the bench, the load generator) can bind port 0
and discover the ephemeral port.
"""
from __future__ import annotations

import asyncio
import signal
import socket
import sys
import time
from dataclasses import replace

from .app import ServiceApp, ServiceConfig
from .http import (
    LAST_CHUNK,
    HTTPError,
    Request,
    StreamingResponse,
    encode_chunk,
    error_response,
    read_request,
)
from .metrics import AccessLogger
from .workers import create_pool

#: seconds a keep-alive connection may sit idle between requests
IDLE_TIMEOUT = 30.0
#: seconds shutdown waits for in-flight requests before cancelling them
DRAIN_TIMEOUT = 10.0
#: requests served on one connection before the server closes it (load
#: rebalancing across pre-forked acceptors; 0 disables the cap)
MAX_REQUESTS_PER_CONNECTION = 1000


class CheckerService:
    """One listening checker service bound to an app instance."""

    def __init__(
        self,
        app: ServiceApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        access_logger: AccessLogger | None = None,
        idle_timeout: float = IDLE_TIMEOUT,
        drain_timeout: float = DRAIN_TIMEOUT,
        max_requests_per_connection: int = MAX_REQUESTS_PER_CONNECTION,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.access = access_logger or AccessLogger(None)
        self.idle_timeout = idle_timeout
        self.drain_timeout = drain_timeout
        self.max_requests_per_connection = max_requests_per_connection
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False

    # -------------------------------------------------------------- lifecycle

    async def start(self, sock: socket.socket | None = None) -> int:
        """Bind and listen; returns the actual port (for ``port=0``).

        ``sock`` is an already-bound listening socket (the pre-fork
        parent's) to serve on instead of binding a fresh one.
        """
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def shutdown(self) -> None:
        """Graceful drain: no new work, finish what was admitted."""
        self._draining = True
        self.app.healthy = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            # in-flight requests get drain_timeout to complete; after
            # that the tasks are cancelled (clients see a reset, but the
            # process still exits cleanly)
            _done, pending = await asyncio.wait(
                self._connections, timeout=self.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self.app.executor is not None:
            self.app.executor.shutdown(wait=True, cancel_futures=True)
        self.app.close()

    # ------------------------------------------------------------ connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self.app.metrics.connections_open += 1
        self.app.metrics.connections_total += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            # client went away or shutdown cancelled the drain — both are
            # normal ends of a connection, not service errors
            pass
        finally:
            self.app.metrics.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        remote = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else ""
        served = 0
        while True:
            try:
                request = await asyncio.wait_for(
                    read_request(
                        reader,
                        max_body=self.app.config.max_body,
                        remote=remote,
                    ),
                    timeout=self.idle_timeout,
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive connection: just close it
            except HTTPError as exc:
                self.app.metrics.bad_requests += 1
                response = error_response(exc.status, exc.detail)
                writer.write(response.to_bytes(close=True))
                await writer.drain()
                self.access.log(
                    remote=remote, method="-", path="-",
                    status=exc.status, seconds=0.0, bytes_in=0,
                    bytes_out=len(response.body),
                )
                if exc.close:
                    return
                continue
            if request is None:
                return  # clean EOF

            served += 1
            self.app.metrics.record_connection_reuse(served)
            at_cap = (
                self.max_requests_per_connection > 0
                and served >= self.max_requests_per_connection
            )
            loop = asyncio.get_running_loop()
            started = loop.time()
            response = await self.app.handle(request)
            close = self._draining or not request.keep_alive or at_cap
            if isinstance(response, StreamingResponse):
                bytes_out = await self._write_stream(
                    request, response, writer, close=close
                )
                # HTTP/1.0 has no chunked framing: the body was
                # close-delimited, so the connection is done either way
                close = close or request.version == "HTTP/1.0"
                cache_state = ""
            else:
                writer.write(
                    response.to_bytes(
                        head_only=request.method == "HEAD", close=close
                    )
                )
                await writer.drain()
                bytes_out = len(response.body)
                cache_state = response.cache_state
            self.access.log(
                remote=remote, method=request.method, path=request.path,
                status=response.status, seconds=loop.time() - started,
                bytes_in=len(request.body), bytes_out=bytes_out,
                cache=cache_state,
            )
            if close:
                return

    async def _write_stream(
        self,
        request: Request,
        response: StreamingResponse,
        writer: asyncio.StreamWriter,
        *,
        close: bool,
    ) -> int:
        """Write a streamed body; returns the body byte count.

        Chunked frames under HTTP/1.1 (keep-alive preserved), raw
        close-delimited bytes under HTTP/1.0.  Each line is flushed as
        soon as the producer yields it — that is the "streamed results"
        contract: early batch lines reach the client while later
        documents are still being checked.
        """
        chunked = request.version != "HTTP/1.0"
        writer.write(response.head_bytes(chunked=chunked, close=close))
        total = 0
        async for line in response.lines:
            total += len(line)
            writer.write(encode_chunk(line) if chunked else line)
            await writer.drain()
        if chunked:
            writer.write(LAST_CHUNK)
            await writer.drain()
        return total


async def _serve_until_signalled(
    service: CheckerService,
    *,
    sock: socket.socket | None = None,
    announce: bool = True,
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            # non-main thread or platform without signal support: the
            # caller stops us by cancelling serve_forever instead
            pass
    port = await service.start(sock)
    if announce:
        print(
            f"repro.service listening on {service.host}:{port}", flush=True
        )
    await stop.wait()
    print("repro.service draining", file=sys.stderr, flush=True)
    await service.shutdown()


def _build_service(
    config: ServiceConfig, *, host: str, port: int, access_log: bool
) -> CheckerService:
    app = ServiceApp(config, executor=create_pool(config.workers))
    logger = AccessLogger(sys.stderr if access_log else None)
    return CheckerService(app, host=host, port=port, access_logger=logger)


def _prefork_child(
    config: ServiceConfig, sock: socket.socket, host: str, access_log: bool
) -> None:
    """One forked acceptor: own event loop + pool, shared socket/cache."""
    service = _build_service(config, host=host, port=0, access_log=access_log)
    asyncio.run(_serve_until_signalled(service, sock=sock, announce=False))


def _run_prefork(
    config: ServiceConfig, *, host: str, port: int, access_log: bool,
    procs: int,
) -> int:
    """Pre-fork front end: N acceptors on one socket, one shared cache.

    The parent binds, forks, prints the single listening line, then only
    relays SIGTERM/SIGINT and reaps.  Each child runs the ordinary
    single-process service on the inherited socket — the kernel's accept
    queue is the load balancer.  With ``cache_backend="shared"`` the
    parent creates the segment and every child attaches by path, so a
    page checked by any acceptor is a cache hit in all of them.
    """
    import multiprocessing

    from .shared_cache import SharedResultCache

    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(256)
    actual_port = sock.getsockname()[1]

    owner_cache = None
    child_config = config
    if config.cache_backend == "shared" and config.cache_size > 0 \
            and not config.cache_path:
        owner_cache = SharedResultCache.create(config.cache_size)
        child_config = replace(config, cache_path=owner_cache.path)

    ctx = multiprocessing.get_context("fork")
    children = [
        ctx.Process(
            target=_prefork_child,
            args=(child_config, sock, host, access_log),
        )
        for _ in range(procs)
    ]
    for child in children:
        child.start()
    sock.close()  # the children hold the listening descriptor now
    print(f"repro.service listening on {host}:{actual_port}", flush=True)

    got: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda s, _frame: got.append(s))
    try:
        while not got and any(child.is_alive() for child in children):
            time.sleep(0.05)
    finally:
        print("repro.service draining", file=sys.stderr, flush=True)
        for child in children:
            if child.is_alive():
                child.terminate()  # SIGTERM: each child drains gracefully
        for child in children:
            child.join()
        if owner_cache is not None:
            owner_cache.close()
    return max((child.exitcode or 0 for child in children), default=0)


def run_service(
    config: ServiceConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 8645,
    access_log: bool = True,
    procs: int = 1,
) -> int:
    """Blocking entry point behind ``repro-study serve``; returns 0.

    ``procs > 1`` switches to the pre-fork front end (one listening
    socket, N acceptor processes, shared result cache when configured).
    """
    if procs > 1:
        return _run_prefork(
            config, host=host, port=port, access_log=access_log, procs=procs
        )
    service = _build_service(
        config, host=host, port=port, access_log=access_log
    )
    asyncio.run(_serve_until_signalled(service))
    return 0
