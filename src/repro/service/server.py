"""The asyncio acceptor: sockets in, :class:`ServiceApp` responses out.

``asyncio.start_server`` gives us the event loop and stream plumbing; this
module adds what a long-lived checker service needs on top:

* a per-connection request loop with keep-alive and an idle timeout, so
  one stalled client cannot pin a connection task forever;
* protocol errors (:class:`~repro.service.http.HTTPError`) answered with
  their mapped status — a malformed request is a *response*, never a
  traceback;
* structured JSON access logs per request;
* graceful shutdown: stop accepting, let in-flight requests finish
  (bounded by ``drain_timeout``), then tear down the worker pool.  The
  ci.sh serve-smoke stage asserts this drain behaviour end-to-end.

The process exposes exactly one stdout line on startup::

    repro.service listening on 127.0.0.1:8645

so scripted callers (CI, the bench) can bind port 0 and discover the
ephemeral port.
"""
from __future__ import annotations

import asyncio
import signal
import sys

from .app import ServiceApp, ServiceConfig
from .http import HTTPError, Request, error_response, read_request
from .metrics import AccessLogger
from .workers import create_pool

#: seconds a keep-alive connection may sit idle between requests
IDLE_TIMEOUT = 30.0
#: seconds shutdown waits for in-flight requests before cancelling them
DRAIN_TIMEOUT = 10.0


class CheckerService:
    """One listening checker service bound to an app instance."""

    def __init__(
        self,
        app: ServiceApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        access_logger: AccessLogger | None = None,
        idle_timeout: float = IDLE_TIMEOUT,
        drain_timeout: float = DRAIN_TIMEOUT,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.access = access_logger or AccessLogger(None)
        self.idle_timeout = idle_timeout
        self.drain_timeout = drain_timeout
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = False

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> int:
        """Bind and listen; returns the actual port (for ``port=0``)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def shutdown(self) -> None:
        """Graceful drain: no new work, finish what was admitted."""
        self._draining = True
        self.app.healthy = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            # in-flight requests get drain_timeout to complete; after
            # that the tasks are cancelled (clients see a reset, but the
            # process still exits cleanly)
            _done, pending = await asyncio.wait(
                self._connections, timeout=self.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self.app.executor is not None:
            self.app.executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------ connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self.app.metrics.connections_open += 1
        self.app.metrics.connections_total += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            # client went away or shutdown cancelled the drain — both are
            # normal ends of a connection, not service errors
            pass
        finally:
            self.app.metrics.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        remote = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else ""
        while True:
            try:
                request = await asyncio.wait_for(
                    read_request(
                        reader,
                        max_body=self.app.config.max_body,
                        remote=remote,
                    ),
                    timeout=self.idle_timeout,
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive connection: just close it
            except HTTPError as exc:
                self.app.metrics.bad_requests += 1
                response = error_response(exc.status, exc.detail)
                writer.write(response.to_bytes(close=True))
                await writer.drain()
                self.access.log(
                    remote=remote, method="-", path="-",
                    status=exc.status, seconds=0.0, bytes_in=0,
                    bytes_out=len(response.body),
                )
                if exc.close:
                    return
                continue
            if request is None:
                return  # clean EOF

            loop = asyncio.get_running_loop()
            started = loop.time()
            response = await self.app.handle(request)
            close = self._draining or not request.keep_alive
            writer.write(
                response.to_bytes(
                    head_only=request.method == "HEAD", close=close
                )
            )
            await writer.drain()
            self.access.log(
                remote=remote, method=request.method, path=request.path,
                status=response.status, seconds=loop.time() - started,
                bytes_in=len(request.body), bytes_out=len(response.body),
                cache=response.cache_state,
            )
            if close:
                return


async def _serve_until_signalled(service: CheckerService) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            # non-main thread or platform without signal support: the
            # caller stops us by cancelling serve_forever instead
            pass
    port = await service.start()
    print(
        f"repro.service listening on {service.host}:{port}", flush=True
    )
    await stop.wait()
    print("repro.service draining", file=sys.stderr, flush=True)
    await service.shutdown()


def run_service(
    config: ServiceConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 8645,
    access_log: bool = True,
) -> int:
    """Blocking entry point behind ``repro-study serve``; returns 0."""
    app = ServiceApp(config, executor=create_pool(config.workers))
    logger = AccessLogger(sys.stderr if access_log else None)
    service = CheckerService(app, host=host, port=port, access_logger=logger)
    asyncio.run(_serve_until_signalled(service))
    return 0
