"""NDJSON batch checking: bounded fan-out, submission-order streaming.

``POST /check-batch`` takes newline-delimited JSON documents in and
streams newline-delimited results out — the ``chunk_data`` /
``aggregate_responses`` shape GenA11y uses for batched accessibility
checking, applied to this service.  Each input line::

    {"html": "<!doctype html>...", "url": "http://a/"}
    {"body_b64": "//4gaW52YWxpZA==", "url": "http://b/"}

names its document either as a UTF-8 string (``html``) or as base64 raw
bytes (``body_b64`` — how a client submits a body that may not be UTF-8,
which the checker answers with its usual 422).  Each output line frames
the *exact* single-request answer::

    {"index": 0, "status": 200, "result": <POST /check response body>}

The ``result`` value is spliced in as raw bytes from the same
:meth:`~repro.service.app.ServiceApp.run_single` call a lone ``POST
/check`` performs — byte-parity between batch and single is therefore by
construction, and the ``service_parity`` fuzz oracle plus
``tests/service/test_batch.py`` machine-check it anyway.

Scheduling reuses the :class:`~repro.pipeline.reorder.ReorderBuffer`
idiom from the study pipeline: up to ``ServiceConfig.batch_window`` lines
are in flight on the worker pool at once (in flight + buffered, so
memory stays flat however completion order scrambles), and results are
released strictly in submission order — a client can zip its inputs with
the output lines.
"""
from __future__ import annotations

import asyncio
import base64
import binascii
import json
import logging
from typing import AsyncIterator

from ..pipeline.reorder import ReorderBuffer
from .http import Response, error_response

logger = logging.getLogger("repro.service")


def batch_items(body: bytes) -> list[bytes]:
    """The non-blank NDJSON lines of a batch body, in order."""
    return [line for line in body.split(b"\n") if line.strip()]


def frame_line(index: int, response: Response) -> bytes:
    """One NDJSON result line with the raw response body spliced in.

    ``response.body`` is compact JSON (no raw newlines — ``json.dumps``
    escapes them), so the frame is itself exactly one line.
    """
    return (
        b'{"index":%d,"status":%d,"result":' % (index, response.status)
        + response.body
        + b"}\n"
    )


def parse_batch_line(raw: bytes) -> tuple[bytes, str] | Response:
    """Decode one input line to ``(document bytes, url)``.

    Anything malformed — undecodable line, non-object JSON, missing or
    conflicting document fields, bad base64 — returns the 400
    :class:`Response` that becomes this line's framed result; the rest
    of the batch is unaffected.
    """
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return error_response(400, "malformed NDJSON line")
    if not isinstance(obj, dict):
        return error_response(400, "batch line must be a JSON object")
    has_html = "html" in obj
    has_b64 = "body_b64" in obj
    if has_html == has_b64:
        return error_response(
            400, "batch line needs exactly one of 'html' or 'body_b64'"
        )
    if has_html:
        if not isinstance(obj["html"], str):
            return error_response(400, "'html' must be a string")
        body = obj["html"].encode("utf-8")
    else:
        if not isinstance(obj["body_b64"], str):
            return error_response(400, "'body_b64' must be a string")
        try:
            body = base64.b64decode(obj["body_b64"], validate=True)
        except (binascii.Error, ValueError):
            return error_response(400, "'body_b64' is not valid base64")
    url = obj.get("url", "")
    if not isinstance(url, str):
        return error_response(400, "'url' must be a string")
    return body, url


async def _run_line(app, raw: bytes) -> Response:
    """One line's result: parse, then the standard single-check path.

    Worker bugs map to this line's 500 (logged and counted, same as the
    single path's last-resort handler) — an exception here must not tear
    down a stream whose head has already been written.
    """
    parsed = parse_batch_line(raw)
    if isinstance(parsed, Response):
        return parsed
    body, url = parsed
    try:
        return await app.run_single("/check", body, url=url)
    except asyncio.CancelledError:
        raise
    except Exception:
        logger.exception("unhandled error for batch line")
        app.metrics.internal_errors += 1
        return error_response(500, "internal error")


async def stream_batch(app, items: list[bytes]) -> AsyncIterator[bytes]:
    """Yield framed result lines in submission order.

    The async mirror of :func:`repro.pipeline.reorder.streamed_map`:
    submit while the window has room, wait on ``FIRST_COMPLETED``, add
    completions to the :class:`ReorderBuffer` keyed by submission index,
    and drain the contiguous prefix.  A straggler at the drain head
    throttles submission once ``window - 1`` successors are buffered —
    that back-pressure is the memory bound working.
    """
    window = max(1, app.config.batch_window)
    buffer = ReorderBuffer()
    in_flight: dict[asyncio.Task, int] = {}
    position = 0
    total = len(items)
    try:
        while position < total or in_flight or len(buffer):
            while position < total and len(in_flight) + len(buffer) < window:
                task = asyncio.ensure_future(_run_line(app, items[position]))
                in_flight[task] = position
                position += 1
            if in_flight:
                done, _pending = await asyncio.wait(
                    in_flight, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    buffer.add(in_flight.pop(task), task)
            for index, task in buffer.drain():
                yield frame_line(index, task.result())
    finally:
        for task in in_flight:
            task.cancel()
