"""A minimal HTTP/1.1 request parser and response writer.

The service layer follows the repo's substitution philosophy (DESIGN.md
§2): just as ``repro.warc`` replaces warcio, this module replaces an HTTP
framework with the small, inspectable subset the checker service needs —
request-line + header parsing, ``Content-Length`` bodies, keep-alive, and
hard input limits.  Everything a client can get wrong is mapped to a
typed :class:`HTTPError` carrying the status the connection loop should
answer with, so malformed traffic can never crash the acceptor.

Deliberate non-features: no chunked transfer encoding for *requests*
(501 — the service consumes bounded documents, not streams), no
multipart, no TLS (terminate upstream), no HTTP/2.  Chunked **response**
framing is supported (:class:`StreamingResponse`): the NDJSON batch
endpoint emits result lines as they become available, and chunked
encoding is what lets a streamed body coexist with keep-alive.
"""
from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator
from urllib.parse import parse_qsl, urlsplit

#: hard ceiling on the request line + headers block, in bytes
MAX_HEADER_BYTES = 16 * 1024
#: default ceiling on a request body, in bytes (override per service)
DEFAULT_MAX_BODY = 2 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_SUPPORTED_METHODS = frozenset({"GET", "HEAD", "POST"})


class HTTPError(Exception):
    """A protocol-level problem with a well-defined HTTP answer.

    ``status`` is what the connection loop responds with; ``close`` says
    whether the connection is still framed well enough to keep alive
    (after an over-long or truncated body it is not).
    """

    def __init__(self, status: int, detail: str, *, close: bool = True) -> None:
        self.status = status
        self.detail = detail
        self.close = close
        super().__init__(f"{status} {REASONS.get(status, '')}: {detail}")


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    target: str                       # raw request target, e.g. "/check?url=x"
    version: str                      # "HTTP/1.1"
    headers: dict[str, str]           # keys lower-cased, values stripped
    body: bytes = b""
    #: peer address for access logs; "" for in-process calls
    remote: str = ""

    @property
    def path(self) -> str:
        return urlsplit(self.target).path or "/"

    @property
    def query(self) -> dict[str, str]:
        """Decoded query parameters (last value wins on duplicates)."""
        return dict(parse_qsl(urlsplit(self.target).query))

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(slots=True)
class Response:
    """One HTTP response, serializable with :meth:`to_bytes`."""

    status: int
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)
    #: set by the app for the access log / metrics ("hit" | "miss" | "")
    cache_state: str = ""

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")

    def to_bytes(self, *, head_only: bool = False, close: bool = False) -> bytes:
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        headers = dict(self.headers)
        headers.setdefault("content-type", "application/json; charset=utf-8")
        headers["content-length"] = str(len(self.body))
        if close:
            headers["connection"] = "close"
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head if head_only else head + self.body


#: terminal frame of a chunked response body
LAST_CHUNK = b"0\r\n\r\n"


def encode_chunk(data: bytes) -> bytes:
    """One ``Transfer-Encoding: chunked`` frame (hex size, CRLF framing)."""
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


@dataclass(slots=True)
class StreamingResponse:
    """A response whose body is produced incrementally.

    ``lines`` yields raw body fragments (for the batch endpoint: complete
    NDJSON lines, newline included).  The connection loop frames them:
    chunked transfer encoding under HTTP/1.1 (keep-alive survives),
    close-delimited under HTTP/1.0.  ``content_type`` defaults to NDJSON
    since that is the only streaming producer today.
    """

    status: int
    lines: AsyncIterator[bytes]
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "application/x-ndjson; charset=utf-8"

    @property
    def reason(self) -> str:
        return REASONS.get(self.status, "Unknown")

    def head_bytes(self, *, chunked: bool, close: bool = False) -> bytes:
        """The status line + headers for the streamed body.

        No ``content-length`` — the length is unknown by design.  With
        ``chunked=False`` the caller must close the connection after the
        body (HTTP/1.0 framing), so ``connection: close`` is forced.
        """
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        headers = dict(self.headers)
        headers.setdefault("content-type", self.content_type)
        if chunked:
            headers["transfer-encoding"] = "chunked"
        if close or not chunked:
            headers["connection"] = "close"
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def json_response(
    status: int, payload: dict, *, headers: dict[str, str] | None = None
) -> Response:
    """A JSON response with a deterministic (sorted-keys) body."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return Response(status=status, body=body, headers=dict(headers or {}))


def error_response(status: int, detail: str) -> Response:
    return json_response(status, {"error": REASONS.get(status, ""), "detail": detail})


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body: int = DEFAULT_MAX_BODY,
    max_header: int = MAX_HEADER_BYTES,
    remote: str = "",
) -> Request | None:
    """Read one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HTTPError` for anything malformed — the caller maps it
    to a response.  The body is fully buffered (the checker needs the
    whole document anyway); ``max_body`` bounds it *before* the read, so
    an attacker cannot make the server buffer an unbounded payload.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HTTPError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(413, "request head exceeds buffer limit") from exc
    if len(head) > max_header:
        raise HTTPError(413, f"request head exceeds {max_header} bytes")

    request_line, _, header_block = head.partition(b"\r\n")
    try:
        method, target, version = request_line.decode("ascii").split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise HTTPError(400, "malformed request line") from exc
    version = version.strip()
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HTTPError(400, f"unsupported protocol version {version!r}")
    if method not in _SUPPORTED_METHODS:
        raise HTTPError(501, f"method {method!r} not implemented", close=False)

    headers: dict[str, str] = {}
    for raw_line in header_block.split(b"\r\n"):
        if not raw_line.strip():
            continue
        name, sep, value = raw_line.partition(b":")
        if not sep or not name.strip():
            raise HTTPError(400, f"malformed header line {raw_line[:40]!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = value.decode(
                "latin-1"
            ).strip()
        except UnicodeDecodeError as exc:
            raise HTTPError(400, "non-ascii header name") from exc

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(501, "chunked transfer encoding not supported")

    body = b""
    if method == "POST":
        raw_length = headers.get("content-length")
        if raw_length is None:
            raise HTTPError(411, "POST requires Content-Length", close=False)
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HTTPError(400, f"bad Content-Length {raw_length!r}") from exc
        if length < 0:
            raise HTTPError(400, f"bad Content-Length {raw_length!r}")
        if length > max_body:
            # the body was never read, so the connection framing is gone
            raise HTTPError(413, f"body of {length} bytes exceeds {max_body}")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPError(400, "body shorter than Content-Length") from exc

    return Request(
        method=method, target=target, version=version, headers=headers,
        body=body, remote=remote,
    )
