"""The checker service application: routing, admission, cache, deadlines.

:class:`ServiceApp` is deliberately transport-free — it maps one
:class:`~repro.service.http.Request` to one
:class:`~repro.service.http.Response` and never touches a socket.  The
asyncio server (``server.py``), the unit tests, the throughput bench, and
the ``service_parity`` fuzz oracle all drive the *same* ``handle``
coroutine, which is what makes the differential oracle meaningful: the
code it certifies is the code production traffic hits.

Request lifecycle for the CPU endpoints (``/check``, ``/check-fragment``,
``/fix``)::

    request ─ size gate ─ cache probe ──hit──────────────► response
                  │           │miss
                  │      admission gate ──full──► 429 + Retry-After
                  │           │admitted
                  │      worker pool (deadline-bounded) ──timeout──► 503
                  │           │result
                  └──────► cache fill ───────────────────► response

Every failure mode has exactly one HTTP status; handler bugs are caught
at the top of :meth:`handle`, logged, counted, and mapped to 500 — the
request loop itself can never see an exception.
"""
from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import Executor
from dataclasses import dataclass

from .cache import ResultCache, content_key
from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    Request,
    Response,
    error_response,
    json_response,
)
from .metrics import ServiceMetrics
from . import workers

logger = logging.getLogger("repro.service")

#: CPU-bound endpoints and the worker entry point each dispatches to
CPU_ENDPOINTS = frozenset({"/check", "/check-fragment", "/fix"})


@dataclass(slots=True)
class ServiceConfig:
    """Tunables for one service instance (CLI flags map 1:1)."""

    workers: int = 1
    cache_size: int = 1024
    max_body: int = DEFAULT_MAX_BODY
    #: max CPU requests admitted concurrently (queued + running); beyond
    #: this the service answers 429 instead of buffering unbounded work
    queue_limit: int = 64
    #: per-request wall-clock budget once admitted, seconds
    deadline: float = 30.0
    #: Retry-After hint on 429/503, seconds
    retry_after: int = 1


class ServiceApp:
    """One service instance: cache + metrics + (optional) worker pool.

    ``executor=None`` is *inline mode*: worker functions run directly on
    the calling thread.  Inline mode has no admission queue contention
    and no deadline enforcement — it exists so oracles, tests, and the
    cached-path bench exercise the handler without forking processes.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        executor: Executor | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.executor = executor
        self.cache = ResultCache(self.config.cache_size)
        self.metrics = ServiceMetrics()
        self.healthy = True

    # --------------------------------------------------------------- routing

    async def handle(self, request: Request) -> Response:
        """Map one request to one response; never raises."""
        started = time.monotonic()
        self.metrics.record_request(request.path, len(request.body))
        try:
            response = await self._route(request)
        except asyncio.CancelledError:
            raise  # shutdown: let the server's drain logic see it
        except Exception:
            # last-resort mapping of handler bugs to a 500 — logged and
            # counted, so a failure shrinks nothing silently
            logger.exception("unhandled error for %s %s", request.method,
                             request.path)
            self.metrics.internal_errors += 1
            response = error_response(500, "internal error")
        self.metrics.record_response(
            response.status, time.monotonic() - started, len(response.body)
        )
        return response

    async def _route(self, request: Request) -> Response:
        path = request.path
        if path == "/healthz":
            if request.method not in ("GET", "HEAD"):
                return self._method_not_allowed("GET, HEAD")
            return json_response(200, self._health_payload())
        if path == "/metrics":
            if request.method not in ("GET", "HEAD"):
                return self._method_not_allowed("GET, HEAD")
            return json_response(200, self.metrics.snapshot())
        if path in CPU_ENDPOINTS:
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._run_cpu_endpoint(path, request)
        self.metrics.bad_requests += 1
        return error_response(404, f"no route for {path}")

    def _method_not_allowed(self, allowed: str) -> Response:
        self.metrics.bad_requests += 1
        response = error_response(405, f"use {allowed}")
        response.headers["allow"] = allowed
        return response

    def _health_payload(self) -> dict:
        return {
            "status": "ok" if self.healthy else "draining",
            "workers": self.config.workers,
            "inline": self.executor is None,
            "queue_depth": self.metrics.queue_depth,
            "queue_limit": self.config.queue_limit,
            "cache_entries": len(self.cache),
        }

    # ------------------------------------------------------- CPU dispatching

    async def _run_cpu_endpoint(self, endpoint: str, request: Request) -> Response:
        if len(request.body) > self.config.max_body:
            self.metrics.bad_requests += 1
            return error_response(
                413, f"body exceeds {self.config.max_body} bytes"
            )

        query = request.query
        url = query.get("url", "")
        context = query.get("context", "div")
        options = f"url={url}"
        if endpoint == "/check-fragment":
            options += f"&context={context}"
        key = content_key(endpoint, options, request.body)

        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.record_cache(hit=True)
            status, body = cached
            response = Response(
                status=status, body=body, headers={"x-cache": "hit"},
            )
            response.cache_state = "hit"
            return response
        self.metrics.record_cache(hit=False)

        # admission control: bound the work we accept, shed the rest with
        # an explicit signal rather than queueing without limit
        if self.metrics.queue_depth >= self.config.queue_limit:
            self.metrics.rejected_overload += 1
            response = error_response(429, "admission queue full")
            response.headers["retry-after"] = str(self.config.retry_after)
            return response

        if endpoint == "/check":
            call = (workers.run_check, request.body, url)
        elif endpoint == "/check-fragment":
            call = (workers.run_check_fragment, request.body, context, url)
        else:
            call = (workers.run_fix, request.body, url)

        self.metrics.enter_queue()
        try:
            outcome = await self._dispatch(*call)
        except asyncio.TimeoutError:
            self.metrics.deadline_timeouts += 1
            response = error_response(
                503, f"deadline of {self.config.deadline}s exceeded"
            )
            response.headers["retry-after"] = str(self.config.retry_after)
            return response
        finally:
            self.metrics.leave_queue()

        status = outcome["status"]
        if status == 422:
            self.metrics.decode_failures += 1
        response = json_response(
            status, outcome["payload"], headers={"x-cache": "miss"}
        )
        response.cache_state = "miss"
        if status in (200, 422):
            # deterministic outcomes are cacheable; overload/timeouts are not
            self.cache.put(key, (status, response.body))
        return response

    async def _dispatch(self, func, *args) -> dict:
        """Run one worker function, inline or pooled with a deadline."""
        if self.executor is None:
            return func(*args)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self.executor, func, *args)
        # on timeout wait_for cancels the future: a job the pool has not
        # started is reclaimed, but a *running* job cannot be interrupted
        # (ProcessPoolExecutor limitation, documented in DESIGN.md §3.8)
        # and finishes into the void
        return await asyncio.wait_for(future, timeout=self.config.deadline)

    # ----------------------------------------------------------- sync facade

    def handle_sync(self, request: Request) -> Response:
        """Drive :meth:`handle` from synchronous code (oracles, tests)."""
        return asyncio.run(self.handle(request))


def post(path: str, body: bytes, *, url: str = "", context: str = "") -> Request:
    """Build an in-process POST request (oracle/bench/test helper)."""
    params = []
    if url:
        params.append(f"url={url}")
    if context:
        params.append(f"context={context}")
    target = path + ("?" + "&".join(params) if params else "")
    return Request(
        method="POST", target=target, version="HTTP/1.1",
        headers={"content-length": str(len(body))}, body=body,
    )


def get(path: str) -> Request:
    """Build an in-process GET request."""
    return Request(method="GET", target=path, version="HTTP/1.1", headers={})


__all__ = [
    "CPU_ENDPOINTS",
    "HTTPError",
    "ServiceApp",
    "ServiceConfig",
    "get",
    "post",
]
