"""The checker service application: routing, admission, cache, deadlines.

:class:`ServiceApp` is deliberately transport-free — it maps one
:class:`~repro.service.http.Request` to one
:class:`~repro.service.http.Response` and never touches a socket.  The
asyncio server (``server.py``), the unit tests, the throughput bench, and
the ``service_parity`` fuzz oracle all drive the *same* ``handle``
coroutine, which is what makes the differential oracle meaningful: the
code it certifies is the code production traffic hits.

Request lifecycle for the CPU endpoints (``/check``, ``/check-fragment``,
``/fix``)::

    request ─ size gate ─ cache probe ──hit──────────────► response
                  │           │miss
                  │      admission gate ──full──► 429 + Retry-After
                  │           │admitted
                  │      worker pool (deadline-bounded) ──timeout──► 503
                  │           │result
                  └──────► cache fill ───────────────────► response

Every failure mode has exactly one HTTP status; handler bugs are caught
at the top of :meth:`handle`, logged, counted, and mapped to 500 — the
request loop itself can never see an exception.
"""
from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import Executor
from dataclasses import dataclass

from .cache import content_key, make_cache
from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    Request,
    Response,
    StreamingResponse,
    error_response,
    json_response,
)
from .metrics import ServiceMetrics
from . import batch, workers

logger = logging.getLogger("repro.service")

#: CPU-bound endpoints and the worker entry point each dispatches to
CPU_ENDPOINTS = frozenset({"/check", "/check-fragment", "/fix"})


@dataclass(slots=True)
class ServiceConfig:
    """Tunables for one service instance (CLI flags map 1:1)."""

    workers: int = 1
    cache_size: int = 1024
    max_body: int = DEFAULT_MAX_BODY
    #: max CPU requests admitted concurrently (queued + running); beyond
    #: this the service answers 429 instead of buffering unbounded work
    queue_limit: int = 64
    #: per-request wall-clock budget once admitted, seconds
    deadline: float = 30.0
    #: Retry-After hint on 429/503, seconds
    retry_after: int = 1
    #: max batch lines dispatched concurrently (the ReorderBuffer window)
    batch_window: int = 8
    #: max NDJSON lines one /check-batch request may carry
    max_batch_lines: int = 1000
    #: "local" (per-process LRU) or "shared" (cross-process mmap segment)
    cache_backend: str = "local"
    #: shared-segment path; "" creates a fresh temp segment, an existing
    #: path attaches to it (how pre-forked acceptors share one cache)
    cache_path: str = ""


class ServiceApp:
    """One service instance: cache + metrics + (optional) worker pool.

    ``executor=None`` is *inline mode*: worker functions run directly on
    the calling thread.  Inline mode has no admission queue contention
    and no deadline enforcement — it exists so oracles, tests, and the
    cached-path bench exercise the handler without forking processes.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        executor: Executor | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.executor = executor
        self.cache = make_cache(
            self.config.cache_size,
            backend=self.config.cache_backend,
            path=self.config.cache_path,
        )
        self.cache_tier = (
            "shared"
            if self.config.cache_backend == "shared" and self.config.cache_size > 0
            else "local"
        )
        self.metrics = ServiceMetrics()
        self.healthy = True

    def close(self) -> None:
        """Release cache resources (unlinks a shared segment we own)."""
        closer = getattr(self.cache, "close", None)
        if closer is not None:
            closer()

    # --------------------------------------------------------------- routing

    async def handle(self, request: Request) -> Response | StreamingResponse:
        """Map one request to one response; never raises.

        Batch requests come back as a :class:`StreamingResponse` whose
        lines the connection loop writes as they are produced; metrics
        for those are recorded when the stream finishes (the latency an
        open-loop client actually observes).
        """
        started = time.monotonic()
        self.metrics.record_request(request.path, len(request.body))
        try:
            response = await self._route(request)
        except asyncio.CancelledError:
            raise  # shutdown: let the server's drain logic see it
        except Exception:
            # last-resort mapping of handler bugs to a 500 — logged and
            # counted, so a failure shrinks nothing silently
            logger.exception("unhandled error for %s %s", request.method,
                             request.path)
            self.metrics.internal_errors += 1
            response = error_response(500, "internal error")
        if isinstance(response, StreamingResponse):
            response.lines = self._record_stream(
                response.lines, response.status, started
            )
            return response
        self.metrics.record_response(
            response.status, time.monotonic() - started, len(response.body)
        )
        return response

    async def _record_stream(self, inner, status: int, started: float):
        """Pass lines through, recording response metrics at stream end."""
        total = 0
        async for line in inner:
            total += len(line)
            yield line
        self.metrics.record_response(
            status, time.monotonic() - started, total
        )

    async def _route(self, request: Request) -> Response | StreamingResponse:
        path = request.path
        if path == "/healthz":
            if request.method not in ("GET", "HEAD"):
                return self._method_not_allowed("GET, HEAD")
            return json_response(200, self._health_payload())
        if path == "/metrics":
            if request.method not in ("GET", "HEAD"):
                return self._method_not_allowed("GET, HEAD")
            payload = self.metrics.snapshot()
            payload["cache"].update({
                "tier": self.cache_tier,
                "entries": len(self.cache),
                "evictions": self.cache.stats.evictions,
            })
            return json_response(200, payload)
        if path == "/check-batch":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return self._run_batch(request)
        if path in CPU_ENDPOINTS:
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._run_cpu_endpoint(path, request)
        self.metrics.bad_requests += 1
        return error_response(404, f"no route for {path}")

    def _method_not_allowed(self, allowed: str) -> Response:
        self.metrics.bad_requests += 1
        response = error_response(405, f"use {allowed}")
        response.headers["allow"] = allowed
        return response

    def _health_payload(self) -> dict:
        return {
            "status": "ok" if self.healthy else "draining",
            "workers": self.config.workers,
            "inline": self.executor is None,
            "queue_depth": self.metrics.queue_depth,
            "queue_limit": self.config.queue_limit,
            "cache_entries": len(self.cache),
            "cache_tier": self.cache_tier,
        }

    # ------------------------------------------------------- CPU dispatching

    async def _run_cpu_endpoint(self, endpoint: str, request: Request) -> Response:
        query = request.query
        return await self.run_single(
            endpoint, request.body,
            url=query.get("url", ""), context=query.get("context", "div"),
        )

    def _run_batch(self, request: Request) -> Response | StreamingResponse:
        """``POST /check-batch``: NDJSON documents in, NDJSON results out.

        Whole-batch failures (oversized body, too many lines) are plain
        buffered errors; anything per-line — malformed JSON, non-UTF-8
        bytes, worker failure — becomes that *line's* result, framed by
        :func:`repro.service.batch.stream_batch`, so one bad document
        never poisons its batch.
        """
        if len(request.body) > self.config.max_body:
            self.metrics.bad_requests += 1
            return error_response(
                413, f"body exceeds {self.config.max_body} bytes"
            )
        items = batch.batch_items(request.body)
        if len(items) > self.config.max_batch_lines:
            self.metrics.bad_requests += 1
            return error_response(
                413,
                f"{len(items)} lines exceed the "
                f"{self.config.max_batch_lines}-line batch limit",
            )
        self.metrics.record_batch(len(items))
        return StreamingResponse(status=200, lines=batch.stream_batch(self, items))

    async def run_single(
        self, endpoint: str, body: bytes, *, url: str = "", context: str = "div"
    ) -> Response:
        """One CPU-endpoint dispatch with explicit options.

        This is the shared core of the single endpoints and the batch
        fan-out: every batch line goes through exactly this method, which
        is what makes batch/single byte-parity hold by construction
        (same cache, same admission gate, same worker entry points).
        """
        if len(body) > self.config.max_body:
            self.metrics.bad_requests += 1
            return error_response(
                413, f"body exceeds {self.config.max_body} bytes"
            )

        options = f"url={url}"
        if endpoint == "/check-fragment":
            options += f"&context={context}"
        key = content_key(endpoint, options, body)

        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.record_cache(hit=True)
            status, body = cached
            response = Response(
                status=status, body=body, headers={"x-cache": "hit"},
            )
            response.cache_state = "hit"
            return response
        self.metrics.record_cache(hit=False)

        # admission control: bound the work we accept, shed the rest with
        # an explicit signal rather than queueing without limit
        if self.metrics.queue_depth >= self.config.queue_limit:
            self.metrics.rejected_overload += 1
            response = error_response(429, "admission queue full")
            response.headers["retry-after"] = str(self.config.retry_after)
            return response

        if endpoint == "/check":
            call = (workers.run_check, body, url)
        elif endpoint == "/check-fragment":
            call = (workers.run_check_fragment, body, context, url)
        else:
            call = (workers.run_fix, body, url)

        self.metrics.enter_queue()
        try:
            outcome = await self._dispatch(*call)
        except asyncio.TimeoutError:
            self.metrics.deadline_timeouts += 1
            response = error_response(
                503, f"deadline of {self.config.deadline}s exceeded"
            )
            response.headers["retry-after"] = str(self.config.retry_after)
            return response
        finally:
            self.metrics.leave_queue()

        status = outcome["status"]
        if status == 422:
            self.metrics.decode_failures += 1
        response = json_response(
            status, outcome["payload"], headers={"x-cache": "miss"}
        )
        response.cache_state = "miss"
        if status in (200, 422):
            # deterministic outcomes are cacheable; overload/timeouts are not
            self.cache.put(key, (status, response.body))
        return response

    async def _dispatch(self, func, *args) -> dict:
        """Run one worker function, inline or pooled with a deadline."""
        if self.executor is None:
            return func(*args)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self.executor, func, *args)
        # on timeout wait_for cancels the future: a job the pool has not
        # started is reclaimed, but a *running* job cannot be interrupted
        # (ProcessPoolExecutor limitation, documented in DESIGN.md §3.8)
        # and finishes into the void
        return await asyncio.wait_for(future, timeout=self.config.deadline)

    # ----------------------------------------------------------- sync facade

    def handle_sync(self, request: Request) -> Response:
        """Drive :meth:`handle` from synchronous code (oracles, tests).

        A streamed batch response is materialized into a buffered
        :class:`Response` whose body is the concatenated NDJSON lines —
        exactly the bytes a socket client would reassemble from the
        chunked frames.
        """

        async def go() -> Response:
            response = await self.handle(request)
            if isinstance(response, StreamingResponse):
                lines = [line async for line in response.lines]
                return Response(
                    status=response.status,
                    body=b"".join(lines),
                    headers={
                        **response.headers,
                        "content-type": response.content_type,
                    },
                )
            return response

        return asyncio.run(go())


def post(path: str, body: bytes, *, url: str = "", context: str = "") -> Request:
    """Build an in-process POST request (oracle/bench/test helper)."""
    params = []
    if url:
        params.append(f"url={url}")
    if context:
        params.append(f"context={context}")
    target = path + ("?" + "&".join(params) if params else "")
    return Request(
        method="POST", target=target, version="HTTP/1.1",
        headers={"content-length": str(len(body))}, body=body,
    )


def get(path: str) -> Request:
    """Build an in-process GET request."""
    return Request(method="GET", target=path, version="HTTP/1.1", headers={})


__all__ = [
    "CPU_ENDPOINTS",
    "HTTPError",
    "ServiceApp",
    "ServiceConfig",
    "get",
    "post",
]
