"""Open-loop load generation: the saturation curve as a bench artifact.

``repro-study loadgen`` measures what the service bench cannot: sustained
RPS *over real sockets*, where connection setup, request framing, and the
event loop all charge their toll.  The generator is **open-loop** — a
seeded Poisson arrival schedule decides when each request is *offered*,
independent of how fast the service answers — because closed-loop clients
famously flatter an overloaded server (they slow their offered load to
match the bottleneck, hiding the queueing delay real traffic would see;
the coordinated-omission trap).  Latency here is measured from the
*scheduled* arrival time, so a request that waited behind a backlog pays
for the wait.

The sweep runs one step per target RPS and records offered vs. achieved
throughput plus p50/p90/p99 latency at each step — the saturation curve.
Snapshots use the same ``repro-bench/1`` schema as ``repro-study bench``
and live next to its files under ``reports/`` (see EXPERIMENTS.md for the
before/after methodology).

Determinism: the corpus and every step's arrival schedule are pure
functions of ``(seed, rps, duration)`` — two runs offer byte-identical
request sequences at the same nominal instants, so A/B comparisons vary
only the service under test.  (Wall-clock *measurement* is of course not
deterministic; the schedule is.)
"""
from __future__ import annotations

import asyncio
import json
import math
import os
import random
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from ..commoncrawl.templates import build_page

SCHEMA = "repro-bench/1"

#: default target-RPS sweep (doubling steps bracket the knee)
DEFAULT_STEPS = (50, 100, 200, 400, 800)


@dataclass(slots=True)
class LoadgenConfig:
    """One load-generation run (CLI flags map 1:1)."""

    steps: tuple[int, ...] = DEFAULT_STEPS
    #: seconds each step offers load
    duration: float = 3.0
    seed: int = 42
    #: distinct documents in the corpus (cached-hot once warmed)
    distinct: int = 16
    #: client connections driving requests concurrently
    connections: int = 8
    #: reuse connections (HTTP/1.1 keep-alive) vs. one connection per
    #: request (the PR 4 baseline behaviour, ``--no-keepalive``)
    keepalive: bool = True
    #: pre-send every corpus document once so the sweep measures the
    #: cached-hot path; ``--no-warmup`` measures cold misses instead
    warmup: bool = True
    #: offered requests that may queue client-side before the generator
    #: sheds instead (keeps generator memory bounded past saturation)
    max_outstanding: int = 512
    #: per-request client timeout, seconds
    timeout: float = 10.0
    label: str = ""
    # ---- server-under-test shape (the subprocess loadgen spawns)
    server_workers: int = 1
    procs: int = 1
    shared_cache: bool = False
    cache_size: int = 1024


# ----------------------------------------------------------- deterministic part


def build_corpus(distinct: int, seed: int) -> list[bytes]:
    """``distinct`` synthesized pages, a pure function of the seed."""
    corpus = []
    for index in range(distinct):
        rng = random.Random(f"loadgen-corpus:{seed}:{index}")
        page = build_page(f"load{index}.example", f"/p{index}", rng)
        corpus.append(page.render().encode("utf-8"))
    return corpus


def build_schedule(
    rps: int, duration: float, seed: int, corpus_size: int
) -> list[tuple[float, int]]:
    """Poisson arrivals for one step: ``[(offset_seconds, doc_index)]``.

    Exponential inter-arrival gaps at rate ``rps`` over ``duration``
    seconds; each arrival picks a corpus document uniformly.  Everything
    derives from ``random.Random(f"...{seed}:{rps}...")``, so the same
    configuration always offers the same requests at the same nominal
    instants (asserted by tests/service/test_loadgen.py).
    """
    rng = random.Random(f"loadgen-schedule:{seed}:{rps}:{duration}")
    schedule: list[tuple[float, int]] = []
    offset = 0.0
    while True:
        offset += rng.expovariate(rps)
        if offset >= duration:
            return schedule
        schedule.append((offset, rng.randrange(corpus_size)))


def request_bytes(body: bytes, *, keepalive: bool) -> bytes:
    """One framed ``POST /check`` request, ready to write."""
    head = (
        f"POST /check HTTP/1.1\r\nhost: loadgen\r\n"
        f"content-length: {len(body)}\r\n"
    )
    if not keepalive:
        head += "connection: close\r\n"
    return head.encode("ascii") + b"\r\n" + body


def quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values)) - 1
    return sorted_values[min(len(sorted_values) - 1, max(0, rank))]


# ------------------------------------------------------------------ the client


class _StepStats:
    """Mutable per-step accumulator shared by the worker tasks."""

    __slots__ = ("latencies", "statuses", "cache_hits", "errors", "shed",
                 "connects")

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.statuses: dict[int, int] = {}
        self.cache_hits = 0
        self.errors = 0
        self.shed = 0
        self.connects = 0

    def record(self, status: int, latency: float, cache: str) -> None:
        self.latencies.append(latency)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if cache == "hit":
            self.cache_hits += 1


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Parse one Content-Length-framed response off the stream."""
    status_line = await reader.readline()
    if not status_line:
        raise EOFError("connection closed before status line")
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise EOFError(f"malformed status line {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise EOFError("connection closed inside headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def _close_writer(writer: asyncio.StreamWriter | None) -> None:
    if writer is None:
        return
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass


async def _worker(
    host: str,
    port: int,
    queue: asyncio.Queue,
    corpus: list[bytes],
    stats: _StepStats,
    *,
    keepalive: bool,
    timeout: float,
) -> None:
    """Drain scheduled requests; one live connection at a time.

    In keep-alive mode the connection persists across requests until the
    server asks for a close (request cap, drain) or an error poisons it;
    in per-connection mode every request dials fresh — exactly the
    before/after axis the PR 7 acceptance bench sweeps.
    """
    loop = asyncio.get_running_loop()
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    try:
        while True:
            item = await queue.get()
            if item is None:
                return
            scheduled, doc_index = item
            body = corpus[doc_index]
            try:
                if writer is None:
                    reader, writer = await asyncio.open_connection(host, port)
                    stats.connects += 1
                writer.write(request_bytes(body, keepalive=keepalive))
                await writer.drain()
                status, headers, _body = await asyncio.wait_for(
                    _read_response(reader), timeout
                )
            except (OSError, EOFError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                stats.errors += 1
                await _close_writer(writer)
                reader = writer = None
                continue
            stats.record(
                status, loop.time() - scheduled, headers.get("x-cache", "")
            )
            if not keepalive or headers.get("connection", "") == "close":
                await _close_writer(writer)
                reader = writer = None
    finally:
        await _close_writer(writer)


async def run_step(
    host: str, port: int, rps: int, config: LoadgenConfig,
    corpus: list[bytes],
) -> dict:
    """Offer one step's schedule and summarize what came back."""
    schedule = build_schedule(rps, config.duration, config.seed, len(corpus))
    queue: asyncio.Queue = asyncio.Queue()
    stats = _StepStats()
    loop = asyncio.get_running_loop()
    epoch = loop.time()
    workers = [
        asyncio.ensure_future(_worker(
            host, port, queue, corpus, stats,
            keepalive=config.keepalive, timeout=config.timeout,
        ))
        for _ in range(config.connections)
    ]
    # the open loop: offer each request at its scheduled instant no
    # matter how the previous ones are faring
    for offset, doc_index in schedule:
        delay = epoch + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if queue.qsize() >= config.max_outstanding:
            stats.shed += 1
            continue
        queue.put_nowait((epoch + offset, doc_index))
    for _ in workers:
        queue.put_nowait(None)
    await asyncio.gather(*workers)
    elapsed = loop.time() - epoch

    latencies = sorted(stats.latencies)
    completed = len(latencies)
    return {
        "target_rps": rps,
        "offered_rps": round(len(schedule) / config.duration, 1),
        "achieved_rps": round(completed / elapsed, 1) if elapsed else 0.0,
        "scheduled": len(schedule),
        "completed": completed,
        "errors": stats.errors,
        "shed": stats.shed,
        "connects": stats.connects,
        "cache_hits": stats.cache_hits,
        "statuses": {
            str(status): count
            for status, count in sorted(stats.statuses.items())
        },
        "latency_ms": {
            "p50": round(quantile(latencies, 0.50) * 1e3, 3),
            "p90": round(quantile(latencies, 0.90) * 1e3, 3),
            "p99": round(quantile(latencies, 0.99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
        },
    }


async def _warmup(host: str, port: int, corpus: list[bytes]) -> None:
    """Send every document once so the sweep hits a warm cache."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for body in corpus:
            writer.write(request_bytes(body, keepalive=True))
            await writer.drain()
            await _read_response(reader)
    finally:
        await _close_writer(writer)


async def _scrape_metrics(host: str, port: int) -> dict:
    """One ``GET /metrics`` (a single acceptor's view under ``--procs``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"GET /metrics HTTP/1.1\r\nhost: loadgen\r\n"
                     b"connection: close\r\n\r\n")
        await writer.drain()
        _status, _headers, body = await _read_response(reader)
        return json.loads(body)
    finally:
        await _close_writer(writer)


# ------------------------------------------------------- server under test


def start_server(config: LoadgenConfig) -> tuple[subprocess.Popen, str, int]:
    """Spawn ``repro-study serve`` on an ephemeral port; returns (proc,
    host, port) once the listening line appears."""
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--host", "127.0.0.1", "--port", "0", "--no-access-log",
        "--workers", str(config.server_workers),
        "--cache-size", str(config.cache_size),
        "--procs", str(config.procs),
    ]
    if config.shared_cache:
        cmd.append("--shared-cache")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        proc.wait()
        raise RuntimeError(
            f"server did not start (exit {proc.returncode}): {line!r}"
        )
    address = line.rsplit(" ", 1)[1].strip()
    host, _, port = address.rpartition(":")
    return proc, host, int(port)


def stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


# ------------------------------------------------------------------ entrypoint


def run_loadgen(config: LoadgenConfig) -> dict:
    """Full sweep against a freshly spawned server; returns the snapshot."""

    async def sweep(host: str, port: int) -> tuple[list[dict], dict]:
        if config.warmup:
            await _warmup(host, port, corpus)
        steps = []
        for rps in config.steps:
            steps.append(await run_step(host, port, rps, config, corpus))
        metrics = await _scrape_metrics(host, port)
        return steps, metrics

    corpus = build_corpus(config.distinct, config.seed)
    proc, host, port = start_server(config)
    try:
        steps, metrics = asyncio.run(sweep(host, port))
    finally:
        stop_server(proc)
    return {
        "schema": SCHEMA,
        "label": config.label,
        "cases": {},
        "rules": {},
        "loadgen": {
            "seed": config.seed,
            "duration": config.duration,
            "distinct": config.distinct,
            "connections": config.connections,
            "keepalive": config.keepalive,
            "warmup": config.warmup,
            "server": {
                "workers": config.server_workers,
                "procs": config.procs,
                "shared_cache": config.shared_cache,
                "cache_size": config.cache_size,
            },
            "steps": steps,
            "server_metrics": {
                "connections": metrics.get("connections", {}),
                "cache": metrics.get("cache", {}),
            },
        },
    }


def render_loadgen(snapshot: dict) -> str:
    """Human-readable saturation-curve table for one snapshot."""
    load = snapshot["loadgen"]
    title = "repro-study loadgen"
    if snapshot.get("label"):
        title += f" [{snapshot['label']}]"
    mode = "keep-alive" if load["keepalive"] else "per-connection"
    server = load["server"]
    lines = [
        title,
        "=" * len(title),
        f"{mode}, {load['connections']} connections, "
        f"{load['distinct']} distinct docs, "
        f"server procs={server['procs']} "
        f"shared_cache={server['shared_cache']}",
        f"{'target':>7} {'offered':>8} {'achieved':>9} {'p50ms':>8} "
        f"{'p90ms':>8} {'p99ms':>8} {'err':>5} {'shed':>5} {'hit%':>6}",
    ]
    for step in load["steps"]:
        total = step["completed"] or 1
        lines.append(
            f"{step['target_rps']:>7} {step['offered_rps']:>8.1f} "
            f"{step['achieved_rps']:>9.1f} "
            f"{step['latency_ms']['p50']:>8.2f} "
            f"{step['latency_ms']['p90']:>8.2f} "
            f"{step['latency_ms']['p99']:>8.2f} "
            f"{step['errors']:>5} {step['shed']:>5} "
            f"{100.0 * step['cache_hits'] / total:>6.1f}"
        )
    reuse = load["server_metrics"].get("connections", {})
    if reuse:
        lines.append(
            f"server connections: {reuse.get('total', 0)} total, "
            f"{reuse.get('reused', 0)} reused, "
            f"{reuse.get('keepalive_reuses', 0)} keep-alive requests"
        )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_STEPS",
    "LoadgenConfig",
    "SCHEMA",
    "build_corpus",
    "build_schedule",
    "quantile",
    "render_loadgen",
    "request_bytes",
    "run_loadgen",
    "run_step",
]
