"""`repro.service` — the checker as a long-lived HTTP service.

The batch study walks archives offline; this subsystem puts the same
checker and autofixer behind ``repro-study serve`` so external clients
(repair tools, editors, CI linters — the validator.nu workload) can
hammer it.  Architecture (DESIGN.md §3.8)::

    acceptor (asyncio) → admission queue → process-pool workers
                              │
                    content-hash LRU cache

Endpoints: ``POST /check``, ``POST /check-fragment``, ``POST /fix``,
``POST /check-batch`` (NDJSON in, streamed NDJSON out), ``GET
/healthz``, ``GET /metrics``.  All JSON, all stdlib — the HTTP layer is
this repo's own (the warcio-substitution philosophy applied to web
frameworks).  Production path (DESIGN.md §3.11): HTTP/1.1 keep-alive
with pipelining-safe framing, ``--procs N`` pre-forked acceptors on one
listening socket, a cross-process shared result cache, and an open-loop
load generator (``repro-study loadgen``) that records the saturation
curve as a ``repro-bench/1`` snapshot.

The ``service_parity`` fuzz oracle holds this layer to the repo's
differential standard: every generated document must produce the same
JSON through the request handler as a direct ``Checker.check_html``.
"""
from .app import ServiceApp, ServiceConfig, get, post
from .cache import CacheStats, ResultCache, content_key, make_cache
from .http import (
    DEFAULT_MAX_BODY,
    HTTPError,
    Request,
    Response,
    StreamingResponse,
    error_response,
    json_response,
    read_request,
)
from .metrics import AccessLogger, ServiceMetrics
from .server import CheckerService, run_service
from .shared_cache import SharedResultCache
from .workers import create_pool, report_payload, run_check, warm_worker

__all__ = [
    "AccessLogger",
    "CacheStats",
    "CheckerService",
    "DEFAULT_MAX_BODY",
    "HTTPError",
    "Request",
    "Response",
    "ResultCache",
    "ServiceApp",
    "ServiceConfig",
    "ServiceMetrics",
    "SharedResultCache",
    "StreamingResponse",
    "content_key",
    "create_pool",
    "error_response",
    "get",
    "json_response",
    "make_cache",
    "post",
    "read_request",
    "report_payload",
    "run_check",
    "run_service",
    "warm_worker",
]
