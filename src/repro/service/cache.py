"""Content-hash LRU result cache.

Checking is a pure function of (endpoint, options, document bytes) — the
same property the fuzz harness's ``parallel`` oracle asserts for the
batch pipeline — so the service can memoize whole JSON responses keyed by
a sha256 of exactly those inputs.  Real traffic is heavy-tailed (the
paper's corpus fetches the same landing pages snapshot after snapshot),
which makes a small LRU disproportionately effective: a repeated page is
served without parsing at all.

The cache stores the response's (status, serialized JSON body) pair, not
the report object, so a hit allocates nothing but the socket write.  It
is only ever touched from the event-loop thread; no locking.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path


def content_key(endpoint: str, options: str, body: bytes) -> str:
    """sha256 over the request's semantic identity.

    ``endpoint`` and ``options`` are length-prefixed so no concatenation
    of (endpoint, options, body) can collide with another — ``("/check",
    "a", b"b…")`` and ``("/check", "ab", b"…")`` hash differently.
    """
    hasher = hashlib.sha256()
    for part in (endpoint.encode(), options.encode(), body):
        hasher.update(str(len(part)).encode())
        hasher.update(b":")
        hasher.update(part)
    return hasher.hexdigest()


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU of serialized responses.

    ``max_entries <= 0`` disables caching entirely (every lookup is a
    miss and nothing is stored) — the bench uses that to measure the
    uncached path without rebuilding the app.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, tuple[int, bytes]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> tuple[int, bytes] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, entry: tuple[int, bytes]) -> None:
        if self.max_entries <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


def make_cache(max_entries: int, *, backend: str = "local", path: str = ""):
    """Build the configured cache tier behind one interface.

    ``backend="local"`` is the per-process :class:`ResultCache`;
    ``backend="shared"`` creates (or, given an existing segment ``path``,
    attaches) a cross-process :class:`~repro.service.shared_cache.
    SharedResultCache` so every pre-forked acceptor shares one hit set.
    A non-positive ``max_entries`` always yields the disabled local cache
    — a shared segment with zero slots has no meaning.
    """
    if backend == "local" or max_entries <= 0:
        return ResultCache(max_entries)
    if backend != "shared":
        raise ValueError(f"unknown cache backend {backend!r}")
    from .shared_cache import SharedResultCache

    if path and Path(path).exists():
        return SharedResultCache.attach(path)
    return SharedResultCache.create(max_entries, path=path or None)
