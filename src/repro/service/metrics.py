"""Cumulative service counters and latency quantiles for ``/metrics``.

The study's methodology treats "fewer results" as the worst failure mode
(see the exception-hygiene lint pass): a service that silently sheds load
has exactly that bug at runtime.  So every admission rejection, deadline
timeout, decode failure, and internal error is counted here and surfaced
on ``/metrics`` — an operator can see shed load as data, not guess it
from missing traffic.

Latency quantiles use a bounded reservoir of the most recent
``RESERVOIR_SIZE`` observations: p50/p99 over recent traffic is what an
operator acts on, and the memory bound is what a long-lived process
needs.  Everything else is a monotonic counter since process start.
"""
from __future__ import annotations

import json
import time
from collections import Counter, deque
from typing import IO


RESERVOIR_SIZE = 2048


def quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list; 0.0 when empty."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServiceMetrics:
    """All counters for one service process."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.responses_by_status: Counter[int] = Counter()
        self.requests_by_endpoint: Counter[str] = Counter()
        self.cache_hits = 0
        self.cache_misses = 0
        self.rejected_overload = 0      # 429s from admission control
        self.deadline_timeouts = 0      # 503s from per-request deadlines
        self.decode_failures = 0        # 422s from the encoding filter
        self.internal_errors = 0        # 500s from handler bugs
        self.bad_requests = 0           # 4xx protocol errors
        self.bytes_in = 0
        self.bytes_out = 0
        self.queue_depth = 0            # CPU jobs admitted right now
        self.queue_high_water = 0
        self.connections_open = 0
        self.connections_total = 0
        self.connections_reused = 0     # connections that served >= 2 requests
        self.keepalive_reuses = 0       # requests beyond the first on a conn
        self.batch_requests = 0         # POST /check-batch requests
        self.batch_lines = 0            # NDJSON lines across all batches
        self._latencies: deque[float] = deque(maxlen=RESERVOIR_SIZE)

    # ------------------------------------------------------------- recording

    def record_request(self, endpoint: str, bytes_in: int) -> None:
        self.requests_total += 1
        self.requests_by_endpoint[endpoint] += 1
        self.bytes_in += bytes_in

    def record_response(self, status: int, seconds: float, bytes_out: int) -> None:
        self.responses_by_status[status] += 1
        self.bytes_out += bytes_out
        self._latencies.append(seconds)

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_connection_reuse(self, served_on_connection: int) -> None:
        """Called per request with how many this connection has served."""
        if served_on_connection == 2:
            self.connections_reused += 1
        if served_on_connection >= 2:
            self.keepalive_reuses += 1

    def record_batch(self, lines: int) -> None:
        self.batch_requests += 1
        self.batch_lines += lines

    def enter_queue(self) -> None:
        self.queue_depth += 1
        if self.queue_depth > self.queue_high_water:
            self.queue_high_water = self.queue_depth

    def leave_queue(self) -> None:
        self.queue_depth -= 1

    # ------------------------------------------------------------- reporting

    def snapshot(self) -> dict:
        """The ``/metrics`` payload: cumulative counters + recent quantiles."""
        latencies = sorted(self._latencies)
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "requests_total": self.requests_total,
            "requests_by_endpoint": dict(sorted(self.requests_by_endpoint.items())),
            "responses_by_status": {
                str(status): count
                for status, count in sorted(self.responses_by_status.items())
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(
                    self.cache_hits / (self.cache_hits + self.cache_misses), 4
                ) if (self.cache_hits + self.cache_misses) else 0.0,
            },
            "rejected_overload": self.rejected_overload,
            "deadline_timeouts": self.deadline_timeouts,
            "decode_failures": self.decode_failures,
            "internal_errors": self.internal_errors,
            "bad_requests": self.bad_requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "queue": {
                "depth": self.queue_depth,
                "high_water": self.queue_high_water,
            },
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
                "reused": self.connections_reused,
                "keepalive_reuses": self.keepalive_reuses,
            },
            "batch": {
                "requests": self.batch_requests,
                "lines": self.batch_lines,
            },
            "latency_seconds": {
                "count": len(latencies),
                "p50": round(quantile(latencies, 0.50), 6),
                "p90": round(quantile(latencies, 0.90), 6),
                "p99": round(quantile(latencies, 0.99), 6),
            },
        }


class AccessLogger:
    """Structured JSON access logs, one object per line.

    Lines go to ``stream`` (default: nothing — the server passes stderr).
    Fields are flat and stable so the output is greppable and machine-
    parseable; ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self, stream: IO[str] | None = None, *, clock=time.time
    ) -> None:
        self.stream = stream
        self.clock = clock

    def log(
        self,
        *,
        remote: str,
        method: str,
        path: str,
        status: int,
        seconds: float,
        bytes_in: int,
        bytes_out: int,
        cache: str = "",
    ) -> None:
        if self.stream is None:
            return
        record = {
            "t": round(self.clock(), 3),
            "remote": remote,
            "method": method,
            "path": path,
            "status": status,
            "ms": round(seconds * 1000, 3),
            "in": bytes_in,
            "out": bytes_out,
        }
        if cache:
            record["cache"] = cache
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        try:
            self.stream.flush()
        except (OSError, ValueError):
            # a closed/broken log stream must never take the service down
            pass
