"""One-call driver for the full reproduction study.

Builds (or reuses) a calibrated synthetic Common Crawl archive, runs the
Figure 6 pipeline over it, and returns a :class:`Study` handle exposing the
results database plus every section 4 analysis.  Archives and result
databases are cached on disk keyed by configuration, so examples, tests
and all benchmarks share one corpus instead of rebuilding it.

Scale is controlled by :class:`StudyConfig` or the ``REPRO_SCALE``
environment variable (a multiplier on the default 150 domains).
"""
from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .analysis import (
    AutofixEstimate,
    DatasetSummary,
    ElementUsageTrend,
    GeneralStats,
    MitigationComparison,
    TrendSeries,
    all_violation_trends,
    compare_mitigations,
    dataset_table,
    element_usage_trend,
    estimate_autofix,
    figure8_distribution,
    figure9_overall_trend,
    figure10_group_trends,
)
from .commoncrawl import (
    ArchiveBuilder,
    CorpusConfig,
    CorpusPlanner,
)
from .commoncrawl import calibration as cal
from .core.violations import Group
from .incremental import DedupConfig, execute_study_run
from .pipeline import Storage


def default_cache_dir() -> Path:
    return Path(
        os.environ.get("REPRO_CACHE", Path.home() / ".cache" / "repro-study")
    )


def scale_factor() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0


@dataclass(frozen=True, slots=True)
class StudyConfig:
    """Scale knobs for one end-to-end study run."""

    num_domains: int = 150
    max_pages: int = 6
    seed: int = 42
    #: restrict the study to these calendar years (None = all paper
    #: years); the corpus is generated with exactly these snapshots
    years: tuple[int, ...] | None = None
    #: fraction of stable (byte-identical across snapshots) pages per
    #: domain-year; 0.0 keeps legacy corpora byte-identical
    overlap_fraction: float = 0.0

    @classmethod
    def scaled(cls) -> "StudyConfig":
        factor = scale_factor()
        return cls(num_domains=max(40, int(150 * factor)))

    def key(self) -> str:
        key = f"d{self.num_domains}-p{self.max_pages}-s{self.seed}"
        # suffixes only when set, so legacy cache entries keep resolving
        if self.years is not None:
            key += "-y" + "_".join(str(year) for year in self.years)
        if self.overlap_fraction:
            key += f"-o{self.overlap_fraction}"
        return key

    def corpus_config(self) -> CorpusConfig:
        return CorpusConfig(
            num_domains=self.num_domains,
            max_pages=self.max_pages,
            seed=self.seed,
            years=cal.YEARS if self.years is None else self.years,
            overlap_fraction=self.overlap_fraction,
        )


class Study:
    """A completed study run: archive + results DB + analyses."""

    def __init__(
        self,
        config: StudyConfig,
        archive_dir: Path,
        db_path: Path,
        manifest_path: Path | None = None,
    ) -> None:
        self.config = config
        self.archive_dir = archive_dir
        self.db_path = db_path
        #: the repro-manifest/1 record written when this study executed
        #: (may not exist for caches predating run manifests)
        self.manifest_path = manifest_path
        self.storage = Storage(db_path)

    # ------------------------------------------------------------- analyses

    def table2(self) -> DatasetSummary:
        return dataset_table(self.storage)

    def figure8(self) -> GeneralStats:
        return figure8_distribution(self.storage)

    def figure9(self) -> TrendSeries:
        return figure9_overall_trend(self.storage)

    def figure10(self) -> dict[Group, TrendSeries]:
        return figure10_group_trends(self.storage)

    def violation_trends(self) -> dict[str, TrendSeries]:
        return all_violation_trends(self.storage)

    def autofix_estimate(self, year: int = 2022) -> AutofixEstimate:
        return estimate_autofix(self.storage, year)

    def mitigations(self) -> MitigationComparison:
        return compare_mitigations(self.storage)

    def element_usage(self) -> ElementUsageTrend:
        return element_usage_trend(self.storage)

    def ground_truth(self) -> dict:
        return json.loads((self.archive_dir / "ground_truth.json").read_text())

    def close(self) -> None:
        self.storage.close()


def build_archive(config: StudyConfig, cache_dir: Path | None = None) -> Path:
    """Build (or reuse) the synthetic archive for ``config``."""
    cache_dir = cache_dir or default_cache_dir()
    archive_dir = cache_dir / f"archive-{config.key()}"
    marker = archive_dir / "collinfo.json"
    if not marker.exists():
        plan = CorpusPlanner(config.corpus_config()).plan()
        ArchiveBuilder(archive_dir).build(plan)
    return archive_dir


def run_study(
    config: StudyConfig | None = None,
    *,
    cache_dir: Path | None = None,
    force: bool = False,
    workers: int = 1,
    incremental: bool = False,
    near_hamming: int | None = None,
    progress_dedup=None,
) -> Study:
    """Run (or load the cached) full study for ``config``.

    ``workers > 1`` fans domains out to a process pool
    (:class:`repro.pipeline.ParallelStudyRunner`); results are identical to
    the sequential path and share its cache.

    ``incremental=True`` routes the run through the dedup ingest path
    (:mod:`repro.incremental`): a persistent content index lives next to
    the results database, findings of unchanged bodies are carried
    forward, and the aggregate tables stay byte-identical to the full
    path (near-dup carries via ``near_hamming`` trade that exactness for
    more skips).  Incremental runs are cached under their own key.

    Every execution writes a ``repro-manifest/1`` record next to the
    results database; ``repro-study replay`` re-executes from it.
    """
    config = config or StudyConfig.scaled()
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    archive_dir = build_archive(config, cache_dir)
    key = config.key()
    if incremental:
        key += "-inc" if near_hamming is None else f"-inc{near_hamming}"
    db_path = cache_dir / f"results-{key}.sqlite"
    manifest_path = cache_dir / f"results-{key}.manifest.json"
    done_marker = cache_dir / f"results-{key}.done"
    if force or not done_marker.exists():
        if db_path.exists():
            db_path.unlink()
        pages_checked = _execute(
            config, archive_dir, db_path, workers,
            incremental=incremental, near_hamming=near_hamming,
            index_path=cache_dir / f"content-index-{key}.sqlite",
            manifest_path=manifest_path,
            progress_dedup=progress_dedup,
        )
        done_marker.write_text(json.dumps({"pages_checked": pages_checked}))
    return Study(config, archive_dir, db_path, manifest_path=manifest_path)


def _execute(
    config: StudyConfig,
    archive_dir: Path,
    db_path: Path,
    workers: int,
    *,
    incremental: bool = False,
    near_hamming: int | None = None,
    index_path: Path | None = None,
    manifest_path: Path | None = None,
    progress_dedup=None,
) -> int:
    truth = json.loads((archive_dir / "ground_truth.json").read_text())
    domains = [(item["name"], item["avg_rank"]) for item in truth["domains"]]
    dedup = None
    if incremental:
        dedup = DedupConfig(near_hamming=near_hamming)
        # a fresh index per execution keeps the recorded manifest fully
        # replayable (run.index_fresh); re-runs land here only on --force
        if index_path is not None and index_path.exists():
            index_path.unlink()
    # one slot of headroom so the trailing non-UTF-8 legacy page is fetched
    # (exercising the encoding filter) without displacing a planned page
    _manifest, stats = execute_study_run(
        archive_root=archive_dir,
        db_path=db_path,
        domains=domains,
        max_pages=config.max_pages + 1,
        workers=workers,
        seed=config.seed,
        dedup=dedup,
        index_path=index_path if incremental else None,
        manifest_path=manifest_path,
        progress_dedup=progress_dedup,
    )
    return stats.pages_checked
