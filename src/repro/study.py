"""One-call driver for the full reproduction study.

Builds (or reuses) a calibrated synthetic Common Crawl archive, runs the
Figure 6 pipeline over it, and returns a :class:`Study` handle exposing the
results database plus every section 4 analysis.  Archives and result
databases are cached on disk keyed by configuration, so examples, tests
and all benchmarks share one corpus instead of rebuilding it.

Scale is controlled by :class:`StudyConfig` or the ``REPRO_SCALE``
environment variable (a multiplier on the default 150 domains).
"""
from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .analysis import (
    AutofixEstimate,
    DatasetSummary,
    ElementUsageTrend,
    GeneralStats,
    MitigationComparison,
    TrendSeries,
    all_violation_trends,
    compare_mitigations,
    dataset_table,
    element_usage_trend,
    estimate_autofix,
    figure8_distribution,
    figure9_overall_trend,
    figure10_group_trends,
)
from .commoncrawl import (
    ArchiveBuilder,
    CommonCrawlClient,
    CorpusConfig,
    CorpusPlanner,
)
from .core import Checker
from .core.violations import Group
from .pipeline import ParallelStudyRunner, Storage, StudyRunner


def default_cache_dir() -> Path:
    return Path(
        os.environ.get("REPRO_CACHE", Path.home() / ".cache" / "repro-study")
    )


def scale_factor() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0


@dataclass(frozen=True, slots=True)
class StudyConfig:
    """Scale knobs for one end-to-end study run."""

    num_domains: int = 150
    max_pages: int = 6
    seed: int = 42

    @classmethod
    def scaled(cls) -> "StudyConfig":
        factor = scale_factor()
        return cls(num_domains=max(40, int(150 * factor)))

    def key(self) -> str:
        return f"d{self.num_domains}-p{self.max_pages}-s{self.seed}"

    def corpus_config(self) -> CorpusConfig:
        return CorpusConfig(
            num_domains=self.num_domains, max_pages=self.max_pages, seed=self.seed
        )


class Study:
    """A completed study run: archive + results DB + analyses."""

    def __init__(self, config: StudyConfig, archive_dir: Path, db_path: Path) -> None:
        self.config = config
        self.archive_dir = archive_dir
        self.db_path = db_path
        self.storage = Storage(db_path)

    # ------------------------------------------------------------- analyses

    def table2(self) -> DatasetSummary:
        return dataset_table(self.storage)

    def figure8(self) -> GeneralStats:
        return figure8_distribution(self.storage)

    def figure9(self) -> TrendSeries:
        return figure9_overall_trend(self.storage)

    def figure10(self) -> dict[Group, TrendSeries]:
        return figure10_group_trends(self.storage)

    def violation_trends(self) -> dict[str, TrendSeries]:
        return all_violation_trends(self.storage)

    def autofix_estimate(self, year: int = 2022) -> AutofixEstimate:
        return estimate_autofix(self.storage, year)

    def mitigations(self) -> MitigationComparison:
        return compare_mitigations(self.storage)

    def element_usage(self) -> ElementUsageTrend:
        return element_usage_trend(self.storage)

    def ground_truth(self) -> dict:
        return json.loads((self.archive_dir / "ground_truth.json").read_text())

    def close(self) -> None:
        self.storage.close()


def build_archive(config: StudyConfig, cache_dir: Path | None = None) -> Path:
    """Build (or reuse) the synthetic archive for ``config``."""
    cache_dir = cache_dir or default_cache_dir()
    archive_dir = cache_dir / f"archive-{config.key()}"
    marker = archive_dir / "collinfo.json"
    if not marker.exists():
        plan = CorpusPlanner(config.corpus_config()).plan()
        ArchiveBuilder(archive_dir).build(plan)
    return archive_dir


def run_study(
    config: StudyConfig | None = None,
    *,
    cache_dir: Path | None = None,
    force: bool = False,
    workers: int = 1,
) -> Study:
    """Run (or load the cached) full study for ``config``.

    ``workers > 1`` fans domains out to a process pool
    (:class:`repro.pipeline.ParallelStudyRunner`); results are identical to
    the sequential path and share its cache.
    """
    config = config or StudyConfig.scaled()
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    archive_dir = build_archive(config, cache_dir)
    db_path = cache_dir / f"results-{config.key()}.sqlite"
    done_marker = cache_dir / f"results-{config.key()}.done"
    if force or not done_marker.exists():
        if db_path.exists():
            db_path.unlink()
        pages_checked = _execute(config, archive_dir, db_path, workers)
        done_marker.write_text(json.dumps({"pages_checked": pages_checked}))
    return Study(config, archive_dir, db_path)


def _execute(
    config: StudyConfig, archive_dir: Path, db_path: Path, workers: int
) -> int:
    truth = json.loads((archive_dir / "ground_truth.json").read_text())
    domains = [(item["name"], item["avg_rank"]) for item in truth["domains"]]
    # one slot of headroom so the trailing non-UTF-8 legacy page is fetched
    # (exercising the encoding filter) without displacing a planned page
    max_pages = config.max_pages + 1
    with Storage(db_path) as storage:
        if workers > 1:
            stats = ParallelStudyRunner(
                archive_dir, storage, max_pages=max_pages, workers=workers
            ).run(domains)
            pages_checked = stats.pages_checked
        else:
            runner = StudyRunner(
                CommonCrawlClient(archive_dir), storage, checker=Checker(),
                max_pages=max_pages,
            )
            pages_checked = runner.run(domains).pages_checked
        storage.commit()
    return pages_checked
