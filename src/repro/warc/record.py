"""WARC record model (ISO 28500 / WARC 1.0).

A record is a set of named headers plus a content block.  For ``response``
records the block is an HTTP message; :attr:`WARCRecord.payload` strips the
HTTP envelope, which is what the crawler feeds to the checker.
"""
from __future__ import annotations

import hashlib
import uuid
from dataclasses import dataclass, field

WARC_VERSION = "WARC/1.0"

#: Header names in canonical casing (headers are case-insensitive on read).
_CANONICAL = {
    "warc-type": "WARC-Type",
    "warc-record-id": "WARC-Record-ID",
    "warc-date": "WARC-Date",
    "warc-target-uri": "WARC-Target-URI",
    "warc-payload-digest": "WARC-Payload-Digest",
    "warc-block-digest": "WARC-Block-Digest",
    "warc-ip-address": "WARC-IP-Address",
    "warc-concurrent-to": "WARC-Concurrent-To",
    "warc-warcinfo-id": "WARC-Warcinfo-ID",
    "content-type": "Content-Type",
    "content-length": "Content-Length",
}


def canonical_header(name: str) -> str:
    return _CANONICAL.get(name.lower(), name)


@dataclass(slots=True)
class HTTPResponse:
    """Minimal parsed HTTP response envelope inside a WARC response block."""

    status_code: int
    reason: str
    headers: list[tuple[str, str]]
    body: bytes

    def get_header(self, name: str, default: str | None = None) -> str | None:
        lowered = name.lower()
        for header, value in self.headers:
            if header.lower() == lowered:
                return value
        return default

    @property
    def content_type(self) -> str:
        return self.get_header("Content-Type", "") or ""

    def to_bytes(self) -> bytes:
        lines = [f"HTTP/1.1 {self.status_code} {self.reason}".encode("latin-1")]
        lines.extend(
            f"{name}: {value}".encode("latin-1") for name, value in self.headers
        )
        return b"\r\n".join(lines) + b"\r\n\r\n" + self.body


def parse_http_response(block: bytes) -> HTTPResponse | None:
    """Parse the HTTP envelope of a response block; None if malformed."""
    separator = block.find(b"\r\n\r\n")
    if separator == -1:
        return None
    head = block[:separator].decode("latin-1", "replace")
    body = block[separator + 4 :]
    lines = head.split("\r\n")
    status_line = lines[0].split(None, 2)
    if len(status_line) < 2 or not status_line[0].startswith("HTTP/"):
        return None
    try:
        status_code = int(status_line[1])
    except ValueError:
        return None
    reason = status_line[2] if len(status_line) > 2 else ""
    headers: list[tuple[str, str]] = []
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name:
            headers.append((name.strip(), value.strip()))
    return HTTPResponse(status_code, reason, headers, body)


@dataclass(slots=True)
class WARCRecord:
    """One WARC record: headers + raw content block."""

    headers: dict[str, str] = field(default_factory=dict)
    content: bytes = b""

    # ---------------------------------------------------------- accessors

    @property
    def record_type(self) -> str:
        return self.headers.get("WARC-Type", "")

    @property
    def target_uri(self) -> str:
        uri = self.headers.get("WARC-Target-URI", "")
        # Some writers wrap the URI in angle brackets.
        if uri.startswith("<") and uri.endswith(">"):
            return uri[1:-1]
        return uri

    @property
    def date(self) -> str:
        return self.headers.get("WARC-Date", "")

    @property
    def http_response(self) -> HTTPResponse | None:
        if self.record_type not in ("response", "revisit"):
            return None
        return parse_http_response(self.content)

    @property
    def payload(self) -> bytes:
        """The record payload: HTTP body for responses, raw block otherwise."""
        response = self.http_response
        if response is not None:
            return response.body
        return self.content

    @property
    def payload_digest(self) -> str:
        return "sha1:" + hashlib.sha1(self.payload).hexdigest()

    # -------------------------------------------------------- constructors

    @classmethod
    def response(
        cls,
        url: str,
        payload: bytes,
        date: str,
        *,
        status_code: int = 200,
        content_type: str = "text/html; charset=UTF-8",
        extra_http_headers: list[tuple[str, str]] | None = None,
    ) -> "WARCRecord":
        """Build a ``response`` record wrapping ``payload`` in HTTP/1.1."""
        http_headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(payload))),
        ]
        if extra_http_headers:
            http_headers.extend(extra_http_headers)
        response = HTTPResponse(status_code, "OK" if status_code == 200 else "",
                                http_headers, payload)
        block = response.to_bytes()
        record = cls(
            headers={
                "WARC-Type": "response",
                "WARC-Record-ID": f"<urn:uuid:{uuid.uuid4()}>",
                "WARC-Date": date,
                "WARC-Target-URI": url,
                "Content-Type": "application/http; msgtype=response",
                "Content-Length": str(len(block)),
            },
            content=block,
        )
        record.headers["WARC-Payload-Digest"] = record.payload_digest
        return record

    @property
    def is_revisit(self) -> bool:
        return self.record_type == "revisit"

    @property
    def refers_to_uri(self) -> str:
        return self.headers.get("WARC-Refers-To-Target-URI", "")

    @classmethod
    def revisit(
        cls,
        url: str,
        date: str,
        *,
        refers_to_uri: str,
        refers_to_date: str,
        payload_digest: str,
    ) -> "WARCRecord":
        """A deduplicated capture (identical-payload-digest profile).

        Common Crawl stores repeat captures of identical content as
        ``revisit`` records pointing at the original response; the block
        carries only the HTTP headers, no body.
        """
        block = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n"
        return cls(
            headers={
                "WARC-Type": "revisit",
                "WARC-Record-ID": f"<urn:uuid:{uuid.uuid4()}>",
                "WARC-Date": date,
                "WARC-Target-URI": url,
                "WARC-Refers-To-Target-URI": refers_to_uri,
                "WARC-Refers-To-Date": refers_to_date,
                "WARC-Payload-Digest": payload_digest,
                "WARC-Profile": (
                    "http://netpreserve.org/warc/1.0/revisit/"
                    "identical-payload-digest"
                ),
                "Content-Type": "application/http; msgtype=response",
                "Content-Length": str(len(block)),
            },
            content=block,
        )

    @classmethod
    def warcinfo(cls, filename: str, date: str, fields: dict[str, str]) -> "WARCRecord":
        body = "".join(f"{k}: {v}\r\n" for k, v in fields.items()).encode()
        return cls(
            headers={
                "WARC-Type": "warcinfo",
                "WARC-Record-ID": f"<urn:uuid:{uuid.uuid4()}>",
                "WARC-Date": date,
                "WARC-Filename": filename,
                "Content-Type": "application/warc-fields",
                "Content-Length": str(len(body)),
            },
            content=body,
        )
