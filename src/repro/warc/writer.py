"""WARC/1.0 writer with per-record gzip members (the Common Crawl layout).

Common Crawl WARC files are a concatenation of independently gzipped
records, which is what makes CDX random access possible: an index entry
stores the byte ``offset`` and compressed ``length`` of one member, and a
reader can fetch exactly that slice (Common Crawl serves these as S3 range
reads).  This writer reports (offset, length) for every record so the CDX
builder can index while writing.
"""
from __future__ import annotations

import gzip
import io
from typing import BinaryIO

from .record import WARC_VERSION, WARCRecord


class WARCWriter:
    """Write WARC records to a binary stream.

    With ``use_gzip`` (the default, matching Common Crawl) each record is an
    independent gzip member.  :meth:`write_record` returns the byte offset
    and stored length of the record for CDX indexing.
    """

    def __init__(self, stream: BinaryIO, *, use_gzip: bool = True) -> None:
        self.stream = stream
        self.use_gzip = use_gzip
        self._offset = 0

    @property
    def offset(self) -> int:
        return self._offset

    def write_record(self, record: WARCRecord) -> tuple[int, int]:
        raw = self._serialize(record)
        if self.use_gzip:
            buffer = io.BytesIO()
            with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as member:
                member.write(raw)
            raw = buffer.getvalue()
        start = self._offset
        self.stream.write(raw)
        self._offset += len(raw)
        return start, len(raw)

    @staticmethod
    def _serialize(record: WARCRecord) -> bytes:
        record.headers["Content-Length"] = str(len(record.content))
        lines = [WARC_VERSION.encode("latin-1")]
        lines.extend(
            f"{name}: {value}".encode("latin-1")
            for name, value in record.headers.items()
        )
        head = b"\r\n".join(lines) + b"\r\n\r\n"
        return head + record.content + b"\r\n\r\n"
