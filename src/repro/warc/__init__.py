"""`repro.warc` — WARC/1.0 (ISO 28500) and CDXJ substrate.

A from-scratch replacement for ``warcio`` providing exactly what the
measurement pipeline needs: writing per-record-gzipped WARC files,
sequential reading, CDX-indexed random access, and SURT canonicalization.
"""
from .cdx import (
    CDXEntry,
    CDXFormatError,
    CDXIndex,
    CDXWriter,
    MMapCDXIndex,
    domain_prefix,
    surt,
)
from .reader import (
    WARCFileCache,
    WARCFormatError,
    iter_records,
    iter_warc_file,
    read_record_at,
)
from .record import HTTPResponse, WARCRecord, parse_http_response
from .writer import WARCWriter

__all__ = [
    "CDXEntry",
    "CDXFormatError",
    "CDXIndex",
    "CDXWriter",
    "HTTPResponse",
    "MMapCDXIndex",
    "WARCFileCache",
    "WARCFormatError",
    "WARCRecord",
    "WARCWriter",
    "domain_prefix",
    "iter_records",
    "iter_warc_file",
    "parse_http_response",
    "read_record_at",
    "surt",
]
