"""WARC/1.0 reader: sequential iteration and CDX-style random access.

Handles both plain and per-record-gzipped WARC files (multi-member gzip
streams, the Common Crawl layout).  :func:`read_record_at` mirrors how the
paper's crawler fetches individual documents: a CDX entry supplies
``(filename, offset, length)`` and the reader decompresses exactly that
member — the local equivalent of an S3 range request.
"""
from __future__ import annotations

import gzip
import io
import struct
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import BinaryIO, Iterator

from .record import WARCRecord, canonical_header

_GZIP_MAGIC = b"\x1f\x8b"


class WARCFormatError(ValueError):
    """Raised when a stream does not parse as WARC."""


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise WARCFormatError(f"truncated record: wanted {size}, got {len(data)}")
    return data


def _parse_record(stream: BinaryIO) -> WARCRecord | None:
    """Parse one record from a plain (decompressed) stream, or None at EOF."""
    # Skip inter-record blank lines.
    line = stream.readline()
    while line in (b"\r\n", b"\n"):
        line = stream.readline()
    if not line:
        return None
    version = line.strip().decode("latin-1")
    if not version.startswith("WARC/"):
        raise WARCFormatError(f"bad version line: {version!r}")
    headers: dict[str, str] = {}
    while True:
        line = stream.readline()
        if not line:
            raise WARCFormatError("EOF inside record headers")
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[canonical_header(name.strip())] = value.strip()
    try:
        length = int(headers.get("Content-Length", "0"))
    except ValueError as exc:
        raise WARCFormatError("bad Content-Length") from exc
    content = _read_exact(stream, length)
    return WARCRecord(headers=headers, content=content)


def iter_records(stream: BinaryIO) -> Iterator[WARCRecord]:
    """Iterate records from a WARC stream (gzipped or plain)."""
    head = stream.read(2)
    stream.seek(-len(head), io.SEEK_CUR)
    if head == _GZIP_MAGIC:
        yield from _iter_gzip_members(stream)
        return
    while True:
        record = _parse_record(stream)
        if record is None:
            return
        yield record


def _iter_gzip_members(stream: BinaryIO) -> Iterator[WARCRecord]:
    """Iterate records across concatenated gzip members.

    All decompression failures — truncated members (EOFError), corrupt
    headers (BadGzipFile), CRC/stream errors (zlib.error) — surface as
    :class:`WARCFormatError`, so callers handling damaged archives catch
    one typed error instead of the gzip module's internals.
    """
    # gzip.GzipFile transparently reads across members; records may also
    # span member boundaries in pathological files, so parse the joined
    # stream rather than member-by-member.
    try:
        with gzip.GzipFile(fileobj=stream, mode="rb") as plain:
            buffered = io.BufferedReader(plain)  # type: ignore[arg-type]
            while True:
                record = _parse_record(buffered)
                if record is None:
                    return
                yield record
    except (EOFError, gzip.BadGzipFile, zlib.error, struct.error) as exc:
        raise WARCFormatError(f"corrupt gzip member: {exc}") from exc


def iter_warc_file(path: str | Path) -> Iterator[WARCRecord]:
    """Iterate all records in a WARC file on disk."""
    with open(path, "rb") as stream:
        yield from iter_records(stream)


def _record_from_slice(blob: bytes) -> WARCRecord:
    """Decode one record from its raw (possibly gzipped) byte slice."""
    if blob[:2] == _GZIP_MAGIC:
        try:
            blob = zlib.decompress(blob, wbits=zlib.MAX_WBITS | 16)
        except zlib.error as exc:
            raise WARCFormatError(f"corrupt gzip member: {exc}") from exc
    record = _parse_record(io.BytesIO(blob))
    if record is None:
        raise WARCFormatError("empty record slice")
    return record


def read_record_at(path: str | Path, offset: int, length: int) -> WARCRecord:
    """Random access: read the single record stored at (offset, length).

    This is the Common Crawl fetch path — a CDX hit gives the member's byte
    range inside the WARC file; only that slice is read and decompressed.
    """
    with open(path, "rb") as stream:
        stream.seek(offset)
        blob = _read_exact(stream, length)
    return _record_from_slice(blob)


class WARCFileCache:
    """Bounded LRU of open WARC file handles for repeated range reads.

    The fetch loop reads many records from few files (a snapshot's captures
    cluster into a handful of WARC files), so re-opening the file per record
    — what bare :func:`read_record_at` does — pays open/close syscalls for
    every page.  The cache keeps up to ``maxsize`` handles open, evicting
    the least recently used; ``maxsize=0`` disables caching and degrades to
    the one-shot path.

    Not thread-safe; each pipeline worker owns its own cache (handles can't
    be shared across fork anyway).
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._handles: OrderedDict[str, BinaryIO] = OrderedDict()

    def __len__(self) -> int:
        return len(self._handles)

    def _handle(self, path: str | Path) -> BinaryIO:
        key = str(path)
        handle = self._handles.get(key)
        if handle is not None:
            self._handles.move_to_end(key)
            return handle
        handle = open(key, "rb")
        self._handles[key] = handle
        if len(self._handles) > self.maxsize:
            _, evicted = self._handles.popitem(last=False)
            evicted.close()
        return handle

    def read_record_at(self, path: str | Path, offset: int, length: int) -> WARCRecord:
        """Cached variant of :func:`read_record_at` (same contract)."""
        if self.maxsize == 0:
            return read_record_at(path, offset, length)
        stream = self._handle(path)
        stream.seek(offset)
        blob = _read_exact(stream, length)
        return _record_from_slice(blob)

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "WARCFileCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
