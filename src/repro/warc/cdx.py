"""CDXJ index: the lookup layer between a URL and its WARC record.

Common Crawl's index service maps a URL (in SURT form) to the WARC file,
byte offset and length holding its capture.  This module implements the
same contract locally: :func:`surt` canonicalization, a writer that emits
sorted CDXJ lines, and two readers supporting exact-URL and domain-prefix
queries — the two lookups the paper's metadata-collection stage performs
("collect CC metadata" in Figure 6).

Two index implementations share one contract:

* :class:`CDXIndex` — the reference: eagerly parses every line into
  :class:`CDXEntry` objects and answers queries by linear scan.  Simple
  enough to be obviously correct, and kept for exactly that reason (the
  same role ``reference_tokenizer`` plays for the chunked tokenizer).
* :class:`MMapCDXIndex` — the production index: memory-maps the file,
  scans newline offsets once, and binary-searches the sorted urlkey space
  with lazily-decoded keys.  Entries are parsed on demand, so opening is
  O(bytes) with no JSON work and each query is O(log n + matches).

``tests/warc/test_cdx_equivalence.py`` machine-checks that the two return
identical results over generated corpora and adversarial key layouts —
the equivalence is tested, not argued.
"""
from __future__ import annotations

import json
import mmap
import re
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator
from urllib.parse import urlsplit


class CDXFormatError(ValueError):
    """Raised when a line does not parse as a CDXJ entry.

    The one typed rejection the index layer is allowed: malformed lines
    (wrong field count, non-object JSON, missing or non-numeric fields)
    must surface as this error, never as a bare ``KeyError``/``TypeError``
    from the JSON plumbing.
    """


def surt(url: str) -> str:
    """Sort-friendly URI Reordering Transform.

    ``http://www.example.com/path?q=1`` → ``com,example)/path?q=1``.
    Matches the canonicalization Common Crawl's index uses (simplified:
    no query-parameter reordering).
    """
    parts = urlsplit(url if "://" in url else "http://" + url)
    host = parts.hostname or ""
    if host.startswith("www."):
        host = host[4:]
    key = ",".join(reversed(host.split("."))) + ")"
    path = parts.path or "/"
    key += path.lower()
    if parts.query:
        key += "?" + parts.query.lower()
    return key


@dataclass(slots=True)
class CDXEntry:
    """One capture: where to find one URL's record in a WARC file."""

    urlkey: str
    timestamp: str
    url: str
    mime: str
    status: int
    digest: str
    length: int
    offset: int
    filename: str

    def to_line(self) -> str:
        fields = {
            "url": self.url,
            "mime": self.mime,
            "status": str(self.status),
            "digest": self.digest,
            "length": str(self.length),
            "offset": str(self.offset),
            "filename": self.filename,
        }
        return f"{self.urlkey} {self.timestamp} {json.dumps(fields)}"

    @classmethod
    def from_line(cls, line: str) -> "CDXEntry":
        """Parse one CDXJ line; raises :class:`CDXFormatError` on any
        malformed input (wrong field count, bad JSON, missing fields)."""
        try:
            urlkey, timestamp, payload = line.split(" ", 2)
            fields = json.loads(payload)
            if not isinstance(fields, dict):
                raise ValueError(f"payload is {type(fields).__name__}, not object")
            return cls(
                urlkey=urlkey,
                timestamp=timestamp,
                url=fields["url"],
                mime=fields.get("mime", ""),
                status=int(fields.get("status", 0)),
                digest=fields.get("digest", ""),
                length=int(fields["length"]),
                offset=int(fields["offset"]),
                filename=fields["filename"],
            )
        except (ValueError, KeyError, TypeError) as exc:
            # json.JSONDecodeError is a ValueError subclass; KeyError covers
            # missing required fields, TypeError non-string/number values
            raise CDXFormatError(f"bad CDXJ line {line[:80]!r}: {exc}") from exc


#: the exact line shape :meth:`CDXEntry.to_line` emits (json.dumps with
#: this key order and no escaped characters).  Lines matching it can be
#: field-sliced without a JSON parse; anything else — escapes, reordered
#: keys, third-party writers — falls back to :meth:`CDXEntry.from_line`.
#: ``[^"\\]*`` is deliberate: a value containing a quote or backslash was
#: escaped by json.dumps, so the fast path refuses it rather than
#: mis-slicing.
_CANONICAL_LINE = re.compile(
    r'^(\S+) (\S+) \{"url": "([^"\\]*)", "mime": "([^"\\]*)", '
    r'"status": "(\d+)", "digest": "([^"\\]*)", "length": "(\d+)", '
    r'"offset": "(\d+)", "filename": "([^"\\]*)"\}$'
)


def parse_cdx_line(line: str) -> CDXEntry:
    """Parse one CDXJ line, fast-pathing the canonical writer format.

    Returns exactly what :meth:`CDXEntry.from_line` returns (the
    equivalence suite diffs the two); the fast path only fires on lines
    the regex proves unambiguous, so malformed input takes the reference
    path and raises its :class:`CDXFormatError`.
    """
    match = _CANONICAL_LINE.match(line)
    if match is None:
        return CDXEntry.from_line(line)
    (urlkey, timestamp, url, mime, status, digest, length, offset,
     filename) = match.groups()
    return CDXEntry(
        urlkey=urlkey,
        timestamp=timestamp,
        url=url,
        mime=mime,
        status=int(status),
        digest=digest,
        length=int(length),
        offset=int(offset),
        filename=filename,
    )


class CDXWriter:
    """Accumulate entries and write a sorted CDXJ file."""

    def __init__(self) -> None:
        self.entries: list[CDXEntry] = []

    def add(self, entry: CDXEntry) -> None:
        self.entries.append(entry)

    def write(self, path: str | Path) -> int:
        self.entries.sort(key=lambda entry: (entry.urlkey, entry.timestamp))
        with open(path, "w", encoding="utf-8") as stream:
            for entry in self.entries:
                stream.write(entry.to_line())
                stream.write("\n")
        return len(self.entries)


class CDXIndex:
    """In-memory CDXJ index with exact and domain-prefix lookup."""

    def __init__(self, entries: list[CDXEntry]) -> None:
        self.entries = sorted(entries, key=lambda entry: (entry.urlkey, entry.timestamp))

    @classmethod
    def load(cls, path: str | Path) -> "CDXIndex":
        entries = []
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    entries.append(CDXEntry.from_line(line))
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, url: str) -> list[CDXEntry]:
        """All captures of an exact URL."""
        key = surt(url)
        return [entry for entry in self.entries if entry.urlkey == key]

    def domain_query(self, domain: str, *, limit: int | None = None) -> Iterator[CDXEntry]:
        """All captures under a domain (the ``example.com/*`` index query)."""
        prefix = domain_prefix(domain)
        count = 0
        for entry in self.entries:
            if entry.urlkey.startswith(prefix):
                yield entry
                count += 1
                if limit is not None and count >= limit:
                    return


def domain_prefix(domain: str) -> str:
    """The urlkey prefix shared by every capture under ``domain``.

    Ends with the ``)`` host terminator, so ``example.com`` never matches
    ``examples.com`` captures (``com,example)`` is not a prefix of
    ``com,examples)/...``).
    """
    return surt(f"http://{domain}/").split(")")[0] + ")"


class _UrlKeyView:
    """Read-only sequence of an :class:`MMapCDXIndex`'s urlkeys.

    Exists so :func:`bisect.bisect_left` can binary-search the index
    without materializing the key column — each probe decodes exactly one
    key straight out of the mapped file.
    """

    __slots__ = ("_index",)

    def __init__(self, index: "MMapCDXIndex") -> None:
        self._index = index

    def __len__(self) -> int:
        return len(self._index)

    def __getitem__(self, position: int) -> str:
        return self._index.key_at(position)


class MMapCDXIndex:
    """mmap-backed CDXJ index: binary search over the sorted urlkey space.

    Opening scans the mapping once for line offsets (no decoding, no JSON);
    every query then bisects the urlkey column, decoding only the O(log n)
    keys it probes, and parses :class:`CDXEntry` objects on demand for the
    matching lines.  Precondition: the file is sorted by
    ``(urlkey, timestamp)`` — exactly what :class:`CDXWriter` emits.
    (urlkeys never contain a space, the field separator, so byte-sorted
    lines and tuple-sorted entries agree.)

    Processes share the OS page cache for the mapped file, so a pool of
    workers pays for one copy of the index instead of one fully-parsed
    copy each — the memory behavior the pipeline's scheduling layer
    relies on.
    """

    def __init__(self, buffer: "mmap.mmap | bytes", path: str = "") -> None:
        self.path = path
        self._buffer = buffer
        self._starts = array("q")
        self._ends = array("q")
        self._scan_lines()

    @classmethod
    def open(cls, path: str | Path) -> "MMapCDXIndex":
        with open(path, "rb") as stream:
            stream.seek(0, 2)
            if stream.tell() == 0:
                # mmap rejects empty files; an empty index is still valid
                return cls(b"", path=str(path))
            buffer = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
        return cls(buffer, path=str(path))

    def _scan_lines(self) -> None:
        """One pass recording the [start, end) span of every non-blank line."""
        buffer = self._buffer
        size = len(buffer)
        position = 0
        while position < size:
            newline = buffer.find(b"\n", position)
            end = size if newline < 0 else newline
            raw = bytes(buffer[position:end])
            span = raw.strip()
            if span:
                # record the stripped span so CRLF files and padded lines
                # parse identically to the reference loader
                lead = raw.index(span[:1])
                self._starts.append(position + lead)
                self._ends.append(position + lead + len(span))
            position = end + 1

    # ------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return len(self._starts)

    def close(self) -> None:
        if isinstance(self._buffer, mmap.mmap):
            self._buffer.close()
        self._buffer = b""
        self._starts = array("q")
        self._ends = array("q")

    def __enter__(self) -> "MMapCDXIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _line_at(self, position: int) -> str:
        start, end = self._starts[position], self._ends[position]
        return bytes(self._buffer[start:end]).decode("utf-8")

    def key_at(self, position: int) -> str:
        """Line ``position``'s urlkey (the field before the first space)."""
        start, end = self._starts[position], self._ends[position]
        space = self._buffer.find(b" ", start, end)
        if space < 0:
            space = end
        return bytes(self._buffer[start:space]).decode("utf-8")

    def entry_at(self, position: int) -> CDXEntry:
        """Parse line ``position`` (raises :class:`CDXFormatError` when
        malformed — deferred from open to first touch, by design)."""
        return parse_cdx_line(self._line_at(position))

    def entries(self) -> Iterator[CDXEntry]:
        """Every entry in file order (parsing the whole index; test use)."""
        for position in range(len(self)):
            yield self.entry_at(position)

    # -------------------------------------------------------------- queries

    def lookup(self, url: str) -> list[CDXEntry]:
        """All captures of an exact URL."""
        key = surt(url)
        position = bisect_left(_UrlKeyView(self), key)
        hits = []
        while position < len(self) and self.key_at(position) == key:
            hits.append(self.entry_at(position))
            position += 1
        return hits

    def domain_query(self, domain: str, *, limit: int | None = None) -> Iterator[CDXEntry]:
        """All captures under a domain (the ``example.com/*`` index query).

        Any key ≥ the prefix that does not start with it is greater than
        every key that does, so the matching lines are one contiguous run
        beginning at ``bisect_left(keys, prefix)`` — found in O(log n) and
        walked in O(matches).
        """
        prefix = domain_prefix(domain)
        position = bisect_left(_UrlKeyView(self), prefix)
        count = 0
        while position < len(self) and self.key_at(position).startswith(prefix):
            yield self.entry_at(position)
            position += 1
            count += 1
            if limit is not None and count >= limit:
                return
