"""CDXJ index: the lookup layer between a URL and its WARC record.

Common Crawl's index service maps a URL (in SURT form) to the WARC file,
byte offset and length holding its capture.  This module implements the
same contract locally: :func:`surt` canonicalization, a writer that emits
sorted CDXJ lines, and a reader supporting exact-URL and domain-prefix
queries — the two lookups the paper's metadata-collection stage performs
("collect CC metadata" in Figure 6).
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator
from urllib.parse import urlsplit


class CDXFormatError(ValueError):
    """Raised when a line does not parse as a CDXJ entry.

    The one typed rejection the index layer is allowed: malformed lines
    (wrong field count, non-object JSON, missing or non-numeric fields)
    must surface as this error, never as a bare ``KeyError``/``TypeError``
    from the JSON plumbing.
    """


def surt(url: str) -> str:
    """Sort-friendly URI Reordering Transform.

    ``http://www.example.com/path?q=1`` → ``com,example)/path?q=1``.
    Matches the canonicalization Common Crawl's index uses (simplified:
    no query-parameter reordering).
    """
    parts = urlsplit(url if "://" in url else "http://" + url)
    host = parts.hostname or ""
    if host.startswith("www."):
        host = host[4:]
    key = ",".join(reversed(host.split("."))) + ")"
    path = parts.path or "/"
    key += path.lower()
    if parts.query:
        key += "?" + parts.query.lower()
    return key


@dataclass(slots=True)
class CDXEntry:
    """One capture: where to find one URL's record in a WARC file."""

    urlkey: str
    timestamp: str
    url: str
    mime: str
    status: int
    digest: str
    length: int
    offset: int
    filename: str

    def to_line(self) -> str:
        fields = {
            "url": self.url,
            "mime": self.mime,
            "status": str(self.status),
            "digest": self.digest,
            "length": str(self.length),
            "offset": str(self.offset),
            "filename": self.filename,
        }
        return f"{self.urlkey} {self.timestamp} {json.dumps(fields)}"

    @classmethod
    def from_line(cls, line: str) -> "CDXEntry":
        """Parse one CDXJ line; raises :class:`CDXFormatError` on any
        malformed input (wrong field count, bad JSON, missing fields)."""
        try:
            urlkey, timestamp, payload = line.split(" ", 2)
            fields = json.loads(payload)
            if not isinstance(fields, dict):
                raise ValueError(f"payload is {type(fields).__name__}, not object")
            return cls(
                urlkey=urlkey,
                timestamp=timestamp,
                url=fields["url"],
                mime=fields.get("mime", ""),
                status=int(fields.get("status", 0)),
                digest=fields.get("digest", ""),
                length=int(fields["length"]),
                offset=int(fields["offset"]),
                filename=fields["filename"],
            )
        except (ValueError, KeyError, TypeError) as exc:
            # json.JSONDecodeError is a ValueError subclass; KeyError covers
            # missing required fields, TypeError non-string/number values
            raise CDXFormatError(f"bad CDXJ line {line[:80]!r}: {exc}") from exc


class CDXWriter:
    """Accumulate entries and write a sorted CDXJ file."""

    def __init__(self) -> None:
        self.entries: list[CDXEntry] = []

    def add(self, entry: CDXEntry) -> None:
        self.entries.append(entry)

    def write(self, path: str | Path) -> int:
        self.entries.sort(key=lambda entry: (entry.urlkey, entry.timestamp))
        with open(path, "w", encoding="utf-8") as stream:
            for entry in self.entries:
                stream.write(entry.to_line())
                stream.write("\n")
        return len(self.entries)


class CDXIndex:
    """In-memory CDXJ index with exact and domain-prefix lookup."""

    def __init__(self, entries: list[CDXEntry]) -> None:
        self.entries = sorted(entries, key=lambda entry: (entry.urlkey, entry.timestamp))

    @classmethod
    def load(cls, path: str | Path) -> "CDXIndex":
        entries = []
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    entries.append(CDXEntry.from_line(line))
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, url: str) -> list[CDXEntry]:
        """All captures of an exact URL."""
        key = surt(url)
        return [entry for entry in self.entries if entry.urlkey == key]

    def domain_query(self, domain: str, *, limit: int | None = None) -> Iterator[CDXEntry]:
        """All captures under a domain (the ``example.com/*`` index query)."""
        prefix = surt(f"http://{domain}/").split(")")[0] + ")"
        count = 0
        for entry in self.entries:
            if entry.urlkey.startswith(prefix):
                yield entry
                count += 1
                if limit is not None and count >= limit:
                    return
