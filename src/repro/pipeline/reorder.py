"""Deterministic reorder buffer for completion-streamed process pools.

The scheduling problem: a per-snapshot ``pool.map`` barrier keeps results
in order but lets one slow domain idle every other worker until the whole
snapshot drains.  Consuming completions as they arrive fixes the idling
but surrenders ordering — and the study's storage layer requires domain
order so the parallel runner stays bit-identical to the sequential one.

This module provides both halves of the fix:

* :class:`ReorderBuffer` holds out-of-order ``(index, result)``
  completions and releases the ordered prefix as soon as it is contiguous.
* :func:`streamed_map` drives a pool through an arbitrary task list with a
  bounded number of tasks outstanding, yielding results in submission
  order.  Internally it waits on ``FIRST_COMPLETED`` — deliberately not
  ``concurrent.futures.as_completed``, whose direct consumption in
  ``pipeline/`` the staticcheck determinism pass flags, because results
  consumed in completion order are exactly the nondeterminism this module
  exists to contain.

Determinism argument: results enter the buffer keyed by submission index
and leave only via :meth:`ReorderBuffer.drain`, which releases index ``i``
strictly after ``0..i-1``.  Whatever order the pool completes tasks, the
consumer observes the sequential order — so any store routine driven by
:func:`streamed_map` writes exactly what a sequential loop would write.

Memory argument: at most ``window`` tasks are outstanding (in flight or
completed-and-buffered).  A straggler at the drain head therefore
throttles submission once ``window - 1`` successors have completed — that
back-pressure is the memory bound working, not a scheduling bug.
"""
from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Callable, Iterator, Sequence, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")


class ReorderBuffer:
    """Accepts ``(index, item)`` out of order; releases items in order.

    ``start`` is the first index the buffer will release (indexes are the
    task's position in submission order).
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._pending: dict[int, object] = {}

    def __len__(self) -> int:
        """Completed items waiting for their predecessors."""
        return len(self._pending)

    @property
    def next_index(self) -> int:
        """The index the next :meth:`drain` item will carry."""
        return self._next

    def add(self, index: int, item: object) -> None:
        if index < self._next:
            raise ValueError(f"index {index} already drained (next={self._next})")
        if index in self._pending:
            raise ValueError(f"index {index} already buffered")
        self._pending[index] = item

    def drain(self) -> Iterator[tuple[int, object]]:
        """Yield the contiguous ``(index, item)`` prefix, consuming it."""
        while self._next in self._pending:
            index = self._next
            self._next += 1
            yield index, self._pending.pop(index)


def streamed_map(
    submit: Callable[[Task], "Future[Result]"],
    tasks: Sequence[Task],
    *,
    window: int,
) -> Iterator[Result]:
    """Map ``submit`` over ``tasks``, yielding results in task order.

    ``submit(task)`` must return a future (``pool.submit`` partially
    applied).  Up to ``window`` tasks are outstanding at once — counting
    both in-flight futures and completed results still waiting in the
    reorder buffer, so memory stays flat no matter how the completion
    order scrambles.  A task's exception propagates when its position in
    the ordered stream is reached.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    buffer = ReorderBuffer()
    in_flight: dict[Future, int] = {}
    position = 0
    total = len(tasks)
    while position < total or in_flight:
        while position < total and len(in_flight) + len(buffer) < window:
            in_flight[submit(tasks[position])] = position
            position += 1
        if not in_flight:
            # window full of buffered results but nothing running: the
            # drain head must be buffered now, so drain below frees space
            if not len(buffer):
                break
        else:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                buffer.add(in_flight.pop(future), future)
        for _index, future in buffer.drain():
            yield future.result()
