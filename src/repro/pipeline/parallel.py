"""Multiprocess study execution.

The measurement is embarrassingly parallel across domains (the paper ran
"nearly a thousand pages per minute from one IP"; locally the parser is
the bottleneck).  This module fans domains out to worker processes — each
worker holds its own archive client and checker — and streams compact,
picklable results back to the parent, which owns the single SQLite writer.

Results are bit-identical to the sequential runner regardless of worker
count: page checking is a pure function and writes happen in domain order.
"""
from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..commoncrawl import CommonCrawlClient
from ..core import Checker
from .checker_stage import check_page
from .crawler import CrawlStats, fetch_pages
from .metadata import collect_metadata
from .storage import Storage

# Per-process globals, set up once by the pool initializer.
_client: CommonCrawlClient | None = None
_checker: Checker | None = None


def _init_worker(archive_root: str) -> None:
    global _client, _checker
    _client = CommonCrawlClient(archive_root)
    _checker = Checker()


@dataclass(slots=True)
class PageResult:
    """Picklable per-page outcome shipped from worker to parent."""

    url: str
    utf8: bool
    checked: bool
    findings: dict[str, int] = field(default_factory=dict)
    mitigation: tuple[int, int, int, int] | None = None
    features: tuple[int, int] | None = None
    declared_encoding: str = ""


@dataclass(slots=True)
class DomainResult:
    """Picklable per-domain outcome."""

    domain: str
    snapshot_id: str
    found: bool
    pages: list[PageResult] = field(default_factory=list)
    fetch_failures: int = 0

    @property
    def analyzed_pages(self) -> int:
        return sum(1 for page in self.pages if page.checked)


def process_domain(snapshot_id: str, domain: str, max_pages: int) -> DomainResult:
    """Worker task: run stages 1-3 for one domain, return compact results."""
    assert _client is not None and _checker is not None
    metadata = collect_metadata(_client, snapshot_id, domain, max_pages=max_pages)
    result = DomainResult(domain=domain, snapshot_id=snapshot_id,
                          found=metadata.found)
    if not metadata.found:
        return result
    crawl_stats = CrawlStats()
    for page in fetch_pages(_client, metadata, stats=crawl_stats):
        checked = check_page(page, _checker)
        page_result = PageResult(
            url=page.url, utf8=checked.utf8,
            checked=checked.report is not None,
            declared_encoding=checked.declared_encoding,
        )
        if checked.report is not None and checked.report.counts:
            page_result.findings = dict(checked.report.counts)
        if checked.mitigation is not None:
            mitigation = checked.mitigation
            if (
                mitigation.script_in_attr
                or mitigation.urls_with_newline
                or mitigation.urls_with_newline_and_lt
            ):
                page_result.mitigation = (
                    len(mitigation.script_in_attr),
                    sum(1 for hit in mitigation.script_in_attr
                        if hit.is_nonced_script),
                    mitigation.urls_with_newline,
                    mitigation.urls_with_newline_and_lt,
                )
        if checked.features is not None and (
            checked.features.uses_math or checked.features.uses_svg
        ):
            page_result.features = (
                checked.features.math_elements, checked.features.svg_elements
            )
        result.pages.append(page_result)
    result.fetch_failures = crawl_stats.failed
    return result


@dataclass(slots=True)
class ParallelRunStats:
    snapshots: int = 0
    domains_processed: int = 0
    pages_checked: int = 0
    pages_filtered_non_utf8: int = 0
    fetch_failures: int = 0
    seconds: float = 0.0

    @property
    def pages_per_second(self) -> float:
        return self.pages_checked / self.seconds if self.seconds else 0.0


class ParallelStudyRunner:
    """Run the study with a process pool; same results as StudyRunner.

    Mirrors :class:`~repro.pipeline.runner.StudyRunner`'s interface:
    ``snapshot_ids`` restricts the run to the named collections and
    ``progress`` is an optional callback ``(snapshot_name, domains_done,
    domains_total)`` invoked as worker results stream back (so it reports
    completion order, which the deterministic store order does not follow).
    """

    def __init__(
        self,
        archive_root: str | Path,
        storage: Storage,
        *,
        max_pages: int = 100,
        workers: int = 2,
        progress: Callable[[str, int, int], None] | None = None,
    ) -> None:
        self.archive_root = str(archive_root)
        self.storage = storage
        self.max_pages = max_pages
        self.workers = workers
        self.progress = progress

    def run(
        self,
        domains: list[tuple[str, float]],
        *,
        snapshot_ids: list[str] | None = None,
    ) -> ParallelRunStats:
        stats = ParallelRunStats()
        started = time.monotonic()
        catalog_client = CommonCrawlClient(self.archive_root)
        collections = catalog_client.collections()
        if snapshot_ids is not None:
            collections = [c for c in collections if c.id in snapshot_ids]
        domain_ids = {
            name: self.storage.add_domain(name, rank) for name, rank in domains
        }
        names = [name for name, _rank in domains]
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.archive_root,),
        ) as pool:
            for collection in collections:
                snapshot_row_id = self.storage.add_snapshot(
                    collection.id, collection.year
                )
                results = pool.map(
                    process_domain,
                    [collection.id] * len(names),
                    names,
                    [self.max_pages] * len(names),
                    chunksize=8,
                )
                for index, result in enumerate(results):
                    self._store(result, snapshot_row_id,
                                domain_ids[result.domain], stats)
                    if self.progress is not None:
                        self.progress(collection.id, index + 1, len(names))
                self.storage.commit()
                stats.snapshots += 1
        stats.seconds = time.monotonic() - started
        return stats

    def _store(
        self,
        result: DomainResult,
        snapshot_row_id: int,
        domain_row_id: int,
        stats: ParallelRunStats,
    ) -> None:
        stats.domains_processed += 1
        stats.fetch_failures += result.fetch_failures
        if not result.found:
            self.storage.set_domain_status(
                snapshot_row_id, domain_row_id, found=False, analyzed=False,
                pages=0,
            )
            return
        for page in result.pages:
            page_row_id = self.storage.add_page(
                snapshot_row_id, domain_row_id, page.url,
                utf8=page.utf8, checked=page.checked,
                declared_encoding=page.declared_encoding,
            )
            if not page.checked:
                stats.pages_filtered_non_utf8 += 1
                continue
            stats.pages_checked += 1
            if page.findings:
                self.storage.add_findings(page_row_id, page.findings)
            if page.mitigation is not None:
                script_in_attr, nonced, urls_nl, urls_nl_lt = page.mitigation
                self.storage.add_mitigations(
                    page_row_id, script_in_attr=script_in_attr, nonced=nonced,
                    urls_nl=urls_nl, urls_nl_lt=urls_nl_lt,
                )
            if page.features is not None:
                math_elements, svg_elements = page.features
                self.storage.add_page_features(
                    page_row_id, math_elements=math_elements,
                    svg_elements=svg_elements,
                )
        self.storage.set_domain_status(
            snapshot_row_id,
            domain_row_id,
            found=True,
            analyzed=result.analyzed_pages > 0,
            pages=result.analyzed_pages,
        )
