"""Multiprocess study execution.

The measurement is embarrassingly parallel across domains (the paper ran
"nearly a thousand pages per minute from one IP"; locally the parser is
the bottleneck).  This module fans domains out to worker processes — each
worker holds its own archive client and checker — and streams compact,
picklable results back to the parent, which owns the single SQLite writer.

Scheduling: every snapshot×domain task is submitted up front and consumed
as workers finish, through the deterministic reorder buffer in
:mod:`repro.pipeline.reorder` — so a slow domain no longer stalls its
whole snapshot behind a ``pool.map`` barrier, while results are still
*stored* in exactly the sequential order.  A bounded in-flight window
keeps parent memory flat regardless of how completion order scrambles.

Results are bit-identical to the sequential runner regardless of worker
count: page checking is a pure function, the reorder buffer restores
submission order, and the parent batches each domain's rows in the same
order the sequential runner writes them.
"""
from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..commoncrawl import CommonCrawlClient
from ..core import Checker
from .checker_stage import CheckedPage, check_page
from .crawler import CrawlStats, fetch_pages
from .metadata import collect_metadata
from .reorder import streamed_map
from .storage import Storage

if TYPE_CHECKING:  # imported lazily at runtime to keep pipeline → incremental
    # a one-way street (repro.incremental imports this module)
    from ..incremental.content_index import ContentIndex, IndexEntry
    from ..incremental.dedup import DedupConfig, DedupCounters

# Per-process globals, set up once by the pool initializer.
_client: CommonCrawlClient | None = None
_checker: Checker | None = None
_fetch_retries: int = 2
_measure_mitigations: bool = True
_dedup_config: "DedupConfig | None" = None
_index_path: str = ""
# read-only content-index handle, reopened when the parent advances the
# committed generation (one commit per snapshot boundary)
_dedup_index: "ContentIndex | None" = None
_dedup_generation: int = -1


def _init_worker(
    archive_root: str,
    fetch_retries: int = 2,
    measure_mitigations: bool = True,
    dedup_config: "DedupConfig | None" = None,
    index_path: str = "",
) -> None:
    global _client, _checker, _fetch_retries, _measure_mitigations
    global _dedup_config, _index_path
    _client = CommonCrawlClient(archive_root)
    _checker = Checker()
    _fetch_retries = fetch_retries
    _measure_mitigations = measure_mitigations
    _dedup_config = dedup_config
    _index_path = index_path


@dataclass(slots=True)
class PageResult:
    """Picklable per-page outcome shipped from worker to parent."""

    url: str
    utf8: bool
    checked: bool
    findings: dict[str, int] = field(default_factory=dict)
    mitigation: tuple[int, int, int, int] | None = None
    features: tuple[int, int] | None = None
    declared_encoding: str = ""
    #: carry-forward provenance ("" = freshly checked); see Storage schema
    carried_from: str = ""
    #: which dedup tier carried this page: "cdx" | "content" | "near" | ""
    carry_tier: str = ""
    #: for a freshly checked page under dedup: the content-index entry the
    #: parent stages in store order (None otherwise)
    index_entry: "IndexEntry | None" = None


def page_result_from_checked(checked: CheckedPage) -> PageResult:
    """Compress a :class:`CheckedPage` into the picklable wire form."""
    page_result = PageResult(
        url=checked.url, utf8=checked.utf8,
        checked=checked.report is not None,
        declared_encoding=checked.declared_encoding,
    )
    if checked.report is not None and checked.report.counts:
        page_result.findings = dict(checked.report.counts)
    if checked.mitigation is not None:
        mitigation = checked.mitigation
        if (
            mitigation.script_in_attr
            or mitigation.urls_with_newline
            or mitigation.urls_with_newline_and_lt
        ):
            page_result.mitigation = (
                len(mitigation.script_in_attr),
                sum(1 for hit in mitigation.script_in_attr
                    if hit.is_nonced_script),
                mitigation.urls_with_newline,
                mitigation.urls_with_newline_and_lt,
            )
    if checked.features is not None and (
        checked.features.uses_math or checked.features.uses_svg
    ):
        page_result.features = (
            checked.features.math_elements, checked.features.svg_elements
        )
    return page_result


@dataclass(slots=True)
class DomainResult:
    """Picklable per-domain outcome."""

    domain: str
    snapshot_id: str
    found: bool
    pages: list[PageResult] = field(default_factory=list)
    fetch_failures: int = 0
    #: per-stage seconds ("index"/"fetch"/"check"), filled by the
    #: incremental path for the run manifest; empty otherwise
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def analyzed_pages(self) -> int:
        return sum(1 for page in self.pages if page.checked)


def process_domain(snapshot_id: str, domain: str, max_pages: int) -> DomainResult:
    """Worker task: run stages 1-3 for one domain, return compact results."""
    assert _client is not None and _checker is not None
    metadata = collect_metadata(_client, snapshot_id, domain, max_pages=max_pages)
    result = DomainResult(domain=domain, snapshot_id=snapshot_id,
                          found=metadata.found)
    if not metadata.found:
        return result
    crawl_stats = CrawlStats()
    for page in fetch_pages(
        _client, metadata, stats=crawl_stats, retries=_fetch_retries
    ):
        checked = check_page(
            page, _checker, measure_mitigation_signals=_measure_mitigations
        )
        result.pages.append(page_result_from_checked(checked))
    result.fetch_failures = crawl_stats.failed
    return result


def process_domain_dedup(
    snapshot_id: str, domain: str, max_pages: int, generation: int
) -> DomainResult:
    """Worker task for the incremental path.

    ``generation`` counts parent-side content-index commits (one per
    snapshot boundary); the worker reopens its read-only handle when it
    changes, so every lookup sees exactly the committed prior-snapshot
    view regardless of which worker runs which domain.
    """
    global _dedup_index, _dedup_generation
    assert _client is not None and _checker is not None
    assert _dedup_config is not None and _index_path
    from ..incremental.content_index import ContentIndex
    from ..incremental.dedup import process_domain_incremental

    if _dedup_index is None or _dedup_generation != generation:
        if _dedup_index is not None:
            _dedup_index.close()
        _dedup_index = ContentIndex(_index_path, readonly=True)
        _dedup_generation = generation
    return process_domain_incremental(
        _client, _checker, _dedup_index, _dedup_config, snapshot_id, domain,
        max_pages, fetch_retries=_fetch_retries,
        measure_mitigations=_measure_mitigations,
    )


@dataclass(slots=True)
class ParallelRunStats:
    snapshots: int = 0
    domains_processed: int = 0
    pages_checked: int = 0
    pages_filtered_non_utf8: int = 0
    fetch_failures: int = 0
    seconds: float = 0.0
    #: dedup accounting when the incremental path ran; None otherwise
    dedup: "DedupCounters | None" = None

    @property
    def pages_per_second(self) -> float:
        return self.pages_checked / self.seconds if self.seconds else 0.0


def store_domain_result(
    storage: Storage,
    result: DomainResult,
    snapshot_row_id: int,
    domain_row_id: int,
    stats: ParallelRunStats,
    *,
    index: "ContentIndex | None" = None,
    counters: "DedupCounters | None" = None,
) -> None:
    """Bulk-write one domain's results (shared by both runners).

    Rows are batched per table in page order, so every autoincrement
    id comes out exactly as the sequential runner's row-at-a-time
    writes produce it (pages ids are contiguous per batch; findings
    rows follow page order; mitigations/page_features are keyed by
    page id).  The bit-identical parity test holds this to account.

    Under dedup, fresh pages' index entries are staged here — i.e. in
    deterministic store order, not completion order — and ``counters``
    tallies each page's carry tier.
    """
    stats.domains_processed += 1
    stats.fetch_failures += result.fetch_failures
    if not result.found:
        storage.set_domain_status(
            snapshot_row_id, domain_row_id, found=False, analyzed=False,
            pages=0,
        )
        return
    page_ids = storage.add_pages(
        snapshot_row_id,
        domain_row_id,
        [
            (page.url, page.utf8, page.checked, page.declared_encoding,
             page.carried_from)
            for page in result.pages
        ],
    )
    findings_rows: list[tuple[int, str, int]] = []
    mitigation_rows: list[tuple[int, int, int, int, int]] = []
    feature_rows: list[tuple[int, int, int]] = []
    for page_row_id, page in zip(page_ids, result.pages):
        if counters is not None:
            counters.count(page)
        if index is not None and page.index_entry is not None:
            if index.stage(page.index_entry) and counters is not None:
                counters.staged += 1
        if not page.checked:
            stats.pages_filtered_non_utf8 += 1
            continue
        stats.pages_checked += 1
        for violation, count in page.findings.items():
            findings_rows.append((page_row_id, violation, count))
        if page.mitigation is not None:
            script_in_attr, nonced, urls_nl, urls_nl_lt = page.mitigation
            mitigation_rows.append(
                (page_row_id, script_in_attr, nonced, urls_nl, urls_nl_lt)
            )
        if page.features is not None:
            math_elements, svg_elements = page.features
            feature_rows.append((page_row_id, math_elements, svg_elements))
    storage.add_findings_rows(findings_rows)
    storage.add_mitigations_rows(mitigation_rows)
    storage.add_page_features_rows(feature_rows)
    storage.set_domain_status(
        snapshot_row_id,
        domain_row_id,
        found=True,
        analyzed=result.analyzed_pages > 0,
        pages=result.analyzed_pages,
    )


class ParallelStudyRunner:
    """Run the study with a process pool; same results as StudyRunner.

    Mirrors :class:`~repro.pipeline.runner.StudyRunner`'s interface
    (including ``fetch_retries`` and ``measure_mitigations``, which are
    shipped to the worker initializer): ``snapshot_ids`` restricts the run
    to the named collections and ``progress`` is an optional callback
    ``(snapshot_name, domains_done, domains_total)``.  Results flow back
    in completion order but are reordered before storing, so ``progress``
    reports the deterministic store order — a straggler holds the count
    while later domains finish behind it.

    ``window`` bounds how many tasks may be outstanding (in flight plus
    reorder-buffered); the default scales with ``workers``.

    The incremental path (``dedup`` set) additionally takes the *writer*
    :class:`~repro.incremental.content_index.ContentIndex`; its backing
    file must be a real path so workers can open read-only handles.
    Scheduling then runs in per-snapshot waves — a snapshot's tasks are
    only submitted once the previous snapshot is stored and the index
    committed — because carry-forward lookups are defined against the
    prior snapshot's committed view.  Within a wave, completion order
    still streams through the reorder buffer, so bit-identity across
    worker counts is preserved.  ``progress_dedup`` (if set) receives
    ``(snapshot_name, domains_done, domains_total, counters)`` with the
    live :class:`~repro.incremental.dedup.DedupCounters`.
    """

    def __init__(
        self,
        archive_root: str | Path,
        storage: Storage,
        *,
        max_pages: int = 100,
        workers: int = 2,
        window: int | None = None,
        fetch_retries: int = 2,
        measure_mitigations: bool = True,
        progress: Callable[[str, int, int], None] | None = None,
        dedup: "DedupConfig | None" = None,
        content_index: "ContentIndex | None" = None,
        progress_dedup: Callable[[str, int, int, "DedupCounters"], None] | None = None,
    ) -> None:
        self.archive_root = str(archive_root)
        self.storage = storage
        self.max_pages = max_pages
        self.workers = workers
        self.window = window if window is not None else max(4 * workers, 8)
        self.fetch_retries = fetch_retries
        self.measure_mitigations = measure_mitigations
        self.progress = progress
        self.dedup = dedup
        self.content_index = content_index
        self.progress_dedup = progress_dedup
        #: per-stage seconds summed over workers ("index"/"fetch"/"check"
        #: from the workers, "store" from the parent); incremental runs only
        self.stage_seconds: dict[str, float] = {}
        if dedup is not None:
            if content_index is None:
                raise ValueError(
                    "incremental parallel run needs a writer ContentIndex"
                )
            if content_index.path == ":memory:":
                raise ValueError(
                    "incremental parallel run needs a file-backed content"
                    " index (workers open it read-only)"
                )

    def run(
        self,
        domains: list[tuple[str, float]],
        *,
        snapshot_ids: list[str] | None = None,
    ) -> ParallelRunStats:
        stats = ParallelRunStats()
        started = time.monotonic()
        catalog_client = CommonCrawlClient(self.archive_root)
        collections = catalog_client.collections()
        catalog_client.close()
        if snapshot_ids is not None:
            collections = [c for c in collections if c.id in snapshot_ids]
        domain_ids = {
            name: self.storage.add_domain(name, rank) for name, rank in domains
        }
        names = [name for name, _rank in domains]
        if not names:
            # degenerate run: same snapshot rows + commits as StudyRunner
            for collection in collections:
                self.storage.add_snapshot(collection.id, collection.year)
                self.storage.commit()
                stats.snapshots += 1
            stats.seconds = time.monotonic() - started
            return stats
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(
                self.archive_root,
                self.fetch_retries,
                self.measure_mitigations,
                self.dedup,
                "" if self.content_index is None else self.content_index.path,
            ),
        ) as pool:
            if self.dedup is not None:
                self._run_incremental(pool, collections, names, domain_ids,
                                      stats)
            else:
                self._run_full(pool, collections, names, domain_ids, stats)
        stats.seconds = time.monotonic() - started
        return stats

    def _run_full(self, pool, collections, names, domain_ids, stats) -> None:
        # Every snapshot×domain task, submitted up front: workers roll
        # straight from one snapshot's stragglers into the next snapshot's
        # domains instead of idling at a per-snapshot barrier.
        tasks = [
            (collection.id, name, self.max_pages)
            for collection in collections
            for name in names
        ]
        submit = lambda task: pool.submit(process_domain, *task)
        results = streamed_map(submit, tasks, window=self.window)
        snapshot_row_id = 0
        current = -1
        for index, result in enumerate(results):
            snapshot_index, domain_index = divmod(index, len(names))
            if snapshot_index != current:
                # crossed a snapshot boundary in store order: commit
                # the finished snapshot, open the next — the exact
                # write cadence of the sequential runner
                if current >= 0:
                    self.storage.commit()
                    stats.snapshots += 1
                collection = collections[snapshot_index]
                snapshot_row_id = self.storage.add_snapshot(
                    collection.id, collection.year
                )
                current = snapshot_index
            store_domain_result(self.storage, result, snapshot_row_id,
                                domain_ids[result.domain], stats)
            if self.progress is not None:
                self.progress(
                    collections[snapshot_index].id, domain_index + 1,
                    len(names),
                )
        if current >= 0:
            self.storage.commit()
            stats.snapshots += 1

    def _run_incremental(
        self, pool, collections, names, domain_ids, stats
    ) -> None:
        # Per-snapshot waves: carry-forward is defined against the prior
        # snapshot's committed index view, so snapshot N+1 may not start
        # until snapshot N is stored and the index committed.  The
        # generation counter tells workers when to reopen their read-only
        # handles.  Within a wave the reorder buffer streams exactly as in
        # the full path.
        from ..incremental.dedup import DedupCounters

        counters = DedupCounters()
        stats.dedup = counters
        index = self.content_index
        assert index is not None
        self.stage_seconds = {
            "index": 0.0, "fetch": 0.0, "check": 0.0, "store": 0.0,
        }
        for generation, collection in enumerate(collections):
            snapshot_row_id = self.storage.add_snapshot(
                collection.id, collection.year
            )
            tasks = [
                (collection.id, name, self.max_pages, generation)
                for name in names
            ]
            submit = lambda task: pool.submit(process_domain_dedup, *task)
            results = streamed_map(submit, tasks, window=self.window)
            for domain_index, result in enumerate(results):
                for stage, seconds in result.timings.items():
                    self.stage_seconds[stage] += seconds
                store_started = time.perf_counter()
                store_domain_result(
                    self.storage, result, snapshot_row_id,
                    domain_ids[result.domain], stats,
                    index=index, counters=counters,
                )
                self.stage_seconds["store"] += (
                    time.perf_counter() - store_started
                )
                if self.progress_dedup is not None:
                    self.progress_dedup(
                        collection.id, domain_index + 1, len(names), counters
                    )
                elif self.progress is not None:
                    self.progress(collection.id, domain_index + 1, len(names))
            self.storage.commit()
            index.commit_snapshot()
            stats.snapshots += 1
