"""Versioned SQLite schema migrations.

Every on-disk database the pipeline owns (the results store, the
incremental content index) records its schema generation in
``PRAGMA user_version``.  :func:`ensure_schema` is the single entry
point for opening one:

* an empty database gets the latest schema installed atomically and is
  stamped with the latest version;
* an older database is upgraded one version at a time, each step inside
  its own transaction (the version stamp commits with the DDL, so a
  crash mid-step leaves the previous consistent generation);
* a database stamped with a *newer* version than this code understands
  is refused with :class:`SchemaVersionError` — downgrading code must
  never scribble on a future layout it cannot interpret.

Databases created before this helper existed carry ``user_version == 0``
but already contain tables; they are treated as generation 1 (the
pre-versioning layout) and upgraded from there.
"""

from __future__ import annotations

import sqlite3
from typing import Mapping, Sequence

__all__ = ["SchemaVersionError", "ensure_schema", "schema_version"]


class SchemaVersionError(RuntimeError):
    """The database schema is newer than this code understands."""


def schema_version(conn: sqlite3.Connection) -> int:
    """Return the ``PRAGMA user_version`` stamp of *conn*."""
    row = conn.execute("PRAGMA user_version").fetchone()
    return int(row[0])


def _has_tables(conn: sqlite3.Connection) -> bool:
    row = conn.execute(
        "SELECT COUNT(*) FROM sqlite_master"
        " WHERE type = 'table' AND name NOT LIKE 'sqlite_%'"
    ).fetchone()
    return int(row[0]) > 0


def ensure_schema(
    conn: sqlite3.Connection,
    *,
    latest: int,
    create: str,
    migrations: Mapping[int, Sequence[str]],
    label: str,
) -> int:
    """Bring *conn* to schema generation *latest*; return the version found.

    ``create`` is the full latest-generation DDL script used for empty
    databases.  ``migrations`` maps a target version ``v`` to the SQL
    statements that upgrade generation ``v - 1`` to ``v``; each upgrade
    step runs in one transaction together with its version stamp.
    """
    if not _has_tables(conn):
        conn.executescript(create)
        conn.execute(f"PRAGMA user_version = {latest:d}")
        conn.commit()
        return latest

    version = schema_version(conn)
    if version == 0:
        # Pre-versioning database: the original layout is generation 1.
        version = 1
    found = version
    if version > latest:
        raise SchemaVersionError(
            f"{label}: database schema is generation {version}, but this"
            f" code only understands up to generation {latest};"
            " refusing to open a newer schema"
        )
    if version < latest and conn.in_transaction:
        # flush any implicit transaction the caller left open so each
        # upgrade step below owns its BEGIN/COMMIT pair
        conn.commit()
    while version < latest:
        target = version + 1
        steps = migrations.get(target)
        if steps is None:
            raise SchemaVersionError(
                f"{label}: no migration path from generation {version}"
                f" to {target}"
            )
        conn.execute("BEGIN")
        try:
            for statement in steps:
                conn.execute(statement)
            conn.execute(f"PRAGMA user_version = {target:d}")
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        version = target
    return found
