"""Stage 1 of Figure 6: collect Common Crawl metadata per domain.

For each study domain, query the snapshot's CDX index for up to
``max_pages`` HTML captures ("For each domain, the framework collects meta
information from up to 100 pages and hands them to the crawler").
"""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import CommonCrawlClient
from ..warc import CDXEntry


@dataclass(slots=True)
class DomainMetadata:
    """CDX captures found for one domain in one snapshot."""

    domain: str
    snapshot_id: str
    entries: list[CDXEntry]

    @property
    def found(self) -> bool:
        return bool(self.entries)


def collect_metadata(
    client: CommonCrawlClient,
    snapshot_id: str,
    domain: str,
    *,
    max_pages: int = 100,
    mime: str = "text/html",
) -> DomainMetadata:
    """Query the index for up to ``max_pages`` HTML captures of ``domain``."""
    entries = list(client.query(snapshot_id, domain, mime=mime, limit=max_pages))
    return DomainMetadata(domain=domain, snapshot_id=snapshot_id, entries=entries)
