"""`repro.pipeline` — the Figure 6 crawling framework.

Stage 1 (:mod:`metadata`) queries the CDX index, stage 2 (:mod:`crawler`)
fetches WARC records, stage 3 (:mod:`checker_stage`) filters and checks,
stage 4 (:mod:`storage`) persists to SQLite.  :class:`StudyRunner`
orchestrates the whole longitudinal study.
"""
from .checker_stage import CheckedPage, check_page
from .crawler import CrawlStats, FetchedPage, fetch_pages
from .metadata import DomainMetadata, collect_metadata
from .parallel import ParallelRunStats, ParallelStudyRunner
from .runner import RunStats, StudyRunner
from .storage import Storage

__all__ = [
    "CheckedPage",
    "CrawlStats",
    "DomainMetadata",
    "FetchedPage",
    "ParallelRunStats",
    "ParallelStudyRunner",
    "RunStats",
    "Storage",
    "StudyRunner",
    "check_page",
    "collect_metadata",
    "fetch_pages",
]
