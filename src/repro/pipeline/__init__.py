"""`repro.pipeline` — the Figure 6 crawling framework.

Stage 1 (:mod:`metadata`) queries the CDX index, stage 2 (:mod:`crawler`)
fetches WARC records, stage 3 (:mod:`checker_stage`) filters and checks,
stage 4 (:mod:`storage`) persists to SQLite.  :class:`StudyRunner`
orchestrates the whole longitudinal study; :mod:`repro.incremental`
layers cross-snapshot dedup and replayable manifests on top.
"""
from .checker_stage import CheckedPage, check_page, page_content_key
from .crawler import CrawlStats, FetchedPage, fetch_one, fetch_pages
from .metadata import DomainMetadata, collect_metadata
from .migrations import SchemaVersionError
from .parallel import ParallelRunStats, ParallelStudyRunner, store_domain_result
from .runner import RunStats, StudyRunner
from .storage import Storage

__all__ = [
    "CheckedPage",
    "CrawlStats",
    "DomainMetadata",
    "FetchedPage",
    "ParallelRunStats",
    "ParallelStudyRunner",
    "RunStats",
    "SchemaVersionError",
    "Storage",
    "StudyRunner",
    "check_page",
    "collect_metadata",
    "fetch_one",
    "fetch_pages",
    "page_content_key",
    "store_domain_result",
]
