"""Stage 3 of Figure 6: decode, filter, and check fetched documents.

Applies the section 4.1 encoding filter (UTF-8 only) and runs the full
rule set plus the section 4.5 mitigation detectors over each page, sharing
a single parse per document.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..core import Checker, CheckReport
from ..core.features import PageFeatures, measure_features
from ..core.mitigations import MitigationReport, measure_mitigations
from ..html import parse_bytes, sniff_encoding
from .crawler import FetchedPage


@dataclass(slots=True)
class CheckedPage:
    """The checker's output for one page."""

    url: str
    utf8: bool
    report: CheckReport | None = None
    mitigation: MitigationReport | None = None
    features: PageFeatures | None = None
    #: what the page *declares* (BOM / HTTP charset / meta prescan);
    #: recorded for the section 4.1 context stats, never used to decode
    declared_encoding: str = ""


def check_page(
    page: FetchedPage,
    checker: Checker,
    *,
    measure_mitigation_signals: bool = True,
) -> CheckedPage:
    """Run the filter + checker over one fetched page."""
    declared = sniff_encoding(
        page.payload, http_content_type=page.content_type
    ).encoding or ""
    try:
        # decode-free: the bytes tokenizer applies the UTF-8 filter as it
        # scans, so clean pages never pay for an upfront decode + copy
        result = parse_bytes(page.payload)
    except UnicodeDecodeError:
        return CheckedPage(url=page.url, utf8=False, declared_encoding=declared)
    report = checker.check_parse(result, url=page.url)
    mitigation = (
        measure_mitigations(result) if measure_mitigation_signals else None
    )
    features = measure_features(result)
    return CheckedPage(
        url=page.url, utf8=True, report=report, mitigation=mitigation,
        features=features, declared_encoding=declared,
    )
