"""Stage 3 of Figure 6: decode, filter, and check fetched documents.

Applies the section 4.1 encoding filter (UTF-8 only) and runs the full
rule set plus the section 4.5 mitigation detectors over each page, sharing
a single parse per document.

This stage is also where the incremental engine's dedup decision lives:
:func:`page_content_key` names a fetched body exactly, and
:mod:`repro.incremental.dedup` consults the cross-snapshot content index
under that key *before* paying for :func:`check_page` — a hit carries the
recorded outcome forward instead of re-parsing.
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core import Checker, CheckReport
from ..core.features import PageFeatures, measure_features
from ..core.mitigations import MitigationReport
from ..html import sniff_encoding
from .crawler import FetchedPage


@dataclass(slots=True)
class CheckedPage:
    """The checker's output for one page."""

    url: str
    utf8: bool
    report: CheckReport | None = None
    mitigation: MitigationReport | None = None
    features: PageFeatures | None = None
    #: what the page *declares* (BOM / HTTP charset / meta prescan);
    #: recorded for the section 4.1 context stats, never used to decode
    declared_encoding: str = ""


def page_content_key(payload: bytes, content_type: str) -> str:
    """sha256 key naming a page body for exact-duplicate dedup.

    Length-prefixed parts (the service cache's ambiguity-free framing):
    the payload bytes plus the HTTP content-type header, because the
    header feeds the declared-encoding sniff — two captures serving the
    same bytes under different charset headers are *not* the same page
    for the section 4.1 encoding stats, so they get distinct keys.
    """
    hasher = hashlib.sha256()
    for part in (payload, content_type.encode("utf-8", "surrogateescape")):
        hasher.update(str(len(part)).encode("ascii"))
        hasher.update(b":")
        hasher.update(part)
    return hasher.hexdigest()


def check_page(
    page: FetchedPage,
    checker: Checker,
    *,
    measure_mitigation_signals: bool = True,
) -> CheckedPage:
    """Run the filter + checker over one fetched page."""
    declared = sniff_encoding(
        page.payload, http_content_type=page.content_type
    ).encoding or ""
    try:
        # decode-free: the bytes tokenizer applies the UTF-8 filter as it
        # scans, so clean pages never pay for an upfront decode + copy;
        # honours the checker's mode (stream parses skip the DOM build and
        # fall back to it only on tainted pages)
        result = checker.parse_page_bytes(page.payload)
    except UnicodeDecodeError:
        return CheckedPage(url=page.url, utf8=False, declared_encoding=declared)
    if measure_mitigation_signals:
        # the mitigation sweep rides the fused engine's attribute pass —
        # one token iteration for the rules and the section 4.5 detectors
        report, mitigation = checker.check_parse_with_mitigations(
            result, url=page.url
        )
    else:
        report = checker.check_parse(result, url=page.url)
        mitigation = None
    features = measure_features(result)
    return CheckedPage(
        url=page.url, utf8=True, report=report, mitigation=mitigation,
        features=features, declared_encoding=declared,
    )
