"""Stage 2 of Figure 6: the crawler fetches individual HTML documents.

Takes CDX metadata and range-reads the referenced WARC records; failed or
malformed records are skipped but counted, mirroring a real crawl where a
fraction of fetches fail.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..commoncrawl import CommonCrawlClient
from ..warc import CDXEntry, WARCFormatError
from .metadata import DomainMetadata


@dataclass(slots=True)
class FetchedPage:
    """One fetched document, still undecoded bytes."""

    url: str
    payload: bytes
    content_type: str


@dataclass(slots=True)
class CrawlStats:
    fetched: int = 0
    failed: int = 0
    retried: int = 0
    errors: list[str] = field(default_factory=list)


def fetch_one(
    client: CommonCrawlClient,
    entry: CDXEntry,
    *,
    stats: CrawlStats,
    retries: int = 0,
) -> FetchedPage | None:
    """Fetch one CDX capture; None (with *stats* updated) on failure.

    The per-entry unit of :func:`fetch_pages`, split out so the
    incremental engine can decide *per capture* — a CDX-digest dedup hit
    skips this call entirely — while sharing the retry/skip semantics.
    """
    record = None
    last_error: Exception | None = None
    for attempt in range(retries + 1):
        try:
            record = client.fetch(entry)
            break
        except (OSError, WARCFormatError) as exc:
            last_error = exc
            if attempt < retries:
                stats.retried += 1
    if record is None:
        stats.failed += 1
        stats.errors.append(f"{entry.url}: {last_error}")
        return None
    response = record.http_response
    if response is None or response.status_code != 200:
        stats.failed += 1
        return None
    stats.fetched += 1
    return FetchedPage(
        url=entry.url,
        payload=response.body,
        content_type=response.content_type,
    )


def fetch_pages(
    client: CommonCrawlClient,
    metadata: DomainMetadata,
    *,
    stats: CrawlStats | None = None,
    retries: int = 0,
) -> Iterator[FetchedPage]:
    """Fetch every capture in ``metadata``, skipping broken records.

    ``retries`` re-attempts transient fetch errors (the real pipeline
    talks to S3, where sporadic failures are routine); a capture that
    still fails after the retry budget is counted and skipped — one
    broken record never aborts the domain.
    """
    stats = stats if stats is not None else CrawlStats()
    for entry in metadata.entries:
        page = fetch_one(client, entry, stats=stats, retries=retries)
        if page is not None:
            yield page
