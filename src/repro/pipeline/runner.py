"""The study orchestrator: runs the full Figure 6 pipeline.

For every snapshot and every study domain: collect CDX metadata (stage 1),
fetch the documents (stage 2), filter + check them (stage 3), and store
results (stage 4).  Deterministic and resumable per snapshot.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..commoncrawl import CommonCrawlClient
from ..core import Checker
from .checker_stage import check_page
from .crawler import CrawlStats, fetch_pages
from .metadata import collect_metadata
from .storage import Storage

if TYPE_CHECKING:  # runtime imports stay lazy: pipeline → incremental is
    # a one-way street (repro.incremental imports this package)
    from ..incremental.content_index import ContentIndex
    from ..incremental.dedup import DedupConfig, DedupCounters


@dataclass(slots=True)
class RunStats:
    """Progress counters for one study run."""

    snapshots: int = 0
    domains_processed: int = 0
    pages_fetched: int = 0
    pages_checked: int = 0
    pages_filtered_non_utf8: int = 0
    fetch_failures: int = 0
    seconds: float = 0.0
    per_snapshot: dict[str, int] = field(default_factory=dict)
    #: dedup accounting when the incremental path ran; None otherwise
    dedup: "DedupCounters | None" = None

    @property
    def pages_per_second(self) -> float:
        return self.pages_checked / self.seconds if self.seconds else 0.0


class StudyRunner:
    """Run the longitudinal violation study over an archive.

    ``max_pages`` is the per-domain page cap (the paper used 100; scale it
    down with the corpus).  ``progress`` is an optional callback
    ``(snapshot_name, domains_done, domains_total)``.

    With ``dedup`` set, the run goes through the incremental ingest path
    (:mod:`repro.incremental.dedup`): each page is resolved against
    ``content_index`` (an in-memory index is created when none is given),
    carried pages skip parse+check, fresh outcomes are staged in store
    order and committed at snapshot boundaries, and
    ``progress_dedup``/``stats.dedup`` expose the live counters.
    """

    def __init__(
        self,
        client: CommonCrawlClient,
        storage: Storage,
        *,
        checker: Checker | None = None,
        max_pages: int = 100,
        measure_mitigations: bool = True,
        fetch_retries: int = 2,
        progress: Callable[[str, int, int], None] | None = None,
        dedup: "DedupConfig | None" = None,
        content_index: "ContentIndex | None" = None,
        progress_dedup: Callable[[str, int, int, "DedupCounters"], None] | None = None,
    ) -> None:
        self.client = client
        self.storage = storage
        self.checker = checker or Checker()
        self.max_pages = max_pages
        self.measure_mitigations = measure_mitigations
        self.fetch_retries = fetch_retries
        self.progress = progress
        self.dedup = dedup
        self.content_index = content_index
        self.progress_dedup = progress_dedup
        #: per-stage seconds for the run manifest; incremental runs only
        self.stage_seconds: dict[str, float] = {}

    def run(
        self,
        domains: list[tuple[str, float]],
        *,
        snapshot_ids: list[str] | None = None,
    ) -> RunStats:
        """Process ``domains`` (name, avg_rank) over the given snapshots."""
        stats = RunStats()
        started = time.monotonic()
        collections = self.client.collections()
        if snapshot_ids is not None:
            collections = [c for c in collections if c.id in snapshot_ids]
        domain_ids = {
            name: self.storage.add_domain(name, rank) for name, rank in domains
        }
        if self.dedup is not None:
            self._run_incremental(collections, domains, domain_ids, stats)
            stats.seconds = time.monotonic() - started
            return stats
        for collection in collections:
            snapshot_row_id = self.storage.add_snapshot(
                collection.id, collection.year
            )
            for index, (name, _rank) in enumerate(domains):
                self._process_domain(
                    collection.id, snapshot_row_id, name, domain_ids[name], stats
                )
                if self.progress is not None:
                    self.progress(collection.id, index + 1, len(domains))
            self.storage.commit()
            stats.snapshots += 1
        stats.seconds = time.monotonic() - started
        return stats

    def _run_incremental(
        self,
        collections: list,
        domains: list[tuple[str, float]],
        domain_ids: dict[str, int],
        stats: RunStats,
    ) -> None:
        """The dedup ingest path, sequentially.

        Identical store order and write batching as the incremental
        parallel path (``store_domain_result``), so sequential and
        parallel incremental runs are bit-identical end to end.
        """
        from ..incremental.content_index import ContentIndex
        from ..incremental.dedup import (
            DedupCounters,
            dedup_meta,
            process_domain_incremental,
        )
        from .parallel import store_domain_result

        index = self.content_index
        if index is None:
            index = ContentIndex(
                ":memory:",
                meta=dedup_meta(measure_mitigations=self.measure_mitigations),
            )
        counters = DedupCounters()
        stats.dedup = counters
        self.stage_seconds = {
            "index": 0.0, "fetch": 0.0, "check": 0.0, "store": 0.0,
        }
        for collection in collections:
            snapshot_row_id = self.storage.add_snapshot(
                collection.id, collection.year
            )
            for position, (name, _rank) in enumerate(domains):
                result = process_domain_incremental(
                    self.client, self.checker, index, self.dedup,
                    collection.id, name, self.max_pages,
                    fetch_retries=self.fetch_retries,
                    measure_mitigations=self.measure_mitigations,
                )
                for stage, seconds in result.timings.items():
                    self.stage_seconds[stage] += seconds
                store_started = time.perf_counter()
                store_domain_result(
                    self.storage, result, snapshot_row_id, domain_ids[name],
                    stats, index=index, counters=counters,
                )
                self.stage_seconds["store"] += (
                    time.perf_counter() - store_started
                )
                stats.pages_fetched += sum(
                    1 for page in result.pages if page.carry_tier != "cdx"
                )
                analyzed = result.analyzed_pages
                stats.per_snapshot[collection.id] = (
                    stats.per_snapshot.get(collection.id, 0) + analyzed
                )
                if self.progress_dedup is not None:
                    self.progress_dedup(
                        collection.id, position + 1, len(domains), counters
                    )
                elif self.progress is not None:
                    self.progress(collection.id, position + 1, len(domains))
            self.storage.commit()
            index.commit_snapshot()
            stats.snapshots += 1

    def _process_domain(
        self,
        snapshot_id: str,
        snapshot_row_id: int,
        domain: str,
        domain_row_id: int,
        stats: RunStats,
    ) -> None:
        metadata = collect_metadata(
            self.client, snapshot_id, domain, max_pages=self.max_pages
        )
        stats.domains_processed += 1
        if not metadata.found:
            self.storage.set_domain_status(
                snapshot_row_id, domain_row_id, found=False, analyzed=False, pages=0
            )
            return
        crawl_stats = CrawlStats()
        analyzed_pages = 0
        for page in fetch_pages(
            self.client, metadata, stats=crawl_stats,
            retries=self.fetch_retries,
        ):
            stats.pages_fetched += 1
            checked = check_page(
                page, self.checker,
                measure_mitigation_signals=self.measure_mitigations,
            )
            page_row_id = self.storage.add_page(
                snapshot_row_id, domain_row_id, page.url,
                utf8=checked.utf8, checked=checked.report is not None,
                declared_encoding=checked.declared_encoding,
            )
            if checked.report is None:
                stats.pages_filtered_non_utf8 += 1
                continue
            analyzed_pages += 1
            stats.pages_checked += 1
            counts = checked.report.counts
            if counts:
                self.storage.add_findings(page_row_id, dict(counts))
            if checked.features is not None and (
                checked.features.uses_math or checked.features.uses_svg
            ):
                self.storage.add_page_features(
                    page_row_id,
                    math_elements=checked.features.math_elements,
                    svg_elements=checked.features.svg_elements,
                )
            if checked.mitigation is not None:
                mitigation = checked.mitigation
                if (
                    mitigation.script_in_attr
                    or mitigation.urls_with_newline
                    or mitigation.urls_with_newline_and_lt
                ):
                    self.storage.add_mitigations(
                        page_row_id,
                        script_in_attr=len(mitigation.script_in_attr),
                        nonced=sum(
                            1
                            for hit in mitigation.script_in_attr
                            if hit.is_nonced_script
                        ),
                        urls_nl=mitigation.urls_with_newline,
                        urls_nl_lt=mitigation.urls_with_newline_and_lt,
                    )
        stats.fetch_failures += crawl_stats.failed
        stats.per_snapshot[snapshot_id] = (
            stats.per_snapshot.get(snapshot_id, 0) + analyzed_pages
        )
        self.storage.set_domain_status(
            snapshot_row_id,
            domain_row_id,
            found=True,
            analyzed=analyzed_pages > 0,
            pages=analyzed_pages,
        )
