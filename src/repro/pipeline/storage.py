"""Results storage: the PostgresDB box of Figure 6, on SQLite.

Schema mirrors what the analyses need: per-snapshot domain status
(found / analyzed / page counts → Table 2), per-page findings (→ Figures
8–10 and 16–21), and per-page mitigation measurements (→ section 4.5).
All aggregation queries used by :mod:`repro.analysis` live here as
methods, so analyses are SQL-backed exactly as in the paper's framework.
"""
from __future__ import annotations

import hashlib
import sqlite3
from collections import Counter
from pathlib import Path
from typing import Iterable

from .migrations import ensure_schema

#: schema generation of ``_SCHEMA`` below.  Generation 1 is the
#: pre-versioning layout (no ``pages.carried_from``); generation 2 added
#: the carry-forward provenance column for the incremental engine.
SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS snapshots (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    year INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS domains (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    avg_rank REAL NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS domain_status (
    snapshot_id INTEGER NOT NULL REFERENCES snapshots(id),
    domain_id INTEGER NOT NULL REFERENCES domains(id),
    found INTEGER NOT NULL,
    analyzed INTEGER NOT NULL,
    pages INTEGER NOT NULL,
    PRIMARY KEY (snapshot_id, domain_id)
);
CREATE TABLE IF NOT EXISTS pages (
    id INTEGER PRIMARY KEY,
    snapshot_id INTEGER NOT NULL REFERENCES snapshots(id),
    domain_id INTEGER NOT NULL REFERENCES domains(id),
    url TEXT NOT NULL,
    utf8 INTEGER NOT NULL,
    checked INTEGER NOT NULL,
    declared_encoding TEXT NOT NULL DEFAULT '',
    -- carry-forward provenance: '' for a freshly checked page, otherwise
    -- "<snapshot> <url>" of the source page whose findings were carried
    -- (prefixed with '~' for a simhash near-duplicate carry)
    carried_from TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS findings (
    id INTEGER PRIMARY KEY,
    page_id INTEGER NOT NULL REFERENCES pages(id),
    violation TEXT NOT NULL,
    count INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS mitigations (
    page_id INTEGER PRIMARY KEY REFERENCES pages(id),
    script_in_attr INTEGER NOT NULL,
    nonced_script_in_attr INTEGER NOT NULL,
    urls_nl INTEGER NOT NULL,
    urls_nl_lt INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS page_features (
    page_id INTEGER PRIMARY KEY REFERENCES pages(id),
    math_elements INTEGER NOT NULL,
    svg_elements INTEGER NOT NULL
);
"""

#: secondary indexes backing the aggregation queries; kept out of
#: ``_SCHEMA`` so the bench can measure the untuned layout
#: (``benchmarks/bench_pipeline_throughput.py`` writes the before/after
#: ``reports/BENCH_pipeline_*.json`` pair)
_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_findings_page ON findings(page_id);
CREATE INDEX IF NOT EXISTS idx_pages_snapshot ON pages(snapshot_id, domain_id);
-- covering index for violation_domain_counts / domains_with_violations_in:
-- both group or filter on violation and only then reach for page_id, so
-- the pair satisfies them without touching the findings table itself
CREATE INDEX IF NOT EXISTS idx_findings_violation_page
    ON findings(violation, page_id);
"""

#: per-generation upgrade steps consumed by
#: :func:`repro.pipeline.migrations.ensure_schema`; key = target version
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    2: (
        "ALTER TABLE pages ADD COLUMN carried_from TEXT NOT NULL DEFAULT ''",
    ),
}

#: every table that feeds an aggregation query, in schema order; the
#: canonical dump below walks exactly these
AGGREGATE_TABLES = (
    "snapshots",
    "domains",
    "domain_status",
    "pages",
    "findings",
    "mitigations",
    "page_features",
)

#: write-path pragmas: WAL keeps readers unblocked during the runner's
#: batched inserts and turns fsync-per-commit into fsync-per-checkpoint;
#: NORMAL is durable through application crashes (the study can always
#: re-run a snapshot, so power-loss durability is the wrong trade);
#: temp_store keeps GROUP BY spill files in memory
_TUNING_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA temp_store=MEMORY",
    "PRAGMA cache_size=-8192",
)


class Storage:
    """SQLite-backed results store with the study's aggregation queries.

    ``tuned=False`` opens the store with SQLite's defaults (rollback
    journal, ``synchronous=FULL``) and without the secondary indexes —
    only the throughput bench uses it, to keep the before/after pair
    honest and reproducible.
    """

    def __init__(self, path: str | Path = ":memory:", *, tuned: bool = True) -> None:
        self.path = str(path)
        self.tuned = tuned
        self.conn = sqlite3.connect(self.path)
        if tuned:
            for pragma in _TUNING_PRAGMAS:
                self.conn.execute(pragma)
        self.schema_version_found = ensure_schema(
            self.conn,
            latest=SCHEMA_VERSION,
            create=_SCHEMA,
            migrations=_MIGRATIONS,
            label="results store",
        )
        if tuned:
            self.conn.executescript(_INDEXES)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "Storage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # --------------------------------------------------------------- writes

    def add_snapshot(self, name: str, year: int) -> int:
        cursor = self.conn.execute(
            "INSERT OR IGNORE INTO snapshots(name, year) VALUES (?, ?)",
            (name, year),
        )
        if cursor.rowcount:
            return cursor.lastrowid
        row = self.conn.execute(
            "SELECT id FROM snapshots WHERE name = ?", (name,)
        ).fetchone()
        return row[0]

    def add_domain(self, name: str, avg_rank: float = 0.0) -> int:
        cursor = self.conn.execute(
            "INSERT OR IGNORE INTO domains(name, avg_rank) VALUES (?, ?)",
            (name, avg_rank),
        )
        if cursor.rowcount:
            return cursor.lastrowid
        row = self.conn.execute(
            "SELECT id FROM domains WHERE name = ?", (name,)
        ).fetchone()
        return row[0]

    def set_domain_status(
        self, snapshot_id: int, domain_id: int, *, found: bool, analyzed: bool,
        pages: int,
    ) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO domain_status(snapshot_id, domain_id, "
            "found, analyzed, pages) VALUES (?, ?, ?, ?, ?)",
            (snapshot_id, domain_id, int(found), int(analyzed), pages),
        )

    def add_page(
        self, snapshot_id: int, domain_id: int, url: str, *, utf8: bool,
        checked: bool, declared_encoding: str = "", carried_from: str = "",
    ) -> int:
        cursor = self.conn.execute(
            "INSERT INTO pages(snapshot_id, domain_id, url, utf8, checked, "
            "declared_encoding, carried_from) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (snapshot_id, domain_id, url, int(utf8), int(checked),
             declared_encoding, carried_from),
        )
        return cursor.lastrowid

    def add_pages(
        self,
        snapshot_id: int,
        domain_id: int,
        rows: list[tuple[str, bool, bool, str, str]],
    ) -> list[int]:
        """Bulk insert ``(url, utf8, checked, declared_encoding,
        carried_from)`` rows, returning their page ids in input order.

        ``cursor.lastrowid`` is undefined after ``executemany``, so the ids
        are recovered from ``last_insert_rowid()``: this connection is the
        study's single writer, ``pages`` rows are never deleted, and SQLite
        assigns ``max(rowid)+1`` per insert — so one statement's batch is a
        contiguous ascending run ending at ``last_insert_rowid()``.  The
        sequential-vs-parallel bit-identity test machine-checks this.
        """
        if not rows:
            return []
        self.conn.executemany(
            "INSERT INTO pages(snapshot_id, domain_id, url, utf8, checked, "
            "declared_encoding, carried_from) VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (snapshot_id, domain_id, url, int(utf8), int(checked),
                 encoding, carried)
                for url, utf8, checked, encoding, carried in rows
            ],
        )
        last = self.conn.execute("SELECT last_insert_rowid()").fetchone()[0]
        return list(range(last - len(rows) + 1, last + 1))

    def add_findings(self, page_id: int, counts: dict[str, int]) -> None:
        self.conn.executemany(
            "INSERT INTO findings(page_id, violation, count) VALUES (?, ?, ?)",
            [(page_id, violation, count) for violation, count in counts.items()],
        )

    def add_findings_rows(self, rows: list[tuple[int, str, int]]) -> None:
        """Bulk insert ``(page_id, violation, count)`` across many pages."""
        self.conn.executemany(
            "INSERT INTO findings(page_id, violation, count) VALUES (?, ?, ?)",
            rows,
        )

    def add_mitigations_rows(
        self, rows: list[tuple[int, int, int, int, int]]
    ) -> None:
        """Bulk variant of :meth:`add_mitigations`; rows are
        ``(page_id, script_in_attr, nonced, urls_nl, urls_nl_lt)``."""
        self.conn.executemany(
            "INSERT OR REPLACE INTO mitigations VALUES (?, ?, ?, ?, ?)", rows
        )

    def add_page_features_rows(self, rows: list[tuple[int, int, int]]) -> None:
        """Bulk variant of :meth:`add_page_features`; rows are
        ``(page_id, math_elements, svg_elements)``."""
        self.conn.executemany(
            "INSERT OR REPLACE INTO page_features VALUES (?, ?, ?)", rows
        )

    def add_mitigations(
        self, page_id: int, *, script_in_attr: int, nonced: int,
        urls_nl: int, urls_nl_lt: int,
    ) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO mitigations VALUES (?, ?, ?, ?, ?)",
            (page_id, script_in_attr, nonced, urls_nl, urls_nl_lt),
        )

    def add_page_features(
        self, page_id: int, *, math_elements: int, svg_elements: int
    ) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO page_features VALUES (?, ?, ?)",
            (page_id, math_elements, svg_elements),
        )

    def commit(self) -> None:
        self.conn.commit()

    # -------------------------------------------------------------- queries

    def snapshots(self) -> list[tuple[int, str, int]]:
        return list(
            self.conn.execute("SELECT id, name, year FROM snapshots ORDER BY year")
        )

    def snapshot_id_by_year(self, year: int) -> int:
        row = self.conn.execute(
            "SELECT id FROM snapshots WHERE year = ?", (year,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no snapshot for year {year}")
        return row[0]

    def dataset_stats(self) -> list[dict]:
        """Table 2 rows: per snapshot, found/analyzed domains + avg pages."""
        rows = self.conn.execute(
            """
            SELECT s.name, s.year,
                   SUM(ds.found) AS found,
                   SUM(ds.analyzed) AS analyzed,
                   AVG(CASE WHEN ds.analyzed THEN ds.pages END) AS avg_pages
            FROM domain_status ds JOIN snapshots s ON s.id = ds.snapshot_id
            GROUP BY s.id ORDER BY s.year
            """
        ).fetchall()
        return [
            {
                "name": name, "year": year, "found": found or 0,
                "analyzed": analyzed or 0, "avg_pages": avg_pages or 0.0,
            }
            for name, year, found, analyzed, avg_pages in rows
        ]

    def total_domains_analyzed(self) -> int:
        """Domains analyzed at least once across all snapshots."""
        row = self.conn.execute(
            "SELECT COUNT(DISTINCT domain_id) FROM domain_status WHERE analyzed"
        ).fetchone()
        return row[0]

    def total_pages_checked(self) -> int:
        row = self.conn.execute(
            "SELECT COUNT(*) FROM pages WHERE checked"
        ).fetchone()
        return row[0]

    def analyzed_domains(self, year: int | None = None) -> int:
        if year is None:
            return self.total_domains_analyzed()
        row = self.conn.execute(
            """
            SELECT COUNT(*) FROM domain_status ds
            JOIN snapshots s ON s.id = ds.snapshot_id
            WHERE ds.analyzed AND s.year = ?
            """,
            (year,),
        ).fetchone()
        return row[0]

    def violation_domain_counts(self, year: int | None = None) -> Counter:
        """Per violation id: number of distinct domains with ≥1 finding.

        ``year=None`` pools all snapshots (the Figure 8 union view);
        a specific year gives one point of Figures 16–21.
        """
        if year is None:
            rows = self.conn.execute(
                """
                SELECT f.violation, COUNT(DISTINCT p.domain_id)
                FROM findings f JOIN pages p ON p.id = f.page_id
                GROUP BY f.violation
                """
            )
        else:
            rows = self.conn.execute(
                """
                SELECT f.violation, COUNT(DISTINCT p.domain_id)
                FROM findings f
                JOIN pages p ON p.id = f.page_id
                JOIN snapshots s ON s.id = p.snapshot_id
                WHERE s.year = ?
                GROUP BY f.violation
                """,
                (year,),
            )
        return Counter(dict(rows))

    def domains_with_any_violation(self, year: int | None = None) -> int:
        """Figure 9 numerator (or the 92% all-time figure for year=None)."""
        if year is None:
            row = self.conn.execute(
                """
                SELECT COUNT(DISTINCT p.domain_id)
                FROM findings f JOIN pages p ON p.id = f.page_id
                """
            ).fetchone()
        else:
            row = self.conn.execute(
                """
                SELECT COUNT(DISTINCT p.domain_id)
                FROM findings f
                JOIN pages p ON p.id = f.page_id
                JOIN snapshots s ON s.id = p.snapshot_id
                WHERE s.year = ?
                """,
                (year,),
            ).fetchone()
        return row[0]

    def domains_with_violations_in(
        self, violation_ids: Iterable[str], year: int
    ) -> int:
        """Domains with ≥1 finding among ``violation_ids`` in ``year``."""
        ids = tuple(violation_ids)
        if not ids:
            return 0
        placeholders = ",".join("?" for _ in ids)
        row = self.conn.execute(
            f"""
            SELECT COUNT(DISTINCT p.domain_id)
            FROM findings f
            JOIN pages p ON p.id = f.page_id
            JOIN snapshots s ON s.id = p.snapshot_id
            WHERE s.year = ? AND f.violation IN ({placeholders})
            """,
            (year, *ids),
        ).fetchone()
        return row[0]

    def domain_violation_sets(self, year: int) -> dict[int, set[str]]:
        """domain_id → set of violation ids (section 4.4 classification)."""
        rows = self.conn.execute(
            """
            SELECT p.domain_id, f.violation
            FROM findings f
            JOIN pages p ON p.id = f.page_id
            JOIN snapshots s ON s.id = p.snapshot_id
            WHERE s.year = ?
            """,
            (year,),
        )
        result: dict[int, set[str]] = {}
        for domain_id, violation in rows:
            result.setdefault(domain_id, set()).add(violation)
        return result

    def mitigation_domain_counts(self, year: int) -> dict[str, int]:
        """Section 4.5 aggregates: distinct domains per mitigation signal."""
        row = self.conn.execute(
            """
            SELECT
                COUNT(DISTINCT CASE WHEN m.script_in_attr > 0
                      THEN p.domain_id END),
                COUNT(DISTINCT CASE WHEN m.nonced_script_in_attr > 0
                      THEN p.domain_id END),
                COUNT(DISTINCT CASE WHEN m.urls_nl > 0 THEN p.domain_id END),
                COUNT(DISTINCT CASE WHEN m.urls_nl_lt > 0
                      THEN p.domain_id END)
            FROM mitigations m
            JOIN pages p ON p.id = m.page_id
            JOIN snapshots s ON s.id = p.snapshot_id
            WHERE s.year = ?
            """,
            (year,),
        ).fetchone()
        return {
            "script_in_attr": row[0],
            "nonced_script_in_attr": row[1],
            "nl_in_url": row[2],
            "nl_lt_in_url": row[3],
        }

    def element_usage_counts(self, year: int) -> dict[str, int]:
        """Domains using math / svg elements in ``year`` (section 4.2)."""
        row = self.conn.execute(
            """
            SELECT
                COUNT(DISTINCT CASE WHEN f.math_elements > 0
                      THEN p.domain_id END),
                COUNT(DISTINCT CASE WHEN f.svg_elements > 0
                      THEN p.domain_id END)
            FROM page_features f
            JOIN pages p ON p.id = f.page_id
            JOIN snapshots s ON s.id = p.snapshot_id
            WHERE s.year = ?
            """,
            (year,),
        ).fetchone()
        return {"math": row[0], "svg": row[1]}

    def utf8_filter_stats(self) -> tuple[int, int]:
        """(utf8 pages, non-utf8 pages) — the section 4.1 encoding filter."""
        row = self.conn.execute(
            "SELECT SUM(utf8), SUM(1 - utf8) FROM pages"
        ).fetchone()
        return (row[0] or 0, row[1] or 0)

    def declared_encoding_distribution(self) -> dict[str, int]:
        """Pages per declared encoding (section 4.1: '>90% of webpages are
        UTF-8 encoded, and the rest is distributed over more than 45
        encodings')."""
        rows = self.conn.execute(
            "SELECT declared_encoding, COUNT(*) FROM pages "
            "GROUP BY declared_encoding ORDER BY COUNT(*) DESC"
        )
        return {encoding or "(undeclared)": count for encoding, count in rows}

    # ---------------------------------------------------- canonical dumps

    def aggregate_dump(self, *, include_provenance: bool = True) -> str:
        """Canonical text dump of every aggregate table, in rowid order.

        This is the bit-parity currency of the equivalence suites:
        two stores whose dumps are byte-equal answer every aggregation
        query above identically.  Values are rendered with SQLite's own
        ``quote()`` so the text is exact (no float reformatting).

        ``include_provenance=False`` drops the ``pages.carried_from``
        column, which is the one column where an incremental run
        *legitimately* differs from the full reference path — everything
        the analyses read must still match byte for byte.  (A custom
        dump rather than ``iterdump`` because the ``filter=`` parameter
        landed after this interpreter's sqlite3.)
        """
        lines: list[str] = []
        for table in AGGREGATE_TABLES:
            columns = [
                row[1]
                for row in self.conn.execute(f"PRAGMA table_info({table})")
            ]
            if table == "pages" and not include_provenance:
                columns = [c for c in columns if c != "carried_from"]
            selected = ", ".join(f"quote({column})" for column in columns)
            lines.append(f"-- {table}({', '.join(columns)})")
            for row in self.conn.execute(
                f"SELECT {selected} FROM {table} ORDER BY rowid"
            ):
                lines.append(f"INSERT INTO {table} VALUES({','.join(row)});")
        return "\n".join(lines) + "\n"

    def aggregate_sha256(self, *, include_provenance: bool = True) -> str:
        """sha256 hex digest of :meth:`aggregate_dump` (manifest currency)."""
        dump = self.aggregate_dump(include_provenance=include_provenance)
        return hashlib.sha256(dump.encode("utf-8")).hexdigest()
