"""The automatic repair process from section 4.4 of the paper.

The paper estimates that 46% of violating websites could be fixed with a
"simple automated process":

* **FB1 / FB2** — "serializing the entire document with the current HTML
  parser and deserializing it again.  The syntax would be fixed, but the
  semantics would still be broken."  We implement this as a *span-precise*
  re-serialization: only the start tags that actually triggered the error
  are rewritten (from their parsed attribute lists), leaving every other
  byte of the document untouched — so non-fixable violations elsewhere on
  the page remain observable.
* **DM3** — "all duplicates that appear after the first occurrence can
  automatically be removed since the existing parser currently ignores
  the other attributes anyway."  Dropping duplicates falls out of the same
  tag rewrite.
* **DM1 / DM2** — "could also be automatically removed relatively simply"
  by moving the elements into the head; the paper "[has] not seen a single
  example ... that would break by automatically moving the elements".

HF and DE violations require developer judgment (rearranging sections,
deciding where a form should submit) and are deliberately *not* repaired.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..html import parse
from ..html.tokens import Character, Comment, Doctype, StartTag
from .checker import Checker, CheckReport
from .violations import AUTO_FIXABLE_IDS, Finding

_VOID = frozenset(
    {"area", "base", "basefont", "bgsound", "br", "col", "embed", "frame",
     "hr", "img", "input", "keygen", "link", "meta", "param", "source",
     "track", "wbr"}
)


@dataclass(slots=True)
class AutofixResult:
    """Outcome of one repair pass."""

    original: str
    fixed: str
    #: findings that the pass repaired
    repaired: list[Finding] = field(default_factory=list)
    #: findings that require manual work (HF/DE), plus auto-fixable
    #: findings whose offending tag no longer exists in the source (e.g.
    #: a start tag truncated by EOF) and therefore cannot be rewritten
    remaining: list[Finding] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.fixed != self.original


def classify(report: CheckReport) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (auto-fixable, manual-only)."""
    fixable = [f for f in report.findings if f.violation in AUTO_FIXABLE_IDS]
    manual = [f for f in report.findings if f.violation not in AUTO_FIXABLE_IDS]
    return fixable, manual


def _escape_attr(value: str) -> str:
    return value.replace("&", "&amp;").replace('"', "&quot;")


def _render_tag(tag: StartTag) -> str:
    parts = [f"<{tag.name}"]
    for attribute in tag.visible_attributes():
        if attribute.value == "":
            parts.append(f" {attribute.name}")
        else:
            parts.append(f' {attribute.name}="{_escape_attr(attribute.value)}"')
    if tag.self_closing:
        parts.append("/")
    parts.append(">")
    return "".join(parts)


def autofix(html: str, *, checker: Checker | None = None) -> AutofixResult:
    """Repair all auto-fixable violations in ``html``.

    Returns the repaired source together with which findings were fixed and
    which remain.  The repaired output is guaranteed (and tested) to parse
    to the same rendering-relevant DOM as the original.
    """
    checker = checker or Checker()
    result = parse(html)
    report = checker.check_parse(result)
    fixable, manual = classify(report)
    if not fixable:
        return AutofixResult(original=html, fixed=html, remaining=manual)

    source = result.source
    edits: list[tuple[int, int, str]] = []  # (start, end, replacement)
    #: source spans whose tag an edit rewrote, moved, or dropped; a
    #: fixable finding counts as repaired only when its offset falls in
    #: one of these — claiming repairs that were never applied would make
    #: ``autofix`` diverge instead of reaching a fix-point
    edited_spans: list[tuple[int, int]] = []

    fixable_ids = {finding.violation for finding in fixable}

    # --- DM1 / DM2: move meta/base into the head --------------------------
    moves = _collect_head_moves(result, fixable)
    moved_offsets = {start for start, _end, _markup, _drop in moves}

    # --- FB1 / FB2 / DM3: rewrite the offending start tags in place -------
    # A tag that is also being moved is skipped here: the move re-renders
    # it through the same _render_tag, and emitting both edits would
    # duplicate the element.
    if fixable_ids & {"FB1", "FB2", "DM3"}:
        bad_offsets = _tag_offsets_with_attr_problems(result) - moved_offsets
        for token in result.tokens:
            if isinstance(token, StartTag) and token.offset in bad_offsets:
                if token.end > token.offset:
                    edits.append((token.offset, token.end, _render_tag(token)))
                    edited_spans.append((token.offset, token.end))

    if moves:
        insert_at = _head_insertion_point(result)
        moved_markup: list[str] = []
        for start, end, markup, drop in moves:
            edits.append((start, end, ""))
            edited_spans.append((start, end))
            if not drop:
                moved_markup.append(markup)
        if moved_markup:
            edits.append((insert_at, insert_at, "".join(moved_markup)))

    repaired: list[Finding] = []
    unapplied: list[Finding] = []
    for finding in fixable:
        if any(start <= finding.offset < end for start, end in edited_spans):
            repaired.append(finding)
        else:
            unapplied.append(finding)

    fixed = _apply_edits(source, edits)
    return AutofixResult(
        original=html, fixed=fixed, repaired=repaired,
        remaining=manual + unapplied,
    )


def _tag_offsets_with_attr_problems(result) -> set[int]:
    """Offsets of start tags with FB1/FB2/DM3-shaped attribute problems."""
    offsets = set()
    for token in result.tokens:
        if not isinstance(token, StartTag):
            continue
        for attribute in token.attributes:
            if (
                attribute.duplicate
                or attribute.preceded_by_solidus
                or attribute.missing_preceding_space
            ):
                offsets.add(token.offset)
                break
    return offsets


def _collect_head_moves(result, fixable: list[Finding]):
    """(start, end, markup, drop) spans for every misplaced meta/base.

    ``drop`` is True for surplus base elements (DM2_2: only the first may
    survive).  DM2_3 moves the late base to the front of the head, which
    also puts it before every URL-using element.
    """
    wanted = {f.violation for f in fixable} & {"DM1", "DM2_1", "DM2_2", "DM2_3"}
    if not wanted:
        return []
    moves = []
    base_seen = 0
    finding_offsets = {
        f.offset for f in fixable if f.violation in ("DM1", "DM2_1", "DM2_3")
    }
    surplus_base_offsets = {f.offset for f in fixable if f.violation == "DM2_2"}
    for token in result.tokens:
        if not isinstance(token, StartTag) or token.name not in ("meta", "base"):
            continue
        if token.end <= token.offset:
            continue
        if token.name == "base":
            base_seen += 1
        if token.offset in surplus_base_offsets:
            moves.append((token.offset, token.end, "", True))
        elif token.offset in finding_offsets:
            moves.append(
                (token.offset, token.end, _render_tag(token), False)
            )
    return moves


def _head_insertion_point(result) -> int:
    """Where repaired head elements should be re-inserted.

    Derived from the parse, not a text search — a literal ``<head`` can
    occur inside an attribute or comment where inserting would corrupt
    the document.  Right after the explicit ``<head...>`` start tag when
    present (which also satisfies DM2_3's before-any-URL requirement),
    otherwise after ``<html...>``, otherwise the top of the document —
    but past any doctype, since markup inserted before the doctype would
    demote the reparsed document to quirks mode.
    """
    document = result.document
    offsets = [
        element.source_offset
        for element in (document.head, document.document_element)
        if element is not None and not element.implied
    ]
    for offset in offsets:
        for token in result.tokens:
            if (
                isinstance(token, StartTag)
                and token.offset == offset
                and token.end > token.offset
            ):
                return token.end
    # No explicit head/html: insert at the top of the document, but past
    # a *leading* doctype — markup before it would demote the reparse to
    # quirks mode.  A doctype that appeared after content was ignored by
    # the parser (document.doctype stays unset) and must not move the
    # insertion point; nor can a token offset be used here, since
    # character tokens are batched and an offset inside a batch could
    # split an entity reference.
    if document.doctype is not None:
        for token in result.tokens:
            if isinstance(token, Doctype):
                close = result.source.find(">", token.offset)
                if close != -1:
                    return close + 1
                break
            if isinstance(token, Comment):
                continue
            if isinstance(token, Character) and not token.data.strip():
                continue
            break
    return 0


def _apply_edits(source: str, edits: list[tuple[int, int, str]]) -> str:
    """Apply non-overlapping (start, end, replacement) edits."""
    if not edits:
        return source
    edits.sort(key=lambda edit: (edit[0], edit[1]))
    parts: list[str] = []
    cursor = 0
    for start, end, replacement in edits:
        if start < cursor:
            # Overlapping edit (same tag flagged twice) — skip the later one.
            continue
        parts.append(source[cursor:start])
        parts.append(replacement)
        cursor = end
    parts.append(source[cursor:])
    return "".join(parts)


def estimate_fixability(report: CheckReport) -> bool:
    """True when every violation on the page is auto-fixable (section 4.4:
    such pages leave the 'violating' set after the automated repair)."""
    return bool(report.findings) and all(
        finding.violation in AUTO_FIXABLE_IDS for finding in report.findings
    )
