"""`repro.core` — the paper's primary contribution.

The security-relevant violation taxonomy (Table 1), one rule per
sub-check, the checker that runs them at scale, the section 4.4 automatic
repair, the section 4.5 mitigation detectors, and the section 5.3
STRICT-PARSER hardening roadmap.
"""
from .autofix import AutofixResult, autofix, classify, estimate_fixability
from .checker import Checker, CheckReport, DecodeFailure
from .mitigations import (
    MitigationReport,
    ScriptInAttrHit,
    measure_mitigations,
    measure_mitigations_html,
)
from .rules import (
    Footprint,
    FusedCheckEngine,
    RULE_CLASSES,
    Rule,
    RuleExecutionError,
    default_rules,
)
from .features import PageFeatures, measure_features, measure_features_html
from .strictparse import (
    INITIAL_ENFORCED,
    MonitorCollector,
    MonitorNotification,
    RolloutPlan,
    RolloutStage,
    StrictHeaderError,
    StrictMode,
    StrictParseOutcome,
    StrictParserPolicy,
    deprecation_warning,
    parse_strict_header,
    parse_with_policy,
    render_error_page,
    simulate_rollout,
)
from .violations import (
    ALL_IDS,
    AUTO_FIXABLE_IDS,
    FAMILIES,
    IDS_BY_GROUP,
    REGISTRY,
    Category,
    Finding,
    Group,
    UnknownRuleIdError,
    ViolationType,
    family_of,
    group_of,
)

__all__ = [
    "ALL_IDS",
    "AUTO_FIXABLE_IDS",
    "AutofixResult",
    "Category",
    "CheckReport",
    "Checker",
    "DecodeFailure",
    "FAMILIES",
    "Finding",
    "Footprint",
    "FusedCheckEngine",
    "Group",
    "IDS_BY_GROUP",
    "INITIAL_ENFORCED",
    "MitigationReport",
    "MonitorCollector",
    "MonitorNotification",
    "PageFeatures",
    "REGISTRY",
    "RolloutPlan",
    "RolloutStage",
    "RULE_CLASSES",
    "Rule",
    "RuleExecutionError",
    "ScriptInAttrHit",
    "StrictHeaderError",
    "StrictMode",
    "StrictParseOutcome",
    "StrictParserPolicy",
    "UnknownRuleIdError",
    "ViolationType",
    "autofix",
    "classify",
    "default_rules",
    "deprecation_warning",
    "estimate_fixability",
    "family_of",
    "group_of",
    "measure_features",
    "measure_features_html",
    "measure_mitigations",
    "measure_mitigations_html",
    "parse_strict_header",
    "parse_with_policy",
    "render_error_page",
    "simulate_rollout",
]
