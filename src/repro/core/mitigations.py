"""Detectors for the deployed mitigations analysed in section 4.5.

Two Chromium-side mitigations are evaluated by the paper:

1. *Nonce stealing*: if a ``script`` element carries a CSP nonce and any
   attribute contains the string ``<script``, the element is treated as
   nonce-less (w3c/webappsec-csp#98).  The detector reports every element
   with ``<script`` in an attribute and whether it is actually a nonced
   script (the paper found none are).
2. *Dangling markup*: URLs containing both ``\\n`` and ``<`` are blocked
   since Chromium 2017 (Mike West's intent-to-remove).  The detector
   reports URLs with a newline, and the subset that also contains ``<``.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..html import ParseResult, parse
from .rules import URL_ATTRIBUTES, iter_start_tag_attrs


@dataclass(frozen=True, slots=True)
class ScriptInAttrHit:
    """An element with '<script' inside an attribute value."""

    element: str
    attribute: str
    #: True when the element is a <script> tag carrying a nonce attribute —
    #: the only case the Chromium mitigation would actually neutralize.
    is_nonced_script: bool


@dataclass(slots=True)
class MitigationReport:
    """Per-document mitigation measurements."""

    script_in_attr: list[ScriptInAttrHit] = field(default_factory=list)
    urls_with_newline: int = 0
    urls_with_newline_and_lt: int = 0

    @property
    def affected_by_nonce_mitigation(self) -> bool:
        return any(hit.is_nonced_script for hit in self.script_in_attr)

    @property
    def conflicts_with_url_mitigation(self) -> bool:
        return self.urls_with_newline_and_lt > 0


class MitigationCollector:
    """Attribute-sweep observer form of :func:`measure_mitigations`.

    The fused check engine already iterates every start tag's attributes
    once; passing an instance of this as its ``attr_observer`` fills the
    same :class:`MitigationReport` from that one sweep instead of paying
    for a second full token iteration.  Visit order is identical to
    :func:`~repro.core.rules.base.iter_start_tag_attrs`, so the report is
    bit-identical to the standalone measurement.
    """

    __slots__ = ("report",)

    def __init__(self) -> None:
        self.report = MitigationReport()

    def __call__(self, tag, name: str, value: str) -> None:
        report = self.report
        if "<script" in value.lower():
            report.script_in_attr.append(
                ScriptInAttrHit(
                    element=tag.name,
                    attribute=name,
                    is_nonced_script=(
                        tag.name == "script" and tag.has_attr("nonce")
                    ),
                )
            )
        if name in URL_ATTRIBUTES and "\n" in value:
            report.urls_with_newline += 1
            if "<" in value:
                report.urls_with_newline_and_lt += 1


def measure_mitigations(result: ParseResult) -> MitigationReport:
    """Measure both mitigation footprints on one parsed document."""
    collector = MitigationCollector()
    for tag, name, value in iter_start_tag_attrs(result):
        collector(tag, name, value)
    return collector.report


def measure_mitigations_html(text: str) -> MitigationReport:
    return measure_mitigations(parse(text))
