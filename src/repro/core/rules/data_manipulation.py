"""Data Manipulation rules: DM1, DM2_1/2/3, DM3 (section 3.2 of the paper)."""
from __future__ import annotations

from ...html import ErrorCode, ParseResult
from ...html.dom import Element
from ..violations import Finding
from .base import URL_ATTRIBUTES, Rule, snippet
from .fused import Footprint


def _inside_head(element: Element) -> bool:
    return any(
        isinstance(ancestor, Element) and ancestor.name == "head"
        for ancestor in element.ancestors()
    )


class MetaOutsideHead(Rule):
    """DM1 — ``meta http-equiv`` outside the head section.

    The content model (HTML 4.2.5) restricts http-equiv metas to head, but
    the parsing algorithm honours them anywhere — redirects, cookies and
    CSP included.
    """

    id = "DM1"
    footprint = Footprint(tags=("meta",), regions=("head",))

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        for element in result.document.iter_elements():
            if (
                element.name == "meta"
                and element.is_html()
                and "http-equiv" in element.attributes
                and not _inside_head(element)
            ):
                findings.append(
                    self.finding(
                        element.source_offset,
                        f"meta http-equiv={element.get('http-equiv')!r} "
                        "outside head",
                        snippet(result.source, element.source_offset),
                    )
                )
        return findings

    def fused_element(self, element, in_head, source, state, out) -> None:
        if (
            element.is_html()
            and "http-equiv" in element.attributes
            and not in_head
        ):
            out.append(
                self.finding(
                    element.source_offset,
                    f"meta http-equiv={element.get('http-equiv')!r} "
                    "outside head",
                    snippet(source, element.source_offset),
                )
            )


def _base_elements(result: ParseResult) -> list[Element]:
    return [
        element
        for element in result.document.iter_elements()
        if element.name == "base" and element.is_html()
    ]


class BaseOutsideHead(Rule):
    """DM2_1 — a ``base`` element outside the head section (HTML 4.2.3
    restricts base to head; the parser honours it anywhere)."""

    id = "DM2_1"
    footprint = Footprint(tags=("base",), regions=("head",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                element.source_offset,
                "base element outside head",
                snippet(result.source, element.source_offset),
            )
            for element in _base_elements(result)
            if not _inside_head(element)
        ]

    def fused_element(self, element, in_head, source, state, out) -> None:
        if element.is_html() and not in_head:
            out.append(
                self.finding(
                    element.source_offset,
                    "base element outside head",
                    snippet(source, element.source_offset),
                )
            )


class MultipleBase(Rule):
    """DM2_2 — more than one ``base`` element in the document (HTML
    4.2.3 allows exactly one)."""

    id = "DM2_2"
    footprint = Footprint(tags=("base",))

    def check(self, result: ParseResult) -> list[Finding]:
        bases = _base_elements(result)
        return [
            self.finding(
                element.source_offset,
                f"base element #{index + 2} (only one allowed)",
                snippet(result.source, element.source_offset),
            )
            for index, element in enumerate(bases[1:])
        ]

    def fused_element(self, element, in_head, source, state, out) -> None:
        if not element.is_html():
            return
        count = state.get("bases", 0) + 1
        state["bases"] = count
        if count >= 2:
            out.append(
                self.finding(
                    element.source_offset,
                    f"base element #{count} (only one allowed)",
                    snippet(source, element.source_offset),
                )
            )


class BaseAfterUrlUse(Rule):
    """DM2_3 — ``base`` appearing after an element that uses a URL.

    The spec (HTML 4.2.3) requires base to precede every URL-bearing
    element; a late base silently rebases nothing or (worse) only part
    of the document.
    """

    id = "DM2_3"
    footprint = Footprint(tags=("*",))

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        url_seen = False
        for element in result.document.iter_elements():
            if element.name == "base" and element.is_html():
                if url_seen:
                    findings.append(
                        self.finding(
                            element.source_offset,
                            "base element after a URL-using element",
                            snippet(result.source, element.source_offset),
                        )
                    )
                continue
            if any(name in URL_ATTRIBUTES for name in element.attributes):
                url_seen = True
        return findings

    def fused_element(self, element, in_head, source, state, out) -> None:
        if element.name == "base" and element.is_html():
            if state.get("url_seen"):
                out.append(
                    self.finding(
                        element.source_offset,
                        "base element after a URL-using element",
                        snippet(source, element.source_offset),
                    )
                )
            return
        if not state.get("url_seen") and any(
            name in URL_ATTRIBUTES for name in element.attributes
        ):
            state["url_seen"] = True


class DuplicateAttributes(Rule):
    """DM3 — the same attribute name twice on one tag.

    Detected via the ``duplicate-attribute`` tokenizer error; the parser
    keeps the first occurrence and drops the rest (HTML 13.2.5.33).
    """

    id = "DM3"
    footprint = Footprint(errors=("DUPLICATE_ATTRIBUTE",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                error.offset,
                f"duplicate attribute {error.detail!r} ignored",
                snippet(result.source, error.offset),
            )
            for error in result.errors_of(ErrorCode.DUPLICATE_ATTRIBUTE)
        ]

    def fused_error(self, error, source, out) -> None:
        out.append(
            self.finding(
                error.offset,
                f"duplicate attribute {error.detail!r} ignored",
                snippet(source, error.offset),
            )
        )
