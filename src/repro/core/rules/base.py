"""Rule infrastructure shared by all violation checks.

A rule is a callable object taking a :class:`~repro.html.ParseResult` and
returning findings.  The paper runs its rules "independently of each
other"; we preserve that independence (each rule reads only the parse
result) while sharing the single parse, which is behaviour-equivalent and
~20x cheaper than re-parsing per rule.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from ...html import ParseResult, StartTag
from ..violations import REGISTRY, Finding, UnknownRuleIdError

#: Attributes whose values are URLs (used by DE3_1 and the section 4.5
#: mitigation detectors).  Matches the attributes browsers actually load.
URL_ATTRIBUTES = frozenset(
    {
        "href", "src", "action", "formaction", "poster", "data", "cite",
        "background", "longdesc", "usemap", "srcset", "ping", "manifest",
        "xlink:href",
    }
)


class Rule(ABC):
    """One violation check."""

    #: registry id; must exist in :data:`repro.core.violations.REGISTRY`
    id: str = ""

    def __init__(self) -> None:
        if self.id not in REGISTRY:
            raise UnknownRuleIdError(self.id)

    @abstractmethod
    def check(self, result: ParseResult) -> list[Finding]:
        """Return all findings for this rule on one parsed document."""

    def finding(self, offset: int, message: str = "", evidence: str = "") -> Finding:
        return Finding(
            violation=self.id, offset=offset, message=message, evidence=evidence
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id}>"


def iter_start_tag_attrs(result: ParseResult) -> Iterator[tuple[StartTag, str, str]]:
    """Yield ``(tag, attr_name, attr_value)`` for every start-tag attribute.

    Includes duplicate attributes (the parser drops them from the DOM but
    their values were still tokenized and are still attacker-relevant).
    """
    for token in result.tokens:
        if isinstance(token, StartTag):
            for attribute in token.attributes:
                yield token, attribute.name, attribute.value


def snippet(source: str, offset: int, width: int = 60) -> str:
    """A short source excerpt around ``offset`` for finding evidence."""
    if offset < 0 or not source:
        return ""
    start = max(0, offset - 10)
    return source[start : start + width].replace("\n", "\\n")
