"""Data Exfiltration rules: DE1, DE2, DE3_1/2/3, DE4 (section 3.2)."""
from __future__ import annotations

from ...html import ParseResult
from ..violations import Finding
from .base import URL_ATTRIBUTES, Rule, iter_start_tag_attrs, snippet
from .fused import Footprint


class NonTerminatedTextarea(Rule):
    """DE1 — a ``textarea`` still open at end of file.

    The element requires an end tag (HTML 4.10.11), but the parser closes
    it at EOF (13.2.5.2), so everything after an injected ``<textarea>``
    is swallowed into the form value (Figure 3 of the paper).
    """

    id = "DE1"
    footprint = Footprint(events=("rcdata-closed-at-eof",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                "textarea element closed by EOF",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("rcdata-closed-at-eof")
            if event.tag == "textarea"
        ]

    def fused_event(self, event, source, out) -> None:
        if event.tag == "textarea":
            out.append(
                self.finding(
                    event.offset,
                    "textarea element closed by EOF",
                    snippet(source, event.offset),
                )
            )


class NonTerminatedSelect(Rule):
    """DE2 — ``select``/``option`` still open at end of file.

    Leaks following content as plain text (tags inside select are
    stripped, their text kept — HTML 4.10.7).
    """

    id = "DE2"
    footprint = Footprint(events=("element-open-at-eof",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                f"{event.tag} element closed by EOF",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("element-open-at-eof")
            if event.tag in ("select", "option")
        ]

    def fused_event(self, event, source, out) -> None:
        if event.tag in ("select", "option"):
            out.append(
                self.finding(
                    event.offset,
                    f"{event.tag} element closed by EOF",
                    snippet(source, event.offset),
                )
            )


class DanglingMarkupUrl(Rule):
    """DE3_1 — a URL attribute containing both a newline and ``<``.

    The shape of a classic dangling-markup exfiltration URL (an
    unterminated attribute per HTML 13.2.5 tokenization); Chromium
    blocks loading such URLs since 2017 (section 4.5 of the paper).
    """

    id = "DE3_1"
    footprint = Footprint(token_attrs=tuple(sorted(URL_ATTRIBUTES)))

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        for tag, name, value in iter_start_tag_attrs(result):
            if name in URL_ATTRIBUTES and "\n" in value and "<" in value:
                findings.append(
                    self.finding(
                        tag.offset,
                        f"URL attribute {name!r} on <{tag.name}> contains "
                        "newline and '<'",
                        snippet(result.source, tag.offset),
                    )
                )
        return findings

    def fused_attr(self, tag, name, value, source, out) -> None:
        if "\n" in value and "<" in value:
            out.append(
                self.finding(
                    tag.offset,
                    f"URL attribute {name!r} on <{tag.name}> contains "
                    "newline and '<'",
                    snippet(source, tag.offset),
                )
            )


class ScriptInAttribute(Rule):
    """DE3_2 — the string ``<script`` inside an attribute value.

    Indicates a non-terminated attribute (HTML 13.2.5 tokenization)
    absorbed a following script element (the CSP nonce-stealing shape,
    Figure 2 of the paper).
    """

    id = "DE3_2"
    footprint = Footprint(token_attrs=("*",))

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        for tag, name, value in iter_start_tag_attrs(result):
            if "<script" in value.lower():
                findings.append(
                    self.finding(
                        tag.offset,
                        f"attribute {name!r} on <{tag.name}> contains "
                        "'<script'",
                        snippet(result.source, tag.offset),
                    )
                )
        return findings

    def fused_attr(self, tag, name, value, source, out) -> None:
        if "<" in value and "<script" in value.lower():
            out.append(
                self.finding(
                    tag.offset,
                    f"attribute {name!r} on <{tag.name}> contains "
                    "'<script'",
                    snippet(source, tag.offset),
                )
            )


class NewlineInTarget(Rule):
    """DE3_3 — a ``target`` attribute containing a newline.

    The window-name exfiltration shape (Figure 5 of the paper): an
    unterminated target attribute (HTML 13.2.5 tokenization) absorbs
    following markup, and window names survive cross-origin navigation.
    """

    id = "DE3_3"
    footprint = Footprint(token_attrs=("target",))

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        for tag, name, value in iter_start_tag_attrs(result):
            if name == "target" and "\n" in value:
                findings.append(
                    self.finding(
                        tag.offset,
                        f"target attribute on <{tag.name}> contains a newline",
                        snippet(result.source, tag.offset),
                    )
                )
        return findings

    def fused_attr(self, tag, name, value, source, out) -> None:
        if "\n" in value:
            out.append(
                self.finding(
                    tag.offset,
                    f"target attribute on <{tag.name}> contains a newline",
                    snippet(source, tag.offset),
                )
            )


class NestedForm(Rule):
    """DE4 — a ``form`` inside a ``form``; the parser drops the inner one
    (HTML 13.2.6.4.7), so an injected outer form owns all inner fields.
    """

    id = "DE4"
    footprint = Footprint(events=("nested-form-ignored",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                "nested form element ignored by the parser",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("nested-form-ignored")
        ]

    def fused_event(self, event, source, out) -> None:
        out.append(
            self.finding(
                event.offset,
                "nested form element ignored by the parser",
                snippet(source, event.offset),
            )
        )
