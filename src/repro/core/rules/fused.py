"""The fused single-pass check engine: registry + footprints -> one walk.

The per-rule reference path in :class:`repro.core.checker.Checker` runs 20
independent traversals over the same :class:`~repro.html.ParseResult` —
every rule re-reads the event list, the error list, the token stream or
the DOM on its own.  This module compiles the rule set into dispatch
tables keyed by the *data* each rule consumes, so one streaming pass over
each shared source feeds every subscribed rule:

* ``events``  — one scan of ``result.events``  keyed by ``TreeEvent.kind``;
* ``errors``  — one scan of ``result.errors``  keyed by ``ParseError.code``;
* ``token attributes`` — one scan of ``result.tokens`` dispatching each
  start-tag attribute by name (with a ``"*"`` wildcard bucket);
* ``tree``    — one document-order DOM walk keyed by element tag (with a
  ``"*"`` wildcard bucket), tracking the head region so rules never
  re-scan ancestor chains.

Each rule *declares* what it reads as a :class:`Footprint` class attribute
and implements streaming ``fused_*`` handlers; the ``footprint``
staticcheck pass proves the declaration against the AST of the rule's
``check`` body, so a rule edit can never silently fall out of the fused
walk.  Equivalence with the retained per-rule reference implementation is
machine-checked the same way the chunked tokenizer is pinned to
``reference_tokenizer.py``: the ``fused_parity`` fuzz oracle and the
corpus/template replay suite assert bit-identical findings.

Ordering contract: findings are accumulated into one bucket per rule and
concatenated in rule order, which reproduces the reference rule-major
ordering exactly — each rule's own findings follow its source's document
order, which is also what ``Rule.check`` produces.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ...html import ParseResult
from ...html.dom import Element
from ...html.tokens import StartTag
from ..violations import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .base import Rule

#: wildcard subscription key for token-attribute and tree dispatch
WILDCARD = "*"


@dataclass(frozen=True, slots=True)
class Footprint:
    """Everything one rule reads from a :class:`ParseResult`.

    The declaration is the contract between a rule and the fused engine:
    the engine only feeds a rule the facts its footprint names, and the
    ``footprint`` staticcheck pass verifies the declaration against the
    rule's reference ``check`` body.

    * ``events`` — :class:`~repro.html.treebuilder.TreeEvent` kinds read;
    * ``errors`` — :class:`~repro.html.ErrorCode` member *names* read;
    * ``token_attrs`` — start-tag attribute names read from the token
      stream (``"*"`` = every attribute);
    * ``tags`` — element names read from the DOM walk (``"*"`` = every
      element);
    * ``regions`` — tree regions consulted per element (``"head"``).
    """

    events: tuple[str, ...] = ()
    errors: tuple[str, ...] = ()
    token_attrs: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    regions: tuple[str, ...] = ()

    def sources(self) -> tuple[str, ...]:
        """Which of the four shared scans this footprint subscribes to."""
        names = []
        if self.events:
            names.append("events")
        if self.errors:
            names.append("errors")
        if self.token_attrs:
            names.append("tokens")
        if self.tags:
            names.append("tree")
        return tuple(names)


class FusedCompileError(ValueError):
    """A rule declares a footprint the engine cannot compile."""


class RuleExecutionError(RuntimeError):
    """A rule handler raised mid-walk; names the offending rule.

    Both engines wrap rule failures in this, so the pipeline can report
    *which* rule broke on a page instead of aborting the page silently.
    """

    def __init__(self, rule_id: str, cause: BaseException) -> None:
        super().__init__(f"rule {rule_id} failed: {cause!r}")
        self.rule_id = rule_id
        self.cause = cause


#: footprint field -> handler method the rule class must implement
_HANDLERS = {
    "events": "fused_event",
    "errors": "fused_error",
    "token_attrs": "fused_attr",
    "tags": "fused_element",
}


@dataclass(slots=True)
class _Compiled:
    """Dispatch tables for one rule set (built once per Checker)."""

    # each entry: (bucket index, rule, bound handler)
    event_subs: dict = field(default_factory=dict)
    error_subs: dict = field(default_factory=dict)
    attr_subs: dict = field(default_factory=dict)
    attr_wild: list = field(default_factory=list)
    tag_subs: dict = field(default_factory=dict)
    tag_wild: list = field(default_factory=list)
    tree_indices: tuple = ()
    unfused: tuple = ()  # (bucket index, rule) run via rule.check()


class FusedCheckEngine:
    """One-walk execution of a rule set.

    Rules that declare a :class:`Footprint` are compiled into the shared
    scans; rules without one (third-party extensions) fall back to their
    own ``check`` into the same ordered bucket, so the output order is
    identical to the reference loop either way.
    """

    def __init__(self, rules: Sequence["Rule"]) -> None:
        self.rules = tuple(rules)
        self._tables = _compile(self.rules)

    @property
    def fused_rule_count(self) -> int:
        return len(self.rules) - len(self._tables.unfused)

    def run(self, result: ParseResult, attr_observer=None) -> list[Finding]:
        """Run the fused pass; ``attr_observer`` (if given) is called
        ``observer(token, name, value)`` for every start-tag attribute the
        attr sweep visits — same tokens, same order as
        :func:`~repro.core.rules.base.iter_start_tag_attrs`, letting
        callers (the pipeline's mitigation detectors) ride the one token
        iteration instead of paying for their own.
        """
        tables = self._tables
        buckets: list[list[Finding]] = [[] for _ in self.rules]
        source = result.source
        current: "Rule | None" = None
        try:
            event_subs = tables.event_subs
            if event_subs:
                for event in result.events:
                    subs = event_subs.get(event.kind)
                    if subs:
                        for index, rule, handler in subs:
                            current = rule
                            handler(event, source, buckets[index])
            error_subs = tables.error_subs
            if error_subs:
                for error in result.errors:
                    subs = error_subs.get(error.code)
                    if subs:
                        for index, rule, handler in subs:
                            current = rule
                            handler(error, source, buckets[index])
            attr_subs, attr_wild = tables.attr_subs, tables.attr_wild
            if attr_subs or attr_wild or attr_observer is not None:
                get_attr_subs = attr_subs.get
                if len(attr_wild) == 1 and attr_observer is None:
                    # single-wildcard fast lane (the default rule set):
                    # unpack the lone wild subscriber once and skip the
                    # per-attribute tuple iteration
                    wild_index, wild_rule, wild_handler = attr_wild[0]
                    wild_bucket = buckets[wild_index]
                    for token in result.tokens:
                        if token.__class__ is StartTag:
                            for attribute in token.attributes:
                                name = attribute.name
                                value = attribute.value
                                subs = get_attr_subs(name)
                                if subs:
                                    for index, rule, handler in subs:
                                        current = rule
                                        handler(
                                            token, name, value,
                                            source, buckets[index],
                                        )
                                current = wild_rule
                                wild_handler(
                                    token, name, value, source, wild_bucket
                                )
                else:
                    for token in result.tokens:
                        if token.__class__ is StartTag:
                            for attribute in token.attributes:
                                name = attribute.name
                                value = attribute.value
                                subs = get_attr_subs(name)
                                if subs:
                                    for index, rule, handler in subs:
                                        current = rule
                                        handler(
                                            token, name, value,
                                            source, buckets[index],
                                        )
                                for index, rule, handler in attr_wild:
                                    current = rule
                                    handler(
                                        token, name, value,
                                        source, buckets[index],
                                    )
                                if attr_observer is not None:
                                    attr_observer(token, name, value)
            tag_subs, tag_wild = tables.tag_subs, tables.tag_wild
            if tag_subs or tag_wild:
                states: dict[int, dict] = {i: {} for i in tables.tree_indices}
                stream = result.stream_elements
                get_tag_subs = tag_subs.get
                single_wild = len(tag_wild) == 1
                if single_wild:
                    # same single-wildcard fast lane as the attr pass
                    twild_index, twild_rule, twild_handler = tag_wild[0]
                    twild_state = states[twild_index]
                    twild_bucket = buckets[twild_index]
                if stream is not None:
                    # stream mode: the tree builder already emitted the
                    # element pre-order with walk-equivalent in_head flags,
                    # so dispatch runs over the flat list with no DOM walk
                    if single_wild:
                        for node, in_head in stream:
                            subs = get_tag_subs(node.name)
                            if subs:
                                for index, rule, handler in subs:
                                    current = rule
                                    handler(
                                        node, in_head, source,
                                        states[index], buckets[index],
                                    )
                            current = twild_rule
                            twild_handler(
                                node, in_head, source,
                                twild_state, twild_bucket,
                            )
                    else:
                        for node, in_head in stream:
                            subs = get_tag_subs(node.name)
                            if subs:
                                for index, rule, handler in subs:
                                    current = rule
                                    handler(
                                        node, in_head, source,
                                        states[index], buckets[index],
                                    )
                            for index, rule, handler in tag_wild:
                                current = rule
                                handler(
                                    node, in_head, source,
                                    states[index], buckets[index],
                                )
                else:
                    # mirror Node.iter()'s iterative pre-order exactly,
                    # adding a "has a <head> ancestor" flag so
                    # region-scoped rules do not re-walk ancestor chains
                    stack: list = [(result.document, False)]
                    pop = stack.pop
                    while stack:
                        node, in_head = pop()
                        if node.__class__ is Element:
                            subs = get_tag_subs(node.name)
                            if subs:
                                for index, rule, handler in subs:
                                    current = rule
                                    handler(
                                        node, in_head, source,
                                        states[index], buckets[index],
                                    )
                            if single_wild:
                                current = twild_rule
                                twild_handler(
                                    node, in_head, source,
                                    twild_state, twild_bucket,
                                )
                            else:
                                for index, rule, handler in tag_wild:
                                    current = rule
                                    handler(
                                        node, in_head, source,
                                        states[index], buckets[index],
                                    )
                            child_in_head = in_head or node.name == "head"
                        else:
                            child_in_head = in_head
                        children = node.children
                        if children:
                            stack.extend(
                                (child, child_in_head)
                                for child in reversed(children)
                            )
            for index, rule in tables.unfused:
                current = rule
                buckets[index] = rule.check(result)
        except Exception as exc:
            rule_id = current.id if current is not None else "<unknown>"
            raise RuleExecutionError(rule_id, exc) from exc
        findings: list[Finding] = []
        for bucket in buckets:
            findings.extend(bucket)
        return findings


def _compile(rules: Sequence["Rule"]) -> _Compiled:
    tables = _Compiled()
    unfused: list = []
    tree_indices: list[int] = []
    for index, rule in enumerate(rules):
        footprint = getattr(type(rule), "footprint", None)
        if footprint is None:
            unfused.append((index, rule))
            continue
        if not isinstance(footprint, Footprint):
            raise FusedCompileError(
                f"rule {rule.id}: footprint must be a Footprint instance, "
                f"got {type(footprint).__name__}"
            )
        if not footprint.sources():
            raise FusedCompileError(
                f"rule {rule.id}: footprint subscribes to no data source"
            )
        for fp_field, method in _HANDLERS.items():
            keys = getattr(footprint, fp_field)
            if not keys:
                continue
            handler = getattr(rule, method, None)
            if handler is None:
                raise FusedCompileError(
                    f"rule {rule.id}: footprint declares {fp_field} but "
                    f"{method}() is not implemented"
                )
            if fp_field == "events":
                for kind in keys:
                    tables.event_subs.setdefault(kind, []).append(
                        (index, rule, handler)
                    )
            elif fp_field == "errors":
                from ...html import ErrorCode

                for code_name in keys:
                    try:
                        code = ErrorCode[code_name]
                    except KeyError:
                        raise FusedCompileError(
                            f"rule {rule.id}: unknown ErrorCode "
                            f"{code_name!r} in footprint"
                        ) from None
                    tables.error_subs.setdefault(code, []).append(
                        (index, rule, handler)
                    )
            elif fp_field == "token_attrs":
                if WILDCARD in keys:
                    tables.attr_wild.append((index, rule, handler))
                else:
                    for name in keys:
                        tables.attr_subs.setdefault(name, []).append(
                            (index, rule, handler)
                        )
            else:  # tags
                tree_indices.append(index)
                if WILDCARD in keys:
                    tables.tag_wild.append((index, rule, handler))
                else:
                    for name in keys:
                        tables.tag_subs.setdefault(name, []).append(
                            (index, rule, handler)
                        )
    tables.tree_indices = tuple(tree_indices)
    tables.unfused = tuple(unfused)
    return tables
