"""Filter Bypass rules: FB1 and FB2 (section 3.2.2 of the paper).

Both are pure tokenizer error states — the parser names them, tolerates
them, and thereby hands attackers a standard whitespace-filter bypass.
"""
from __future__ import annotations

from ...html import ErrorCode, ParseResult
from ..violations import Finding
from .base import Rule, snippet
from .fused import Footprint


class SlashBetweenAttributes(Rule):
    """FB1 — ``<img/src="x"/onerror=...>``: '/' treated as whitespace.

    Detected via the spec's ``unexpected-solidus-in-tag`` error state
    (HTML 13.2.5.40).
    """

    id = "FB1"
    footprint = Footprint(errors=("UNEXPECTED_SOLIDUS_IN_TAG",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                error.offset,
                "slash used as attribute separator",
                snippet(result.source, error.offset),
            )
            for error in result.errors_of(ErrorCode.UNEXPECTED_SOLIDUS_IN_TAG)
        ]

    def fused_error(self, error, source, out) -> None:
        out.append(
            self.finding(
                error.offset,
                "slash used as attribute separator",
                snippet(source, error.offset),
            )
        )


class MissingSpaceBetweenAttributes(Rule):
    """FB2 — ``<img src="x"onerror=...>``: quoted value directly followed
    by the next attribute (``missing-whitespace-between-attributes``,
    HTML 13.2.5.39).
    """

    id = "FB2"
    footprint = Footprint(errors=("MISSING_WHITESPACE_BETWEEN_ATTRIBUTES",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                error.offset,
                "attributes not separated by whitespace",
                snippet(result.source, error.offset),
            )
            for error in result.errors_of(
                ErrorCode.MISSING_WHITESPACE_BETWEEN_ATTRIBUTES
            )
        ]

    def fused_error(self, error, source, out) -> None:
        out.append(
            self.finding(
                error.offset,
                "attributes not separated by whitespace",
                snippet(source, error.offset),
            )
        )
