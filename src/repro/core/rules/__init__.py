"""The violation rule set: one rule per Table 1 sub-check."""
from .base import Rule, URL_ATTRIBUTES, iter_start_tag_attrs, snippet
from .fused import (
    Footprint,
    FusedCheckEngine,
    FusedCompileError,
    RuleExecutionError,
)
from .data_exfiltration import (
    DanglingMarkupUrl,
    NestedForm,
    NewlineInTarget,
    NonTerminatedSelect,
    NonTerminatedTextarea,
    ScriptInAttribute,
)
from .data_manipulation import (
    BaseAfterUrlUse,
    BaseOutsideHead,
    DuplicateAttributes,
    MetaOutsideHead,
    MultipleBase,
)
from .filter_bypass import MissingSpaceBetweenAttributes, SlashBetweenAttributes
from .formatting import (
    BrokenHead,
    BrokenTable,
    ContentBeforeBody,
    MultipleBody,
    WrongNamespaceHtml,
    WrongNamespaceMathml,
    WrongNamespaceSvg,
)

#: All rule classes, in registry order.
RULE_CLASSES: tuple[type[Rule], ...] = (
    NonTerminatedTextarea,
    NonTerminatedSelect,
    DanglingMarkupUrl,
    ScriptInAttribute,
    NewlineInTarget,
    NestedForm,
    MetaOutsideHead,
    BaseOutsideHead,
    MultipleBase,
    BaseAfterUrlUse,
    DuplicateAttributes,
    BrokenHead,
    ContentBeforeBody,
    MultipleBody,
    BrokenTable,
    WrongNamespaceHtml,
    WrongNamespaceSvg,
    WrongNamespaceMathml,
    SlashBetweenAttributes,
    MissingSpaceBetweenAttributes,
)


def default_rules() -> list[Rule]:
    """Instantiate the full Table 1 rule set."""
    return [rule_class() for rule_class in RULE_CLASSES]


__all__ = [
    "Footprint",
    "FusedCheckEngine",
    "FusedCompileError",
    "Rule",
    "RuleExecutionError",
    "RULE_CLASSES",
    "URL_ATTRIBUTES",
    "default_rules",
    "iter_start_tag_attrs",
    "snippet",
]
