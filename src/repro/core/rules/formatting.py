"""HTML Formatting rules: HF1–HF5 (section 3.2) — the mXSS enablers."""
from __future__ import annotations

from ...html import MATHML_NAMESPACE, SVG_NAMESPACE, ParseResult
from ..violations import Finding
from .base import Rule, snippet
from .fused import Footprint

#: Element names that only exist in SVG (lower-cased as they appear when
#: stranded in the HTML namespace).
SVG_ONLY_NAMES = frozenset(
    {
        "path", "rect", "circle", "ellipse", "line", "polyline", "polygon",
        "g", "defs", "use", "symbol", "marker", "pattern", "mask", "tspan",
        "stop", "lineargradient", "radialgradient", "clippath",
        "foreignobject", "textpath", "animate", "animatetransform",
        "animatemotion", "fegaussianblur", "feoffset", "feblend", "femerge",
        "glyphref",
    }
)

#: Element names that only exist in MathML.
MATHML_ONLY_NAMES = frozenset(
    {
        "mi", "mo", "mn", "ms", "mtext", "mrow", "mfrac", "msqrt", "mroot",
        "msup", "msub", "msubsup", "munder", "mover", "munderover",
        "mtable", "mtr", "mtd", "mstyle", "mspace", "mpadded", "mphantom",
        "menclose", "maction", "semantics", "annotation", "annotation-xml",
        "mglyph", "malignmark",
    }
)


class BrokenHead(Rule):
    """HF1 — broken head section (HTML 4.2.1 content model).

    Fires when head tags are omitted, when a disallowed element appears
    inside the head (implicitly closing it and dragging the remaining head
    content into the body), or when head-only elements appear after the
    head was closed.  The paper: "We define missing head tags and a broken
    head section as a violation."
    """

    id = "HF1"

    _KINDS = (
        "head-start-implied",
        "head-end-implied",
        "disallowed-in-head",
        "head-element-after-head",
    )

    footprint = Footprint(events=_KINDS)

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        for event in result.events:
            if event.kind in self._KINDS:
                label = event.tag or event.detail or event.kind
                findings.append(
                    self.finding(
                        event.offset,
                        f"{event.kind} ({label})",
                        snippet(result.source, event.offset),
                    )
                )
        return findings

    def fused_event(self, event, source, out) -> None:
        label = event.tag or event.detail or event.kind
        out.append(
            self.finding(
                event.offset,
                f"{event.kind} ({label})",
                snippet(source, event.offset),
            )
        )


class ContentBeforeBody(Rule):
    """HF2 — content before the body tag implicitly opens the body
    (HTML 4.3.1 requires body to follow head directly).

    Enables the Figure 4 attack where an unclosed tag absorbs the real
    ``<body onload=...>``.  A body implied only by EOF or by the closing
    ``</body>``/``</html>`` tags is not counted — there was no *content*
    before the body then.
    """

    id = "HF2"

    _NON_CONTENT_TRIGGERS = frozenset({"#eof", "/html", "/body"})

    footprint = Footprint(events=("body-start-implied",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                f"body implicitly opened by {event.detail!r}",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("body-start-implied")
            if event.detail not in self._NON_CONTENT_TRIGGERS
        ]

    def fused_event(self, event, source, out) -> None:
        if event.detail not in self._NON_CONTENT_TRIGGERS:
            out.append(
                self.finding(
                    event.offset,
                    f"body implicitly opened by {event.detail!r}",
                    snippet(source, event.offset),
                )
            )


class MultipleBody(Rule):
    """HF3 — a second ``body`` start tag merged into the first
    (attribute overwrite primitive, HTML 13.2.6.4.7).
    """

    id = "HF3"
    footprint = Footprint(events=("second-body-merged",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                "second body start tag merged",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("second-body-merged")
        ]

    def fused_event(self, event, source, out) -> None:
        out.append(
            self.finding(
                event.offset,
                "second body start tag merged",
                snippet(source, event.offset),
            )
        )


class BrokenTable(Rule):
    """HF4 — content not allowed inside a table is foster-parented in
    front of it (HTML 13.2.6.4.9, the Figure 1/Figure 11 mXSS mutation
    primitive).
    """

    id = "HF4"
    footprint = Footprint(events=("foster-parented",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                f"{event.tag} foster-parented out of table",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("foster-parented")
        ]

    def fused_event(self, event, source, out) -> None:
        out.append(
            self.finding(
                event.offset,
                f"{event.tag} foster-parented out of table",
                snippet(source, event.offset),
            )
        )


class WrongNamespaceHtml(Rule):
    """HF5_1 — SVG/MathML-only elements stranded in the HTML namespace
    (e.g. a ``<path>`` pasted without its ``<svg>`` root; HTML 13.2.6.5
    governs foreign content).
    """

    id = "HF5_1"
    footprint = Footprint(tags=tuple(sorted(SVG_ONLY_NAMES | MATHML_ONLY_NAMES)))

    def check(self, result: ParseResult) -> list[Finding]:
        findings = []
        for element in result.document.iter_elements():
            if element.is_html() and (
                element.name in SVG_ONLY_NAMES
                or element.name in MATHML_ONLY_NAMES
            ):
                findings.append(
                    self.finding(
                        element.source_offset,
                        f"foreign-only element <{element.name}> in HTML "
                        "namespace",
                        snippet(result.source, element.source_offset),
                    )
                )
        return findings

    def fused_element(self, element, in_head, source, state, out) -> None:
        if element.is_html():
            out.append(
                self.finding(
                    element.source_offset,
                    f"foreign-only element <{element.name}> in HTML "
                    "namespace",
                    snippet(source, element.source_offset),
                )
            )


class _BreakoutRule(Rule):
    namespace = ""

    footprint = Footprint(events=("foreign-breakout",))

    def check(self, result: ParseResult) -> list[Finding]:
        return [
            self.finding(
                event.offset,
                f"HTML element <{event.tag}> broke out of "
                f"{self.namespace_label} content",
                snippet(result.source, event.offset),
            )
            for event in result.events_of("foreign-breakout")
            if event.namespace == self.namespace
        ]

    def fused_event(self, event, source, out) -> None:
        if event.namespace == self.namespace:
            out.append(
                self.finding(
                    event.offset,
                    f"HTML element <{event.tag}> broke out of "
                    f"{self.namespace_label} content",
                    snippet(source, event.offset),
                )
            )

    @property
    def namespace_label(self) -> str:
        return "SVG" if self.namespace == SVG_NAMESPACE else "MathML"


class WrongNamespaceSvg(_BreakoutRule):
    """HF5_2 — HTML elements inside SVG forcing a namespace breakout
    (HTML 13.2.6.5)."""

    id = "HF5_2"
    namespace = SVG_NAMESPACE


class WrongNamespaceMathml(_BreakoutRule):
    """HF5_3 — HTML elements inside MathML forcing a namespace breakout
    (HTML 13.2.6.5; the DOMPurify bypass shape from Figure 1).
    """

    id = "HF5_3"
    namespace = MATHML_NAMESPACE
