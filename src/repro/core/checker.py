"""The checker: run the Table 1 rule set over a document.

This is the "Checker" box of Figure 6.  Unlike the W3C validator — which
stops parsing when it hits certain mXSS-shaped inputs (the paper's
Figure 7) — this checker always processes the whole document: the parser
is error-tolerant by construction and every rule sees the complete parse.
"""
from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..html import (
    ParseResult,
    StreamTreeBuilder,
    parse,
    parse_bytes,
    parse_fragment,
    sniff_encoding,
)
from .mitigations import MitigationCollector, MitigationReport, measure_mitigations
from .rules import FusedCheckEngine, Rule, RuleExecutionError, default_rules
from .violations import Finding


@dataclass(frozen=True, slots=True)
class DecodeFailure:
    """Typed outcome for bytes the section 4.1 encoding filter rejects.

    The batch pipeline only needs "skip this page", but a service endpoint
    must distinguish "clean page" from "page we could not even look at" —
    a silent ``None`` there turns into a blank 200.  ``declared_encoding``
    carries what the document *claims* to be (BOM / meta prescan), so the
    client learns why the UTF-8-only methodology rejected it.
    """

    url: str = ""
    reason: str = "not-utf8"
    #: the encoding the document declares (sniffed, never trusted); ""
    #: when nothing was declared
    declared_encoding: str = ""


@dataclass(slots=True)
class CheckReport:
    """All findings for one document.

    ``findings`` is append-only by convention (the checker extends it,
    analyses read it); :attr:`violated` caches its frozenset keyed on the
    list length, so the per-page hot loops in the longitudinal analyses
    (which call ``violated``/``has`` once per rule id per page) no longer
    rescan every finding on every call.
    """

    url: str
    findings: list[Finding] = field(default_factory=list)
    #: parse kept for debugging / secondary analyses; may be None when
    #: the checker is run in low-memory mode
    parse_result: ParseResult | None = None
    #: (findings length when computed, cached id set)
    _violated_cache: tuple[int, frozenset[str]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def violated(self) -> frozenset[str]:
        """The set of violation ids present at least once."""
        cache = self._violated_cache
        if cache is None or cache[0] != len(self.findings):
            cache = (
                len(self.findings),
                frozenset(finding.violation for finding in self.findings),
            )
            self._violated_cache = cache
        return cache[1]

    @property
    def counts(self) -> Counter:
        return Counter(finding.violation for finding in self.findings)

    def has(self, violation_id: str) -> bool:
        return violation_id in self.violated

    def __len__(self) -> int:
        return len(self.findings)


class Checker:
    """Run a rule set over documents.

    ``rules`` defaults to the full Table 1 set; pass a subset to check
    individual violations (the framework is extensible, section 3.1).

    ``engine`` selects how the rules execute:

    * ``"fused"`` (default) — the :class:`FusedCheckEngine` compiles the
      rule set's declared footprints into one streaming pass over events,
      errors, tokens and the DOM;
    * ``"reference"`` — the retained per-rule path: every rule's own
      ``check`` runs an independent traversal.  This is the semantics
      oracle the fused engine is equivalence-pinned to (the
      ``fused_parity`` fuzz oracle and the corpus replay suite assert
      bit-identical findings).

    Either engine wraps a failing rule in :class:`RuleExecutionError`
    naming the rule id, so a crash on one page is attributable.

    ``mode`` selects how bytes are parsed (``check_bytes`` /
    ``parse_page_bytes`` only):

    * ``"dom"`` (default) — materialize the full DOM and walk it;
    * ``"stream"`` — DOM-free: the tree builder emits the element
      pre-order while parsing and the fused tree dispatch runs over the
      flat list, never building text/comment nodes.  Pages whose parse
      needs a tree-reordering mutation *taint* mid-parse: the builder
      finishes normally and the tree dispatch falls back to the ordinary
      DOM walk over the (element-complete, text-free) tree — no
      re-parse, findings bit-identical by construction;
      :attr:`pages_checked` / :attr:`stream_fallbacks` count how often
      that happens (the bench snapshot exports the ratio).
    """

    def __init__(
        self,
        rules: list[Rule] | None = None,
        *,
        keep_parse: bool = False,
        engine: str = "fused",
        mode: str = "dom",
    ) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.keep_parse = keep_parse
        if engine not in ("fused", "reference"):
            raise ValueError(f"unknown checker engine {engine!r}")
        if mode not in ("dom", "stream"):
            raise ValueError(f"unknown checker mode {mode!r}")
        self.engine = engine
        self.mode = mode
        self._fused = FusedCheckEngine(self.rules) if engine == "fused" else None
        #: pages parsed through ``parse_page_bytes``/``check_bytes``
        self.pages_checked = 0
        #: stream-mode parses that tainted and fell back to the DOM walk
        self.stream_fallbacks = 0

    def parse_page_bytes(self, data: bytes) -> ParseResult:
        """Parse page bytes honouring :attr:`mode` (with taint fallback)."""
        self.pages_checked += 1
        if self.mode == "stream":
            builder = StreamTreeBuilder()
            result = builder.parse_bytes(data)
            if builder.tainted is not None:
                self.stream_fallbacks += 1
            return result
        return parse_bytes(data)

    def check_parse(self, result: ParseResult, url: str = "") -> CheckReport:
        report = CheckReport(url=url, parse_result=result if self.keep_parse else None)
        fused = self._fused
        if fused is not None:
            report.findings.extend(fused.run(result))
            return report
        findings = report.findings
        for rule in self.rules:
            try:
                findings.extend(rule.check(result))
            except Exception as exc:
                raise RuleExecutionError(rule.id, exc) from exc
        return report

    def check_parse_with_mitigations(
        self, result: ParseResult, url: str = ""
    ) -> "tuple[CheckReport, MitigationReport]":
        """Check a parse and measure mitigations in one pass.

        On the fused engine the section 4.5 mitigation detectors ride the
        engine's start-tag attribute sweep (one token iteration total);
        on the reference engine they fall back to the standalone
        :func:`measure_mitigations` pass.  Either way the report is
        bit-identical to calling the two measurements separately.
        """
        fused = self._fused
        if fused is None:
            return (
                self.check_parse(result, url=url),
                measure_mitigations(result),
            )
        report = CheckReport(
            url=url, parse_result=result if self.keep_parse else None
        )
        collector = MitigationCollector()
        report.findings.extend(fused.run(result, attr_observer=collector))
        return report, collector.report

    def check_html(self, text: str, url: str = "") -> CheckReport:
        return self.check_parse(parse(text), url=url)

    def check_fragment(self, text: str, context: str = "div", url: str = "") -> CheckReport:
        """Check an HTML *fragment* (the innerHTML algorithm).

        This is how dynamically loaded content enters the document — the
        paper's section 5.1 pre-study checks such fragments.  Rules that
        reason about head/body structure see the fragment's synthetic
        context, so the structural HF1/HF2 checks are intentionally inert
        here; the attribute- and table-level checks behave exactly as on
        full documents.
        """
        _nodes, result = parse_fragment(text, context)
        return self.check_parse(result, url=url)

    def check_bytes(self, data: bytes, url: str = "") -> CheckReport | DecodeFailure:
        """Check raw bytes decode-free; :class:`DecodeFailure` for non-UTF-8.

        Implements the paper's encoding filter (section 4.1): rather than
        guessing charsets, only UTF-8-decodable documents are analysed.
        The document is parsed straight from bytes (no upfront decode or
        preprocessing copies); invalid UTF-8 surfaces as a
        :class:`UnicodeDecodeError` from whichever scan first touches it,
        and is mapped to a :class:`DecodeFailure` carrying the sniffed
        declared encoding, never a bare ``None`` — callers that must report
        the rejection (the service's 422 path) get a typed value to branch
        on with ``isinstance``.
        """
        try:
            result = self.parse_page_bytes(data)
        except UnicodeDecodeError:
            return DecodeFailure(
                url=url,
                declared_encoding=sniff_encoding(data).encoding or "",
            )
        return self.check_parse(result, url=url)
