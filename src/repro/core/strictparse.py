"""The HTML parser hardening roadmap from section 5.3 of the paper.

The paper proposes deprecating error tolerance via a new ``STRICT-PARSER``
response header with three modes:

* ``strict`` — every deprecated violation aborts parsing with an error
  page (full opt-in to the secure parser);
* ``unsafe`` — all deprecations ignored (escape hatch);
* ``default`` — only the *enforced list* of violations blocks; the list
  starts with the rarest violations (math-related, dangling markup) and
  grows as usage of each violation decays, until default equals strict.

Every mode accepts a monitor URL notified on violations, so developers can
test without breaking anything (report-only deployment, like CSP's).

This module implements the header, the strict parsing entry point, and a
rollout simulator that stages violations onto the enforced list based on
measured prevalence — the section 5.3 experiment.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .checker import Checker, CheckReport
from .violations import ALL_IDS, REGISTRY


class StrictMode(enum.Enum):
    STRICT = "strict"
    UNSAFE = "unsafe"
    DEFAULT = "default"


#: The initial enforced list the paper suggests: violations that "rarely
#: appear in our analysis, such as all math element-related violations or
#: dangling markup".
INITIAL_ENFORCED: tuple[str, ...] = ("HF5_3", "DE1", "DE2", "DE3_3", "DE3_1")


@dataclass(frozen=True, slots=True)
class StrictParserPolicy:
    """A parsed ``STRICT-PARSER`` header."""

    mode: StrictMode = StrictMode.DEFAULT
    monitor_url: str | None = None

    def header_value(self) -> str:
        value = self.mode.value
        if self.monitor_url:
            value += f"; monitor={self.monitor_url}"
        return value


class StrictHeaderError(ValueError):
    """Raised for malformed STRICT-PARSER header values."""


def parse_strict_header(value: str | None) -> StrictParserPolicy:
    """Parse a ``STRICT-PARSER`` header value; absent header → default."""
    if value is None or not value.strip():
        return StrictParserPolicy()
    parts = [part.strip() for part in value.split(";")]
    try:
        mode = StrictMode(parts[0].lower())
    except ValueError as exc:
        raise StrictHeaderError(f"unknown mode {parts[0]!r}") from exc
    monitor = None
    for part in parts[1:]:
        key, _, argument = part.partition("=")
        if key.strip().lower() == "monitor" and argument:
            monitor = argument.strip().strip('"')
        elif part:
            raise StrictHeaderError(f"unknown directive {part!r}")
    return StrictParserPolicy(mode=mode, monitor_url=monitor)


@dataclass(slots=True)
class MonitorNotification:
    """One report sent to a policy's monitor URL."""

    url: str
    monitor_url: str
    violations: tuple[str, ...]
    blocked: bool


class MonitorCollector:
    """Collects monitor notifications, like a CSP report-uri endpoint.

    Developers "can find edge cases in the strict mode or test the policy
    in the wild without breaking anything" (section 5.3.2) — this is the
    receiving end: aggregate reports per violation and per page so a site
    owner can prioritize fixes before enforcement.
    """

    def __init__(self) -> None:
        self.notifications: list[MonitorNotification] = []

    def receive(self, notification: "MonitorNotification") -> None:
        self.notifications.append(notification)

    def __len__(self) -> int:
        return len(self.notifications)

    def by_violation(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for notification in self.notifications:
            for violation in notification.violations:
                counts[violation] = counts.get(violation, 0) + 1
        return dict(
            sorted(counts.items(), key=lambda item: item[1], reverse=True)
        )

    def pages_that_would_break(self) -> list[str]:
        return [n.url for n in self.notifications if n.blocked]

    def summary(self) -> str:
        lines = [
            f"monitor received {len(self.notifications)} report(s); "
            f"{len(self.pages_that_would_break())} page(s) would break",
        ]
        for violation, count in self.by_violation().items():
            lines.append(f"  {violation}: {count} report(s)")
        return "\n".join(lines)


@dataclass(slots=True)
class StrictParseOutcome:
    """Result of parsing a page under a strict-parser policy."""

    report: CheckReport
    policy: StrictParserPolicy
    blocked_violations: frozenset[str]
    notifications: list[MonitorNotification] = field(default_factory=list)

    @property
    def blocked(self) -> bool:
        """True when the page would show the error page instead of content."""
        return bool(self.blocked_violations)


def parse_with_policy(
    html: str,
    policy: StrictParserPolicy,
    *,
    enforced: frozenset[str] = frozenset(INITIAL_ENFORCED),
    checker: Checker | None = None,
    url: str = "",
    monitor: MonitorCollector | None = None,
) -> StrictParseOutcome:
    """Parse ``html`` under ``policy`` with the given enforced list.

    ``monitor`` optionally receives the notifications a browser would POST
    to the policy's monitor URL.
    """
    checker = checker or Checker()
    report = checker.check_html(html, url=url)
    present = report.violated
    if policy.mode is StrictMode.STRICT:
        blocked = present
    elif policy.mode is StrictMode.UNSAFE:
        blocked = frozenset()
    else:
        blocked = present & enforced
    outcome = StrictParseOutcome(
        report=report, policy=policy, blocked_violations=blocked
    )
    if policy.monitor_url and present:
        notification = MonitorNotification(
            url=url,
            monitor_url=policy.monitor_url,
            violations=tuple(sorted(present)),
            blocked=bool(blocked),
        )
        outcome.notifications.append(notification)
        if monitor is not None:
            monitor.receive(notification)
    return outcome


def render_error_page(outcome: StrictParseOutcome) -> str:
    """The warning page a strict parser shows instead of a violating page
    (section 5.3.2: "a violating page would end in an error state during
    the parsing process and show a warning page").
    """
    items = "".join(
        f"<li><code>{violation}</code>: {REGISTRY[violation].name}</li>"
        for violation in sorted(outcome.blocked_violations)
    )
    url = outcome.report.url or "this page"
    return (
        "<!DOCTYPE html><html lang=\"en\"><head>"
        "<title>Page blocked: HTML specification violations</title></head>"
        "<body><h1>This page could not be displayed</h1>"
        f"<p>The strict HTML parser refused to render {url} because its "
        "markup violates the HTML specification in ways that are known "
        "attack primitives:</p>"
        f"<ul>{items}</ul>"
        "<p>Site owners: fix the markup or (temporarily) opt out with "
        "<code>STRICT-PARSER: unsafe</code>.</p>"
        "</body></html>"
    )


# ------------------------------------------------------------------ rollout


@dataclass(slots=True)
class RolloutStage:
    """One step of the staged deprecation."""

    year: int
    newly_enforced: tuple[str, ...]
    enforced: tuple[str, ...]
    #: fraction of domains that would break (violate an enforced rule)
    breakage: float


@dataclass(slots=True)
class RolloutPlan:
    stages: list[RolloutStage]

    @property
    def fully_enforced_year(self) -> int | None:
        for stage in self.stages:
            if set(stage.enforced) == set(ALL_IDS):
                return stage.year
        return None


def simulate_rollout(
    prevalence_by_year: dict[int, dict[str, float]],
    *,
    threshold: float = 0.01,
    start_enforced: tuple[str, ...] = INITIAL_ENFORCED,
    annual_decay: float = 0.5,
    horizon: int = 15,
) -> RolloutPlan:
    """Simulate the staged enforcement the paper proposes.

    ``prevalence_by_year`` is measured data (violation id → fraction of
    domains, per year); after the last measured year, each violation's
    prevalence is assumed to decay by ``annual_decay`` per year — the
    paper's premise that developer warnings accelerate the downward trend
    (as happened with HTTPS adoption).  A violation joins the enforced
    list once its prevalence drops below ``threshold``.

    Returns the stage-by-stage plan with expected breakage (upper bound:
    assumes violating domains are independent across rules).
    """
    years = sorted(prevalence_by_year)
    last_year = years[-1]
    current = dict(prevalence_by_year[last_year])
    enforced = list(dict.fromkeys(start_enforced))
    stages: list[RolloutStage] = []

    for year in years:
        measured = prevalence_by_year[year]
        newly = [
            rule
            for rule in ALL_IDS
            if rule not in enforced and measured.get(rule, 0.0) < threshold
        ]
        enforced.extend(newly)
        stages.append(
            RolloutStage(
                year=year,
                newly_enforced=tuple(newly),
                enforced=tuple(enforced),
                breakage=_breakage(measured, enforced),
            )
        )

    for offset in range(1, horizon + 1):
        year = last_year + offset
        current = {rule: value * annual_decay for rule, value in current.items()}
        newly = [
            rule
            for rule in ALL_IDS
            if rule not in enforced and current.get(rule, 0.0) < threshold
        ]
        enforced.extend(newly)
        stages.append(
            RolloutStage(
                year=year,
                newly_enforced=tuple(newly),
                enforced=tuple(enforced),
                breakage=_breakage(current, enforced),
            )
        )
        if set(enforced) == set(ALL_IDS):
            break
    return RolloutPlan(stages=stages)


def _breakage(prevalence: dict[str, float], enforced: list[str]) -> float:
    """Upper-bound breakage: 1 - prod(1 - p) over enforced rules."""
    keep = 1.0
    for rule in enforced:
        keep *= 1.0 - prevalence.get(rule, 0.0)
    return 1.0 - keep


def deprecation_warning(violation_id: str) -> str:
    """The succinct, specific developer-console warning the paper calls
    for (section 5.3.2) — one per violation type."""
    violation = REGISTRY[violation_id]
    return (
        f"[Deprecation] {violation.id}: {violation.name}. {violation.definition}. "
        f"See HTML spec section {violation.spec_section or '13.2'}. "
        "This input will be rejected once strict parsing is enforced; "
        "set the STRICT-PARSER header to opt in early or (temporarily) out."
    )
