"""The violation taxonomy: Table 1 of the paper, as code.

Two categories (section 3.2):

* **Definition violations** — the HTML specification defines one behaviour
  but the parsing algorithm contradicts it without entering an error state
  (e.g. ``textarea`` requires an end tag, yet the parser silently closes it
  at EOF).
* **Parsing errors** — the parser passes a named error state in the
  tokenizer or tree builder but tolerates and "fixes" the input.

Each violation belongs to one of four problem groups indicating its
security impact: Data Exfiltration (DE), Data Manipulation (DM), HTML
Formatting (HF — mXSS enablers), and Filter Bypass (FB).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass


class UnknownRuleIdError(ValueError):
    """A rule declared an ``id`` that is not a :data:`REGISTRY` key.

    Raised by ``Rule.__init__`` at instantiation time; the
    ``registry-consistency`` staticcheck pass enforces the same invariant
    statically against the same registry, so the error is normally caught
    before any rule ever runs.  Subclasses :class:`ValueError` for
    backwards compatibility.
    """

    def __init__(self, rule_id: str) -> None:
        super().__init__(
            f"rule id {rule_id!r} not in violation registry "
            f"(known ids: {', '.join(REGISTRY)})"
        )
        self.rule_id = rule_id


class Category(enum.Enum):
    DEFINITION = "definition-violation"
    PARSING_ERROR = "parsing-error"


class Group(enum.Enum):
    DATA_EXFILTRATION = "DE"
    DATA_MANIPULATION = "DM"
    HTML_FORMATTING = "HF"
    FILTER_BYPASS = "FB"


@dataclass(frozen=True, slots=True)
class ViolationType:
    """One row (or sub-check) of Table 1."""

    id: str                 # e.g. "DM2_1"
    family: str             # e.g. "DM2"
    name: str               # short human-readable name
    definition: str         # what the spec requires / what goes wrong
    category: Category
    group: Group
    #: section 4.4: can the violation be repaired mechanically without
    #: changing what the current parser renders?
    auto_fixable: bool
    spec_section: str = ""  # HTML Living Standard reference


def _v(
    id: str,
    name: str,
    definition: str,
    category: Category,
    group: Group,
    auto_fixable: bool,
    spec_section: str = "",
) -> ViolationType:
    family = id.split("_")[0]
    return ViolationType(
        id=id, family=family, name=name, definition=definition,
        category=category, group=group, auto_fixable=auto_fixable,
        spec_section=spec_section,
    )


#: All 20 sub-checks, in Figure 8's prevalence order of families.
REGISTRY: dict[str, ViolationType] = {
    violation.id: violation
    for violation in (
        _v("DE1", "Non-terminated textarea element",
           "textarea requires an end tag, yet the parser closes it at EOF, "
           "letting injected forms exfiltrate the rest of the page",
           Category.DEFINITION, Group.DATA_EXFILTRATION, False, "4.10.11/13.2.5.2"),
        _v("DE2", "Non-terminated select/option elements",
           "select/option left open are closed at EOF (or by the next "
           "option/select tag), leaking following plain text",
           Category.DEFINITION, Group.DATA_EXFILTRATION, False, "4.10.10/4.10.7"),
        _v("DE3_1", "Dangling markup URL",
           "a URL attribute containing both a newline and '<' — the classic "
           "dangling-markup exfiltration shape",
           Category.PARSING_ERROR, Group.DATA_EXFILTRATION, False, "13.2.5"),
        _v("DE3_2", "Nonce-stealing attribute",
           "the string '<script' inside an attribute value, indicating a "
           "non-terminated attribute absorbed a script element",
           Category.PARSING_ERROR, Group.DATA_EXFILTRATION, False, "13.2.5"),
        _v("DE3_3", "Unclosed target attribute",
           "a target attribute containing a newline — the window.name leak "
           "shape",
           Category.PARSING_ERROR, Group.DATA_EXFILTRATION, False, "13.2.5"),
        _v("DE4", "Nested form element",
           "a form may not contain a descendant form; the parser drops the "
           "inner one, so an injected outer form hijacks submission",
           Category.PARSING_ERROR, Group.DATA_EXFILTRATION, False,
           "4.10.3/13.2.6.4.7"),
        _v("DM1", "Meta tag outside head",
           "meta http-equiv is only allowed in head but is honoured in the "
           "body as well (redirects, cookies, CSP)",
           Category.DEFINITION, Group.DATA_MANIPULATION, True, "4.2.5/13.2.6.4.7"),
        _v("DM2_1", "Base tag outside head",
           "base is only defined for head but parsed anywhere, rebasing "
           "every later relative URL",
           Category.DEFINITION, Group.DATA_MANIPULATION, True, "4.2.3"),
        _v("DM2_2", "Multiple base tags",
           "only one base element is allowed per document",
           Category.DEFINITION, Group.DATA_MANIPULATION, True, "4.2.3"),
        _v("DM2_3", "Base tag after URL use",
           "base must appear before any other element that uses a URL",
           Category.DEFINITION, Group.DATA_MANIPULATION, True, "4.2.3"),
        _v("DM3", "Multiple same attributes",
           "a duplicated attribute name is silently dropped, letting an "
           "injection invalidate later handlers/classes",
           Category.PARSING_ERROR, Group.DATA_MANIPULATION, True, "13.2.5.33"),
        _v("HF1", "Broken head section",
           "missing head tags or disallowed elements in head make the "
           "parser guess which content belongs to which section",
           Category.DEFINITION, Group.HTML_FORMATTING, False, "4.2.1"),
        _v("HF2", "Content before body",
           "content after head implicitly opens body, enabling "
           "dangling-markup-like absorption of the real body tag",
           Category.DEFINITION, Group.HTML_FORMATTING, False, "4.3.1"),
        _v("HF3", "Multiple body elements",
           "a second body start tag is merged into the first, allowing "
           "attribute overwrites",
           Category.PARSING_ERROR, Group.HTML_FORMATTING, False,
           "4.3.1/13.2.6.4.7"),
        _v("HF4", "Broken table element",
           "content not allowed in a table is moved (foster-parented) in "
           "front of it — a classic mXSS mutation primitive",
           Category.PARSING_ERROR, Group.HTML_FORMATTING, False, "13.2.6.4.9"),
        _v("HF5_1", "Wrong namespace: HTML",
           "SVG/MathML-only elements stranded in the HTML namespace",
           Category.PARSING_ERROR, Group.HTML_FORMATTING, False, "13.2.6.5"),
        _v("HF5_2", "Wrong namespace: SVG",
           "HTML elements inside SVG force a namespace breakout",
           Category.PARSING_ERROR, Group.HTML_FORMATTING, False, "13.2.6.5"),
        _v("HF5_3", "Wrong namespace: MathML",
           "HTML elements inside MathML force a namespace breakout (the "
           "DOMPurify bypass shape)",
           Category.PARSING_ERROR, Group.HTML_FORMATTING, False, "13.2.6.5"),
        _v("FB1", "Slash between attributes",
           "a '/' between attributes is treated as whitespace "
           "(unexpected-solidus-in-tag), a standard space-filter bypass",
           Category.PARSING_ERROR, Group.FILTER_BYPASS, True, "13.2.5.40"),
        _v("FB2", "Missing space between attributes",
           "attributes concatenated without whitespace are silently "
           "separated (missing-whitespace-between-attributes)",
           Category.PARSING_ERROR, Group.FILTER_BYPASS, True, "13.2.5.39"),
    )
}

ALL_IDS: tuple[str, ...] = tuple(REGISTRY)

FAMILIES: tuple[str, ...] = tuple(
    dict.fromkeys(violation.family for violation in REGISTRY.values())
)

#: ids per problem group, in registry order
IDS_BY_GROUP: dict[Group, tuple[str, ...]] = {
    group: tuple(v.id for v in REGISTRY.values() if v.group is group)
    for group in Group
}

AUTO_FIXABLE_IDS: frozenset[str] = frozenset(
    violation.id for violation in REGISTRY.values() if violation.auto_fixable
)


def family_of(violation_id: str) -> str:
    return REGISTRY[violation_id].family


def group_of(violation_id: str) -> Group:
    return REGISTRY[violation_id].group


@dataclass(frozen=True, slots=True)
class Finding:
    """One detected violation instance on one document."""

    violation: str          # registry id, e.g. "FB2"
    offset: int             # source offset, -1 if structural
    message: str = ""
    evidence: str = ""      # short source/context snippet

    @property
    def type(self) -> ViolationType:
        return REGISTRY[self.violation]
