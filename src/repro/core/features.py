"""Benign element-usage measurement (section 4.2 context numbers).

The paper contrasts violation counts with adoption: "the number of usages
of math elements grew over the previous years from 42 domains in 2015 to
224 domains in 2022" — rare `math`-related violations are *not* explained
by `math` being unused.  This module counts per-page usage of the foreign
roots (``math``, ``svg``) so the analysis layer can reproduce that trend.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..html import MATHML_NAMESPACE, SVG_NAMESPACE, ParseResult, parse

#: paper anchors: math on 42 domains (2015) and 224 domains (2022)
PAPER_MATH_DOMAINS = {2015: 42, 2022: 224}


@dataclass(frozen=True, slots=True)
class PageFeatures:
    """Benign usage counters for one page."""

    math_elements: int
    svg_elements: int

    @property
    def uses_math(self) -> bool:
        return self.math_elements > 0

    @property
    def uses_svg(self) -> bool:
        return self.svg_elements > 0


def measure_features(result: ParseResult) -> PageFeatures:
    math_elements = 0
    svg_elements = 0
    stream = result.stream_elements
    if stream is not None:
        # stream-mode parse: the emitted pre-order already holds every
        # element, so counting needs no DOM walk (and the document tree of
        # a stream parse holds no text nodes anyway)
        for element, _in_head in stream:
            if element.name == "math" and element.namespace == MATHML_NAMESPACE:
                math_elements += 1
            elif element.name == "svg" and element.namespace == SVG_NAMESPACE:
                svg_elements += 1
        return PageFeatures(math_elements=math_elements, svg_elements=svg_elements)
    for element in result.document.iter_elements():
        if element.name == "math" and element.namespace == MATHML_NAMESPACE:
            math_elements += 1
        elif element.name == "svg" and element.namespace == SVG_NAMESPACE:
            svg_elements += 1
    return PageFeatures(math_elements=math_elements, svg_elements=svg_elements)


def measure_features_html(text: str) -> PageFeatures:
    return measure_features(parse(text))
