"""repro — reproduction of "HTML Violations and Where to Find Them"
(Hantke & Stock, IMC 2022).

A measurement framework for security-relevant HTML specification
violations, together with every substrate it needs: a from-scratch WHATWG
HTML parser instrumented for error-tolerance fix-ups (:mod:`repro.html`),
a WARC/CDX archive layer (:mod:`repro.warc`), a calibrated synthetic
Common Crawl (:mod:`repro.commoncrawl`), the crawling pipeline
(:mod:`repro.pipeline`) and the paper's analyses (:mod:`repro.analysis`).

Quickstart::

    from repro import Checker
    report = Checker().check_html('<img src="/a.png"onerror="x()">')
    [f.violation for f in report.findings]   # ['FB2']

Full study::

    from repro.study import run_study
    study = run_study()
    print(study.figure9().fractions())
"""
from .core import (
    ALL_IDS,
    AUTO_FIXABLE_IDS,
    REGISTRY,
    Category,
    Checker,
    CheckReport,
    Finding,
    Group,
    ViolationType,
    autofix,
    measure_mitigations_html,
)
from .html import parse, parse_fragment, serialize
from .study import Study, StudyConfig, run_study

__version__ = "1.0.0"

__all__ = [
    "ALL_IDS",
    "AUTO_FIXABLE_IDS",
    "Category",
    "CheckReport",
    "Checker",
    "Finding",
    "Group",
    "REGISTRY",
    "Study",
    "StudyConfig",
    "ViolationType",
    "__version__",
    "autofix",
    "measure_mitigations_html",
    "parse",
    "parse_fragment",
    "run_study",
    "serialize",
]
