"""Finding types for the staticcheck framework.

A lint finding is deliberately shaped like the study's own
:class:`repro.core.violations.Finding` — an id, a location, a message and
some evidence — because the framework plays the same role one level up:
the checker machine-checks documents against the HTML spec, staticcheck
machine-checks *the checker* against the invariants the paper's
methodology depends on.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (``--fail-on``)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None


@dataclass(frozen=True, slots=True)
class Location:
    """Where a finding anchors: root-relative path, 1-based line, 0-based column."""

    path: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One invariant violation in the repo's own source."""

    pass_id: str            # e.g. "registry-consistency"
    severity: Severity
    location: Location
    message: str
    fix_hint: str = ""      # short, actionable remediation

    @property
    def sort_key(self) -> tuple:
        return (
            self.location.path, self.location.line, self.location.column,
            self.pass_id, self.message,
        )

    def format(self) -> str:
        text = f"{self.location}: {self.severity} [{self.pass_id}] {self.message}"
        if self.fix_hint:
            text += f" (hint: {self.fix_hint})"
        return text

    def to_json(self) -> dict:
        return {
            "pass": self.pass_id,
            "severity": str(self.severity),
            "path": self.location.path,
            "line": self.location.line,
            "column": self.location.column,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def with_severity(self, severity: Severity) -> "LintFinding":
        return replace(self, severity=severity)
