"""repro.staticcheck — machine-checked invariants for the reproduction.

A self-contained static-analysis framework (AST visitor engine, severity
/location/fix-hint findings, suppression comments, text/JSON/baseline
reporters) plus a suite of repo-specific passes that lint this codebase
against the invariants the paper's methodology depends on: a one-to-one
rule registry, a deterministic pipeline, an exhaustive parser state
machine, backtracking-safe rule regexes, and an error-transparent
pipeline.  Run it via ``repro-study lint`` or
:func:`repro.staticcheck.run_lint`.
"""
from .engine import (
    ENGINE_PASS_ID,
    LintPass,
    LintResult,
    SourceFile,
    Suppressions,
    iter_python_files,
    run_lint,
)
from .findings import LintFinding, Location, Severity
from .passes import ALL_PASSES, default_passes, pass_by_id
from .reporter import render_baseline, render_json, render_text, write_baseline

__all__ = [
    "ALL_PASSES",
    "ENGINE_PASS_ID",
    "LintFinding",
    "LintPass",
    "LintResult",
    "Location",
    "Severity",
    "SourceFile",
    "Suppressions",
    "default_passes",
    "iter_python_files",
    "pass_by_id",
    "render_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
