"""Reporters: render a :class:`~repro.staticcheck.engine.LintResult`.

Three formats:

* **text** — one line per finding plus a summary; what ``repro-study
  lint`` prints by default;
* **json** — machine-readable, stable key order, for CI and tooling;
* **baseline** — a deliberately coarse summary (pass list, files
  scanned, finding counts) with no absolute paths or timestamps, so the
  committed ``reports/staticcheck_baseline.txt`` diffs cleanly across
  machines and PRs and any lint drift shows up in review.
"""
from __future__ import annotations

import json
from pathlib import Path

from .engine import LintResult
from .findings import LintFinding, Location, Severity
from .passes import ALL_PASSES

#: pseudo pass id for baseline-drift findings (not an AST pass)
BASELINE_PASS_ID = "baseline"


def render_text(result: LintResult) -> str:
    lines = [f"staticcheck: {len(result.files)} files, "
             f"{len(result.pass_ids)} passes ({', '.join(result.pass_ids)})"]
    for finding in result.findings:
        lines.append(finding.format())
    errors = result.count(Severity.ERROR)
    warnings = result.count(Severity.WARNING)
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s): {errors} error(s), "
            f"{warnings} warning(s); {result.suppressed} suppressed"
        )
    else:
        lines.append(f"clean ({result.suppressed} suppressed)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "tool": "repro.staticcheck",
        "root": result.root,
        "passes": list(result.pass_ids),
        "files_scanned": len(result.files),
        "findings": [finding.to_json() for finding in result.findings],
        "counts": {
            "error": result.count(Severity.ERROR),
            "warning": result.count(Severity.WARNING),
            "note": result.count(Severity.NOTE),
            "suppressed": result.suppressed,
        },
        "stats": [
            {
                "pass": stat.pass_id,
                "seconds": round(stat.seconds, 6),
                "findings": stat.findings,
                "metrics": dict(stat.metrics),
            }
            for stat in result.stats
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_stats(result: LintResult) -> str:
    """Per-pass runtime/finding table (``repro-study lint --stats``)."""
    lines = [f"{'pass':<22} {'time':>9} {'findings':>9}  metrics"]
    total = 0.0
    for stat in result.stats:
        metrics = ", ".join(
            f"{key}={value}" for key, value in sorted(stat.metrics.items())
        )
        lines.append(
            f"{stat.pass_id:<22} {stat.seconds * 1000:7.1f}ms "
            f"{stat.findings:>9}  {metrics}"
        )
        total += stat.seconds
    lines.append(f"{'total':<22} {total * 1000:7.1f}ms")
    return "\n".join(lines)


def render_baseline(result: LintResult, *, root_label: str = "src/repro") -> str:
    """Stable drift-diffable summary; committed under ``reports/``."""
    descriptions = {pass_class.id: pass_class.description for pass_class in ALL_PASSES}
    lines = [
        "repro.staticcheck baseline",
        "==========================",
        f"root: {root_label}",
        f"files scanned: {len(result.files)}",
        "",
        "passes:",
    ]
    for pass_id in result.pass_ids:
        lines.append(f"  - {pass_id}: {descriptions.get(pass_id, '')}")
    lines += [
        "",
        f"findings: {len(result.findings)} "
        f"({result.count(Severity.ERROR)} error, "
        f"{result.count(Severity.WARNING)} warning, "
        f"{result.count(Severity.NOTE)} note)",
        f"suppressed: {result.suppressed}",
    ]
    for finding in result.findings:
        lines.append(f"  {finding.format()}")
    return "\n".join(lines) + "\n"


def write_baseline(result: LintResult, path: Path, *, root_label: str = "src/repro") -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_baseline(result, root_label=root_label), encoding="utf-8")


def parse_baseline_entries(text: str) -> list[str]:
    """The per-finding ``format()`` lines of a rendered baseline."""
    return [
        line[2:]
        for line in text.splitlines()
        if line.startswith("  ") and not line.startswith("  - ")
    ]


def stale_baseline_findings(
    result: LintResult, baseline_text: str, baseline_path: str
) -> list[LintFinding]:
    """Baseline entries that no longer fire on the current tree.

    The committed baseline is a grandfather list: findings in it are
    tolerated, new ones fail the build.  Without this check the list can
    only *grow stale* — a fixed finding leaves a dead entry that would
    silently re-admit the same finding if it regressed.  Each stale entry
    becomes an ERROR so the baseline can only shrink.
    """
    current = {finding.format() for finding in result.findings}
    return [
        LintFinding(
            pass_id=BASELINE_PASS_ID,
            severity=Severity.ERROR,
            location=Location(path=baseline_path, line=0),
            message=f"stale baseline entry no longer fires: {entry}",
            fix_hint=(
                "regenerate baseline: repro-study lint --baseline "
                f"{baseline_path}"
            ),
        )
        for entry in parse_baseline_entries(baseline_text)
        if entry not in current
    ]
