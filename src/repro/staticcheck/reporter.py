"""Reporters: render a :class:`~repro.staticcheck.engine.LintResult`.

Three formats:

* **text** — one line per finding plus a summary; what ``repro-study
  lint`` prints by default;
* **json** — machine-readable, stable key order, for CI and tooling;
* **baseline** — a deliberately coarse summary (pass list, files
  scanned, finding counts) with no absolute paths or timestamps, so the
  committed ``reports/staticcheck_baseline.txt`` diffs cleanly across
  machines and PRs and any lint drift shows up in review.
"""
from __future__ import annotations

import json
from pathlib import Path

from .engine import LintResult
from .findings import Severity
from .passes import ALL_PASSES


def render_text(result: LintResult) -> str:
    lines = [f"staticcheck: {len(result.files)} files, "
             f"{len(result.pass_ids)} passes ({', '.join(result.pass_ids)})"]
    for finding in result.findings:
        lines.append(finding.format())
    errors = result.count(Severity.ERROR)
    warnings = result.count(Severity.WARNING)
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s): {errors} error(s), "
            f"{warnings} warning(s); {result.suppressed} suppressed"
        )
    else:
        lines.append(f"clean ({result.suppressed} suppressed)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "tool": "repro.staticcheck",
        "root": result.root,
        "passes": list(result.pass_ids),
        "files_scanned": len(result.files),
        "findings": [finding.to_json() for finding in result.findings],
        "counts": {
            "error": result.count(Severity.ERROR),
            "warning": result.count(Severity.WARNING),
            "note": result.count(Severity.NOTE),
            "suppressed": result.suppressed,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_baseline(result: LintResult, *, root_label: str = "src/repro") -> str:
    """Stable drift-diffable summary; committed under ``reports/``."""
    descriptions = {pass_class.id: pass_class.description for pass_class in ALL_PASSES}
    lines = [
        "repro.staticcheck baseline",
        "==========================",
        f"root: {root_label}",
        f"files scanned: {len(result.files)}",
        "",
        "passes:",
    ]
    for pass_id in result.pass_ids:
        lines.append(f"  - {pass_id}: {descriptions.get(pass_id, '')}")
    lines += [
        "",
        f"findings: {len(result.findings)} "
        f"({result.count(Severity.ERROR)} error, "
        f"{result.count(Severity.WARNING)} warning, "
        f"{result.count(Severity.NOTE)} note)",
        f"suppressed: {result.suppressed}",
    ]
    for finding in result.findings:
        lines.append(f"  {finding.format()}")
    return "\n".join(lines) + "\n"


def write_baseline(result: LintResult, path: Path, *, root_label: str = "src/repro") -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_baseline(result, root_label=root_label), encoding="utf-8")
