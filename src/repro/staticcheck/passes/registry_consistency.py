"""Registry-consistency pass: the rule set and Table 1 must agree.

The study's headline numbers are per-violation-id counts, so the mapping
between :data:`repro.core.violations.REGISTRY` (Table 1 as code) and the
``Rule`` subclasses implementing it must be exactly one-to-one.  Before
this pass, that invariant was enforced only at *runtime* — by
``Rule.__init__`` raising :class:`repro.core.violations.UnknownRuleIdError`
when instantiated — which misses rules that are never instantiated and
registry rows that are never implemented.

Checked invariants:

* every concrete ``Rule`` subclass defines ``id`` as a non-empty string
  **literal** (not computed — the id must be statically auditable);
* that id exists in ``REGISTRY`` (the same source of truth the runtime
  check uses);
* no two rule classes implement the same id;
* every ``REGISTRY`` entry has exactly one implementing rule class, and
  ``RULE_CLASSES`` in ``core/rules/__init__.py`` lists each exactly once
  (checked only when that module is inside the lint root);
* every concrete rule class docstring cites an HTML spec section
  (a dotted section number such as ``13.2.5.40``) — the paper's rules are
  each anchored to a spec clause, ours must be too.

Heuristics: a class is rule-derived when one of its bases resolves —
transitively, within the same module — to a name ending in ``Rule``
imported from the rules package (or literally ``Rule``).  Classes whose
name starts with ``_`` are treated as abstract helpers and exempt from
the concrete-rule checks.
"""
from __future__ import annotations

import ast
import re

from ...core.violations import REGISTRY
from ..engine import LintPass, SourceFile, literal_str
from ..findings import Severity

PASS_ID = "registry-consistency"

#: dotted spec-section citation, e.g. "4.2.3" or "13.2.5.40"
SPEC_CITATION_RE = re.compile(r"\b\d+\.\d+(?:\.\d+)*\b")

_RULES_INIT_SUFFIX = "core/rules/__init__.py"


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _rule_classes_in(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Classes in ``tree`` deriving (transitively, locally) from ``Rule``."""
    class_defs = {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }
    derived: dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for name, node in class_defs.items():
            if name in derived or name == "Rule":
                continue
            for base in _base_names(node):
                if base == "Rule" or base in derived:
                    derived[name] = node
                    changed = True
                    break
    return derived


def _class_id_assignment(node: ast.ClassDef) -> ast.Assign | ast.AnnAssign | None:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            targets = [t.id for t in statement.targets if isinstance(t, ast.Name)]
            if "id" in targets:
                return statement
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.target.id == "id":
                return statement
    return None


class RegistryConsistencyPass(LintPass):
    id = PASS_ID
    name = "Rule registry consistency"
    description = (
        "Rule subclasses and repro.core.violations.REGISTRY are one-to-one, "
        "ids are string literals, docstrings cite a spec section"
    )

    def __init__(self) -> None:
        super().__init__()
        #: violation id -> [(file, class node)] implementing it
        self._implementations: dict[str, list[tuple[SourceFile, ast.ClassDef]]] = {}
        #: concrete rule class name -> (file, node)
        self._concrete: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        self._rules_init: SourceFile | None = None
        self._rule_classes_tuple: ast.Assign | None = None
        self._listed_names: list[str] = []
        self._current_rules: dict[str, ast.ClassDef] = {}

    # the pass scans every module: rule subclasses may be declared anywhere
    def select(self, file: SourceFile) -> bool:
        return True

    def begin_file(self, file: SourceFile) -> None:
        self._current_rules = _rule_classes_in(file.tree)
        if file.rel.endswith(_RULES_INIT_SUFFIX):
            self._rules_init = file
            self._collect_rule_classes_tuple(file)

    def _collect_rule_classes_tuple(self, file: SourceFile) -> None:
        for node in file.tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if "RULE_CLASSES" not in names:
                continue
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                self._rule_classes_tuple = node  # type: ignore[assignment]
                self._listed_names = [
                    element.id
                    for element in value.elts
                    if isinstance(element, ast.Name)
                ]
            return

    def visit_ClassDef(self, file: SourceFile, node: ast.ClassDef) -> None:
        if node.name not in self._current_rules:
            return
        if node.name.startswith("_"):
            return  # abstract helper (e.g. _BreakoutRule); subclasses are checked
        self._check_concrete_rule(file, node)

    def _check_concrete_rule(self, file: SourceFile, node: ast.ClassDef) -> None:
        self._concrete[node.name] = (file, node)
        assignment = _class_id_assignment(node)
        if assignment is None:
            self.report(
                file, node,
                f"Rule subclass {node.name} does not define an id",
                fix_hint="add a class-level `id = \"<REGISTRY id>\"` literal",
            )
            return
        rule_id = literal_str(assignment.value)
        if rule_id is None:
            self.report(
                file, assignment,
                f"Rule subclass {node.name} id is not a string literal",
                fix_hint="ids must be statically auditable string literals",
            )
            return
        if rule_id not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            self.report(
                file, assignment,
                f"rule id {rule_id!r} ({node.name}) is not in "
                "repro.core.violations.REGISTRY",
                fix_hint=f"register it or fix the typo; known ids: {known}",
            )
        else:
            self._implementations.setdefault(rule_id, []).append((file, node))
        docstring = ast.get_docstring(node) or ""
        if not SPEC_CITATION_RE.search(docstring):
            self.report(
                file, node,
                f"rule {node.name} docstring does not cite an HTML spec "
                "section",
                severity=Severity.WARNING,
                fix_hint="cite the Living Standard clause, e.g. (HTML 13.2.5.40)",
            )

    def finish(self) -> None:
        for rule_id, implementations in sorted(self._implementations.items()):
            for file, node in implementations[1:]:
                first = implementations[0][1].name
                self.report(
                    file, node,
                    f"rule id {rule_id!r} implemented by both {first} and "
                    f"{node.name}",
                    fix_hint="each REGISTRY entry must have exactly one rule",
                )
        if self._rules_init is None:
            return  # fixture tree without the canonical rules package
        init = self._rules_init
        anchor = self._rule_classes_tuple
        for rule_id in REGISTRY:
            if rule_id not in self._implementations:
                self.report(
                    init, anchor,
                    f"REGISTRY entry {rule_id!r} has no implementing Rule "
                    "subclass",
                    fix_hint="implement the rule or retire the registry row",
                )
        if anchor is None:
            self.report(
                init, None,
                "core/rules/__init__.py does not define a literal "
                "RULE_CLASSES tuple",
                line=1,
            )
            return
        listed = set(self._listed_names)
        for name in sorted(self._concrete):
            if name not in listed:
                file, node = self._concrete[name]
                self.report(
                    file, node,
                    f"rule class {name} is not listed in RULE_CLASSES",
                    fix_hint="add it so default_rules() instantiates it",
                )
        seen: set[str] = set()
        for name in self._listed_names:
            if name in seen:
                self.report(
                    init, anchor,
                    f"rule class {name} listed twice in RULE_CLASSES",
                )
            seen.add(name)
            if name not in self._concrete:
                self.report(
                    init, anchor,
                    f"RULE_CLASSES lists {name} but no such concrete rule "
                    "class was found",
                )
