"""The pass suite: one module per repo-specific invariant."""
from __future__ import annotations

from ..engine import LintPass
from .determinism import DeterminismPass
from .exception_hygiene import ExceptionHygienePass
from .footprint import FootprintPass
from .registry_consistency import RegistryConsistencyPass
from .regex_safety import RegexSafetyPass
from .state_machine import StateMachinePass

#: every pass, in documentation order
ALL_PASSES: tuple[type[LintPass], ...] = (
    RegistryConsistencyPass,
    FootprintPass,
    DeterminismPass,
    StateMachinePass,
    RegexSafetyPass,
    ExceptionHygienePass,
)


def default_passes() -> list[LintPass]:
    """Fresh instances of the full suite (passes keep per-run state)."""
    return [pass_class() for pass_class in ALL_PASSES]


def pass_by_id(pass_id: str) -> type[LintPass]:
    for pass_class in ALL_PASSES:
        if pass_class.id == pass_id:
            return pass_class
    raise KeyError(pass_id)


__all__ = [
    "ALL_PASSES",
    "DeterminismPass",
    "ExceptionHygienePass",
    "FootprintPass",
    "RegexSafetyPass",
    "RegistryConsistencyPass",
    "StateMachinePass",
    "default_passes",
    "pass_by_id",
]
